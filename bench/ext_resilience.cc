// Extension bench: core resilience under attack ([44] — the k-core as a
// collapse predictor).
//
// For a deep-hierarchy stand-in and a social stand-in, prints the
// collapse curves of the inner core under random vs coreness-targeted
// removal.  The [44] signature: the targeted curve guts the inner core at
// small removal fractions while the giant component barely notices.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtResilience(BenchRunner& run) {
  std::cout << "== Extension: core resilience under vertex removal ==\n";
  for (const BenchDataset& dataset : ActiveDatasets()) {
    if (dataset.short_name != "H" && dataset.short_name != "LJ") continue;
    std::vector<std::vector<std::string>> printed;
    VertexId reference_k = 0;
    const CaseResult* result = run.Case(
        {"ext_resilience/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          Timer timer;
          const ResilienceCurve random = ComputeResilienceCurve(
              graph, RemovalStrategy::kRandom, 10, 0,
              SeedFromString(dataset.short_name));
          const ResilienceCurve targeted = ComputeResilienceCurve(
              graph, RemovalStrategy::kHighestCorenessFirst, 10,
              random.reference_k, SeedFromString(dataset.short_name));
          rec.SetSeconds(timer.ElapsedSeconds());
          reference_k = random.reference_k;
          rec.Counter("reference_k", static_cast<double>(reference_k));
          rec.Counter("points", static_cast<double>(random.points.size()));

          printed.clear();
          for (std::size_t i = 0; i < random.points.size(); ++i) {
            const auto& r = random.points[i];
            const auto& t = targeted.points[i];
            printed.push_back(
                {TablePrinter::FormatDouble(100 * r.removed_fraction, 0) +
                     "%",
                 std::to_string(r.kmax),
                 std::to_string(r.reference_core_size),
                 std::to_string(r.largest_component), std::to_string(t.kmax),
                 std::to_string(t.reference_core_size),
                 std::to_string(t.largest_component)});
          }
        });
    if (result == nullptr) continue;

    std::cout << "\n-- " << dataset.short_name << " (" << dataset.full_name
              << ") --\n";
    TablePrinter table({"removed", "kmax (rand)", "ref core (rand)",
                        "giant (rand)", "kmax (targ)", "ref core (targ)",
                        "giant (targ)"});
    for (auto& row : printed) table.AddRow(std::move(row));
    table.Print(std::cout);
    std::cout << "(reference core: k >= " << reference_k << ")\n";
  }
  std::cout << "\nExpected shape ([44]): targeted removal collapses the "
               "reference core almost immediately; random removal degrades "
               "it gradually while the giant component persists in both.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_resilience, corekit::bench::RunExtResilience);
COREKIT_BENCH_MAIN()
