// Extension bench: core resilience under attack ([44] — the k-core as a
// collapse predictor).
//
// For a deep-hierarchy stand-in and a social stand-in, prints the
// collapse curves of the inner core under random vs coreness-targeted
// removal.  The [44] signature: the targeted curve guts the inner core at
// small removal fractions while the giant component barely notices.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  std::cout << "== Extension: core resilience under vertex removal ==\n";
  for (const BenchDataset& dataset : ActiveDatasets()) {
    if (dataset.short_name != "H" && dataset.short_name != "LJ") continue;
    const Graph graph = dataset.make();
    std::cout << "\n-- " << dataset.short_name << " (" << dataset.full_name
              << ") --\n";
    TablePrinter table({"removed", "kmax (rand)", "ref core (rand)",
                        "giant (rand)", "kmax (targ)", "ref core (targ)",
                        "giant (targ)"});
    const ResilienceCurve random = ComputeResilienceCurve(
        graph, RemovalStrategy::kRandom, 10, 0,
        SeedFromString(dataset.short_name));
    const ResilienceCurve targeted = ComputeResilienceCurve(
        graph, RemovalStrategy::kHighestCorenessFirst, 10, random.reference_k,
        SeedFromString(dataset.short_name));
    for (std::size_t i = 0; i < random.points.size(); ++i) {
      const auto& r = random.points[i];
      const auto& t = targeted.points[i];
      table.AddRow(
          {TablePrinter::FormatDouble(100 * r.removed_fraction, 0) + "%",
           std::to_string(r.kmax), std::to_string(r.reference_core_size),
           std::to_string(r.largest_component), std::to_string(t.kmax),
           std::to_string(t.reference_core_size),
           std::to_string(t.largest_component)});
    }
    table.Print(std::cout);
    std::cout << "(reference core: k >= " << random.reference_k << ")\n";
  }
  std::cout << "\nExpected shape ([44]): targeted removal collapses the "
               "reference core almost immediately; random removal degrades "
               "it gradually while the giant component persists in both.\n";
  return 0;
}
