#include "runtime_common.h"

#include <cstdlib>

namespace corekit::bench {

double BaselineBudgetSeconds() {
  const char* env = std::getenv("COREKIT_BENCH_BUDGET");
  if (env == nullptr) return 10.0;
  const double parsed = std::atof(env);
  return parsed > 0 ? parsed : 10.0;
}

std::string FormatRuntime(std::optional<double> seconds) {
  return seconds.has_value() ? TablePrinter::FormatSeconds(*seconds)
                             : ">budget";
}

double EngineStageSeconds(const CoreEngine& engine, std::string_view stage) {
  const StageRecord* record = engine.stats().Find(stage);
  if (record == nullptr) {
    // A misspelled or never-run stage silently reporting 0.0 corrupts a
    // benchmark table (and once did); fail loudly instead.
    std::string recorded;
    for (const StageRecord& r : engine.stats().records()) {
      if (!recorded.empty()) recorded += ", ";
      recorded += r.name;
    }
    COREKIT_CHECK(record != nullptr)
        << "EngineStageSeconds: stage '" << stage
        << "' was never recorded by this engine (recorded stages: ["
        << recorded << "])";
  }
  return record->seconds;
}

std::optional<double> TimedBaselineCoreSet(const Graph& graph,
                                           const CoreDecomposition& cores,
                                           Metric metric, double budget) {
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  const bool with_triangles = MetricNeedsTriangles(metric);
  Timer timer;
  double best = 0.0;
  for (VertexId k = 0; k <= cores.kmax; ++k) {
    const PrimaryValues pv =
        ScratchCoreSetPrimaries(graph, cores, k, with_triangles);
    best = std::max(best, EvaluateMetric(metric, pv, globals));
    if (timer.ElapsedSeconds() > budget) return std::nullopt;
  }
  (void)best;
  return timer.ElapsedSeconds();
}

std::optional<double> TimedBaselineSingleCore(const Graph& graph,
                                              const CoreDecomposition& cores,
                                              const CoreForest& forest,
                                              Metric metric, double budget) {
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  const bool with_triangles = MetricNeedsTriangles(metric);
  Timer timer;
  double best = 0.0;
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const std::vector<VertexId> members = forest.CoreVertices(i);
    const PrimaryValues pv = ScratchSingleCorePrimaries(
        graph, cores, members, forest.node(i).coreness, with_triangles);
    best = std::max(best, EvaluateMetric(metric, pv, globals));
    if (timer.ElapsedSeconds() > budget) return std::nullopt;
  }
  (void)best;
  return timer.ElapsedSeconds();
}

}  // namespace corekit::bench
