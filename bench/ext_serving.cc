// Extension bench: the serving tier end to end — TCP transport, worker
// pool, EngineRegistry tenancy, single-flight coalescing — measured
// with the deterministic load generator.
//
// Two views:
//   * ext_serving/<dataset>: one tenant served hot over real sockets.
//     Reports client-observed p50/p99/p999 latency and QPS (the ROADMAP
//     serving numbers), plus the transport/service counters, plus the
//     wire-vs-direct differential: the socket run's order-independent
//     checksum must equal a serial no-socket replay through
//     EngineService::Handle.
//   * ext_serving/evict_mix: the two smallest stand-ins share a
//     registry whose budget holds only one engine, so the mixed
//     workload forces LRU eviction and re-admission mid-run.  The
//     checksum must STILL match the serial replay — eviction is
//     answer-invariant — and the admission/eviction counters land in
//     the JSON so a regression in registry behaviour shows up as a
//     counter diff, not just a latency blip.

#include <algorithm>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "corekit/corekit.h"
#include "corekit/engine/engine_registry.h"
#include "corekit/server/engine_service.h"
#include "corekit/server/load_generator.h"
#include "corekit/server/tcp_server.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

using server::EngineService;
using server::LoadGenOptions;
using server::LoadGenReport;
using server::RunDirectLoad;
using server::RunWireLoad;
using server::TcpServer;
using server::TcpServerOptions;

// The per-case facts both views share: the latency distribution, the
// throughput, the wire counters, and the differential verdict.
void RecordServingFacts(CaseRecorder& rec, const LoadGenOptions& options,
                        const LoadGenReport& wire,
                        const LoadGenReport& direct,
                        const EngineService& service,
                        const TcpServer& server,
                        const EngineRegistry& registry) {
  const bool match =
      wire.transport_failures == 0 && wire.checksum == direct.checksum;
  rec.SetSeconds(wire.wall_seconds);
  rec.Counter("clients", static_cast<double>(options.num_clients));
  rec.Counter("queries", static_cast<double>(wire.queries));
  rec.Counter("errors", static_cast<double>(wire.errors));
  rec.Counter("qps", wire.qps);
  rec.Counter("p50_seconds", wire.p50_seconds);
  rec.Counter("p99_seconds", wire.p99_seconds);
  rec.Counter("p999_seconds", wire.p999_seconds);
  rec.Counter("max_latency_seconds", wire.max_seconds);
  rec.Counter("wire_matches_direct", match ? 1.0 : 0.0);

  const EngineService::Stats service_stats = service.stats();
  rec.Counter("coalesced", static_cast<double>(service_stats.coalesced));
  const TcpServer::Stats server_stats = server.stats();
  rec.Counter("frames_decoded",
              static_cast<double>(server_stats.frames_decoded));
  rec.Counter("requests_completed",
              static_cast<double>(server_stats.requests_completed));
  const EngineRegistry::Stats registry_stats = registry.stats();
  rec.Counter("admissions", static_cast<double>(registry_stats.admissions));
  rec.Counter("evictions", static_cast<double>(registry_stats.evictions));
  rec.Counter("registry_hits", static_cast<double>(registry_stats.hits));
  rec.Counter("overcommits", static_cast<double>(registry_stats.overcommits));
}

std::string FormatPercentileMs(double seconds) {
  return TablePrinter::FormatDouble(seconds * 1e3, 2) + "ms";
}

void RunExtServing(BenchRunner& run) {
  std::cout << "== Extension: serving tier over real sockets ==\n";
  TablePrinter table({"Dataset", "clients", "queries", "qps", "p50", "p99",
                      "p999", "wire=direct"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_serving/" + dataset.short_name,
         SuitesPlusSmoke("ext", dataset.short_name)},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          const std::uint32_t num_vertices = graph.NumVertices();

          EngineRegistry registry;  // unbounded: one tenant stays hot
          COREKIT_CHECK(
              registry.AddGraph(dataset.short_name, Graph(graph)).ok());
          EngineService service(registry);
          TcpServer server(service, TcpServerOptions{});
          COREKIT_CHECK(server.Start().ok());

          LoadGenOptions options;
          options.port = server.port();
          options.graphs = {dataset.short_name};
          options.graph_sizes = {num_vertices};
          options.num_clients = 4;
          options.queries_per_client = 64;
          options.pipeline_depth = 2;
          options.seed = SeedFromString(dataset.short_name + "-serve");
          const LoadGenReport wire = RunWireLoad(options);

          // Reference: the same mix, serially, no sockets, fresh
          // tenant.  Bitwise-equal checksums or the transport changed
          // an answer.
          EngineRegistry reference;
          COREKIT_CHECK(
              reference.AddGraph(dataset.short_name, Graph(graph)).ok());
          EngineService reference_service(reference);
          const LoadGenReport direct =
              RunDirectLoad(reference_service, options);

          RecordServingFacts(rec, options, wire, direct, service, server,
                             registry);
          server.Shutdown();

          printed = {dataset.short_name,
                     std::to_string(options.num_clients),
                     TablePrinter::FormatDouble(
                         static_cast<double>(wire.queries), 0),
                     TablePrinter::FormatDouble(wire.qps, 0),
                     FormatPercentileMs(wire.p50_seconds),
                     FormatPercentileMs(wire.p99_seconds),
                     FormatPercentileMs(wire.p999_seconds),
                     wire.checksum == direct.checksum ? "yes" : "NO"};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: p50 well under a millisecond for warm "
               "tenants (the engine answers from versioned artifacts; the "
               "wire adds a socket round-trip), p999 dominated by cold "
               "builds and queue waits.\n\n";

  // --- Eviction mix: two tenants, budget for one -------------------------
  const std::vector<BenchDataset> active = ActiveDatasets();
  std::vector<BenchDataset> tenants;
  for (const BenchDataset& dataset : active) {
    if (dataset.short_name == "AP" || dataset.short_name == "G") {
      tenants.push_back(dataset);
    }
  }
  if (tenants.size() < 2 && active.size() >= 2) {
    tenants.assign(active.begin(), active.begin() + 2);
  }
  if (tenants.size() < 2) return;  // dataset filter left us one tenant

  const CaseResult* mix_result = run.Case(
      {"ext_serving/evict_mix", {"ext", "smoke"}},
      [&](CaseRecorder& rec) {
        const Graph first = tenants[0].make();
        const Graph second = tenants[1].make();
        // Budget for exactly one engine (the larger of the two): every
        // cross-tenant switch in the mix is an eviction + cold
        // re-admission.
        EngineRegistryOptions registry_options;
        registry_options.memory_budget_bytes =
            std::max(EstimateEngineFootprintBytes(first),
                     EstimateEngineFootprintBytes(second));
        EngineRegistry registry(registry_options);
        COREKIT_CHECK(
            registry.AddGraph(tenants[0].short_name, Graph(first)).ok());
        COREKIT_CHECK(
            registry.AddGraph(tenants[1].short_name, Graph(second)).ok());
        EngineService service(registry);
        TcpServer server(service, TcpServerOptions{});
        COREKIT_CHECK(server.Start().ok());

        LoadGenOptions options;
        options.port = server.port();
        options.graphs = {tenants[0].short_name, tenants[1].short_name};
        options.graph_sizes = {first.NumVertices(), second.NumVertices()};
        // One serial client: with concurrent clients both tenants are
        // usually leased at admission time and the registry overcommits
        // instead of evicting.  Serially, every tenant switch in the
        // mix is a genuine evict + cold re-admit — the thrash this case
        // is here to price.
        options.num_clients = 1;
        options.queries_per_client = 64;
        options.seed = SeedFromString("serve-evict-mix");
        const LoadGenReport wire = RunWireLoad(options);

        // The reference replay runs unbounded: if eviction ever changed
        // an answer, the checksums split here.
        EngineRegistry reference;
        COREKIT_CHECK(
            reference.AddGraph(tenants[0].short_name, Graph(first)).ok());
        COREKIT_CHECK(
            reference.AddGraph(tenants[1].short_name, Graph(second)).ok());
        EngineService reference_service(reference);
        const LoadGenReport direct =
            RunDirectLoad(reference_service, options);

        RecordServingFacts(rec, options, wire, direct, service, server,
                           registry);
        server.Shutdown();
      });
  if (mix_result != nullptr) {
    const auto counter = [&](const char* key) {
      for (const auto& [name, value] : mix_result->counters) {
        if (name == key) return value;
      }
      return 0.0;
    };
    std::cout << "Eviction mix (" << tenants[0].short_name << " + "
              << tenants[1].short_name << ", budget for one): "
              << TablePrinter::FormatDouble(counter("admissions"), 0)
              << " admissions, "
              << TablePrinter::FormatDouble(counter("evictions"), 0)
              << " evictions, wire=direct "
              << (counter("wire_matches_direct") == 1.0 ? "yes" : "NO")
              << ".\n";
  }
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_serving, corekit::bench::RunExtServing);
COREKIT_BENCH_MAIN()
