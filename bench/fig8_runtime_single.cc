// Figure 8: runtime of finding the best single k-core — Baseline
// (Section IV-B) vs Optimal (Algorithm 5) — on every dataset, for the
// same four metrics as Figure 7.
//
// One CoreEngine per dataset, as in Figure 7: decomposition, ordering and
// forest are built once and amortized across the four metrics; per-stage
// timings come from the engine's StageStats.
//
// Paper reference: the trends mirror Figure 7 (1-4 orders of magnitude),
// with slightly larger absolute times because connectivity (the core
// forest) is part of the computation.  `index` here includes both the
// vertex ordering and the LCPS forest construction.

#include <cstddef>
#include <iostream>
#include <map>
#include <optional>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"
#include "runtime_common.h"

namespace corekit::bench {
namespace {

void RunFig8(BenchRunner& run) {
  const double budget = BaselineBudgetSeconds();
  std::cout << "== Figure 8: runtime, finding the best single k-core "
               "(baseline budget "
            << budget << "s) ==\n";

  struct Row {
    std::string dataset;
    double core_time = 0.0;
    double index_time = 0.0;
    double opt_time = 0.0;
    std::optional<double> base_time;
  };
  std::map<int, std::vector<Row>> rows;  // keyed by metric

  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::map<int, Row> dataset_rows;
    const CaseResult* result = run.Case(
        {"fig8/" + dataset.short_name,
         SuitesPlusSmoke("paper", dataset.short_name)},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          CoreEngine engine(graph);
          double optimal_total = 0.0;
          dataset_rows.clear();
          for (const Metric metric : kRuntimeMetrics) {
            (void)engine.BestSingleCore(metric);

            Row row;
            row.dataset = dataset.short_name;
            row.core_time = EngineStageSeconds(engine, "decompose");
            // As in the paper's accounting, `index` covers everything the
            // optimal algorithm builds beyond the decomposition: ordering
            // + LCPS forest.
            row.index_time = EngineStageSeconds(engine, "order") +
                             EngineStageSeconds(engine, "forest");
            row.opt_time = EngineStageSeconds(
                engine, CoreEngine::SingleCoreStageName(metric));
            row.base_time = TimedBaselineSingleCore(
                graph, engine.Cores(), engine.Forest(), metric, budget);
            optimal_total += row.opt_time;
            const std::string suffix = MetricShortName(metric);
            rec.Counter("opt_" + suffix, row.opt_time);
            rec.Counter("base_" + suffix,
                        row.base_time.has_value() ? *row.base_time : -1.0);
            dataset_rows[static_cast<int>(metric)] = row;
          }
          rec.SetSeconds(EngineStageSeconds(engine, "decompose") +
                         EngineStageSeconds(engine, "order") +
                         EngineStageSeconds(engine, "forest") +
                         optimal_total);
          rec.Counter("m", static_cast<double>(graph.NumEdges()));
          rec.Counter("kmax", static_cast<double>(engine.Cores().kmax));
          rec.EngineStages(engine);
        });
    if (result == nullptr) continue;
    for (auto& [metric, row] : dataset_rows) {
      rows[metric].push_back(std::move(row));
    }
  }

  for (const Metric metric : kRuntimeMetrics) {
    std::cout << "\n-- metric: " << MetricName(metric) << " --\n";
    TablePrinter table(
        {"Dataset", "core", "index", "opt", "base", "speedup"});
    for (const Row& row : rows[static_cast<int>(metric)]) {
      std::string speedup = "-";
      if (row.base_time.has_value() && row.opt_time > 0) {
        speedup =
            TablePrinter::FormatDouble(*row.base_time / row.opt_time, 1) +
            "x";
      } else if (!row.base_time.has_value() && row.opt_time > 0) {
        speedup = ">";
        speedup += TablePrinter::FormatDouble(budget / row.opt_time, 0);
        speedup += "x";
      }
      table.AddRow({row.dataset, TablePrinter::FormatSeconds(row.core_time),
                    TablePrinter::FormatSeconds(row.index_time),
                    TablePrinter::FormatSeconds(row.opt_time),
                    FormatRuntime(row.base_time), speedup});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): same 1-4 orders of magnitude as "
               "Figure 7, slightly larger absolute times due to the "
               "connectivity (forest) work.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(fig8_runtime_single, corekit::bench::RunFig8);
COREKIT_BENCH_MAIN()
