// Figure 8: runtime of finding the best single k-core — Baseline
// (Section IV-B) vs Optimal (Algorithm 5) — on every dataset, for the
// same four metrics as Figure 7.
//
// Paper reference: the trends mirror Figure 7 (1-4 orders of magnitude),
// with slightly larger absolute times because connectivity (the core
// forest) is part of the computation.  `index` here includes both the
// vertex ordering and the LCPS forest construction.

#include <iostream>
#include <optional>

#include "corekit/corekit.h"
#include "datasets.h"
#include "runtime_common.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  const double budget = BaselineBudgetSeconds();
  std::cout << "== Figure 8: runtime, finding the best single k-core "
               "(baseline budget "
            << budget << "s) ==\n";

  for (const Metric metric : kRuntimeMetrics) {
    std::cout << "\n-- metric: " << MetricName(metric) << " --\n";
    TablePrinter table(
        {"Dataset", "core", "index", "opt", "base", "speedup"});
    for (const BenchDataset& dataset : ActiveDatasets()) {
      const Graph graph = dataset.make();

      Timer timer;
      const CoreDecomposition cores = ComputeCoreDecomposition(graph);
      const double core_time = timer.ElapsedSeconds();

      timer.Reset();
      const OrderedGraph ordered(graph, cores);
      const CoreForest forest(graph, cores);
      const double index_time = timer.ElapsedSeconds();

      timer.Reset();
      const SingleCoreProfile profile =
          FindBestSingleCore(ordered, forest, metric);
      const double opt_time = timer.ElapsedSeconds();
      (void)profile;

      const std::optional<double> base_time =
          TimedBaselineSingleCore(graph, cores, forest, metric, budget);

      std::string speedup = "-";
      if (base_time.has_value() && opt_time > 0) {
        speedup =
            TablePrinter::FormatDouble(*base_time / opt_time, 1) + "x";
      } else if (!base_time.has_value() && opt_time > 0) {
        speedup =
            ">" + TablePrinter::FormatDouble(budget / opt_time, 0) + "x";
      }
      table.AddRow({dataset.short_name,
                    TablePrinter::FormatSeconds(core_time),
                    TablePrinter::FormatSeconds(index_time),
                    TablePrinter::FormatSeconds(opt_time),
                    FormatRuntime(base_time), speedup});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): same 1-4 orders of magnitude as "
               "Figure 7, slightly larger absolute times due to the "
               "connectivity (forest) work.\n";
  return 0;
}
