// Extension bench: incremental core maintenance vs recomputation.
//
// Applies a mixed insert/delete update stream to each dataset and
// compares the dynamic index's per-update cost (and its subcore
// footprint) against the naive alternative of rerunning the O(m)
// decomposition after every update.  The headline: updates touch a tiny
// fraction of the graph, so maintenance is orders of magnitude faster —
// exactly why the paradigm matters for keeping best-k answers fresh on
// evolving networks.

#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "corekit/corekit.h"
#include "corekit/engine/engine_registry.h"
#include "corekit/engine/engine_server.h"
#include "corekit/server/engine_service.h"
#include "corekit/server/load_generator.h"
#include "corekit/server/tcp_server.h"
#include "corekit/server/wire_client.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtDynamic(BenchRunner& run) {
  constexpr int kUpdates = 2000;

  std::cout << "== Extension: incremental core maintenance (" << kUpdates
            << " updates per dataset) ==\n";
  TablePrinter table({"Dataset", "updates/s", "avg footprint",
                      "recompute/s", "speedup", "exact"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_dynamic/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          DynamicCoreIndex index(graph);
          EdgeList removable = graph.ToEdgeList();
          Rng rng(SeedFromString(dataset.short_name + "-dyn"));
          rng.Shuffle(removable);

          // Update stream: alternate deletions of existing edges and
          // re-insertions of previously removed ones.
          Timer timer;
          std::uint64_t footprint_total = 0;
          std::size_t next_remove = 0;
          EdgeList removed;
          for (int op = 0; op < kUpdates; ++op) {
            if (removed.empty() ||
                (op % 2 == 0 && next_remove < removable.size())) {
              const auto [u, v] = removable[next_remove++];
              index.RemoveEdge(u, v);
              removed.emplace_back(u, v);
            } else {
              const auto [u, v] = removed.back();
              removed.pop_back();
              index.InsertEdge(u, v);
            }
            footprint_total += index.LastUpdateFootprint();
          }
          const double dynamic_time = timer.ElapsedSeconds();

          // Recompute baseline: a full decomposition per update, measured
          // on a small sample and extrapolated.
          constexpr int kSample = 5;
          timer.Reset();
          for (int i = 0; i < kSample; ++i) {
            const CoreDecomposition cores = ComputeCoreDecomposition(graph);
            (void)cores;
          }
          const double recompute_per_update =
              timer.ElapsedSeconds() / kSample;

          // Exactness check at the end of the stream.
          const bool exact =
              index.CorenessArray() ==
              ComputeCoreDecomposition(index.Snapshot()).coreness;

          const double updates_per_second = kUpdates / dynamic_time;
          const double recompute_per_second = 1.0 / recompute_per_update;

          rec.SetSeconds(dynamic_time);
          rec.Counter("updates", kUpdates);
          rec.Counter("updates_per_second", updates_per_second);
          rec.Counter("avg_footprint",
                      static_cast<double>(footprint_total) / kUpdates);
          rec.Counter("recompute_per_second", recompute_per_second);
          rec.Counter("exact", exact ? 1.0 : 0.0);

          printed = {dataset.short_name,
                     TablePrinter::FormatDouble(updates_per_second, 0),
                     TablePrinter::FormatDouble(
                         static_cast<double>(footprint_total) / kUpdates, 1),
                     TablePrinter::FormatDouble(recompute_per_second, 1),
                     TablePrinter::FormatDouble(
                         updates_per_second / recompute_per_second, 0) +
                         "x",
                     exact ? "yes" : "NO"};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: thousands-to-millions of updates per "
               "second vs a handful of recomputes; footprints are tiny "
               "relative to n.\n";
}

// Mixed churn + query serving: the mutable-engine path.  One writer
// thread applies edge batches through CoreEngine::ApplyBatch while query
// clients keep hitting the same engine; ApplyBatch patches coreness and
// the count stages in place instead of dropping everything, so the cost
// of staying fresh is a per-batch patch, not a per-batch rebuild.  The
// headline counters: patch_vs_rebuild_speedup (seconds a cold
// decomposition would cost per batch over seconds a patch actually
// cost) and queries_per_patch (how many answers each patch kept fresh).
void RunExtDynamicServe(BenchRunner& run) {
  std::cout << "== Extension: churn + query serving via ApplyBatch ==\n";
  TablePrinter table({"Dataset", "batches", "queries", "patch/batch",
                      "rebuild/batch", "speedup", "queries/patch"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_dynamic/serve/" + dataset.short_name,
         SuitesPlusSmoke("ext", dataset.short_name)},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          CoreEngine engine{Graph(graph)};
          // An empty batch adopts the snapshot into the dynamic index
          // without touching the graph: the one-time cost of switching
          // the engine into mutable mode is paid here, not billed to
          // the per-batch patch latency below.
          (void)engine.ApplyBatch({}, {});

          ChurnMixOptions options;
          options.serve.num_clients = 4;
          options.serve.queries_per_client = 16;
          options.num_batches = 12;
          options.inserts_per_batch = 8;
          options.deletes_per_batch = 8;
          // Perturb the live edge set (delete + restore) rather than
          // wiring random pairs: that is what real churn looks like,
          // and it keeps per-update footprints local instead of
          // triggering the adversarial near-global insert cascades the
          // random stream is designed to stress.
          options.perturb_existing = true;
          options.churn_seed = SeedFromString(dataset.short_name + "-churn");

          // Phase 1 — mixed serving: clients query while the writer
          // patches.  Demonstrates freshness under contention; its
          // patch timings are scheduler slices (the writer's clock runs
          // while reader threads rebuild epoch-invalidated profiles),
          // so latency is NOT taken from this phase.
          const ChurnServeReport report = ServeChurnMix(engine, options);

          // Phase 2 — the same churn stream shape with zero clients:
          // the writer runs alone, so the per-batch timer sees the
          // patch cost itself.  This is the latency side-by-side with
          // the rebuild baseline below.
          ChurnMixOptions solo = options;
          solo.serve.num_clients = 0;
          solo.serve.queries_per_client = 0;
          solo.churn_seed = options.churn_seed ^ 0x50105010ULL;
          const ChurnServeReport quiet = ServeChurnMix(engine, solo);

          // Rebuild baseline: what the patch replaces.  A batch patches
          // coreness plus the exact triangle/triplet counts; the
          // invalidate-everything alternative recomputes all three from
          // scratch (ordering/forest/profiles rebuild identically in
          // both worlds, so they cancel out of the comparison).
          constexpr int kSample = 3;
          // The ordering rebuild is paid identically in both worlds
          // (profile queries need it either way), so it stays outside
          // the timed region.
          const CoreDecomposition base_cores =
              ComputeCoreDecomposition(graph);
          const OrderedGraph ordered(graph, base_cores);
          Timer timer;
          for (int i = 0; i < kSample; ++i) {
            const CoreDecomposition cores = ComputeCoreDecomposition(graph);
            (void)cores;
            (void)CountTriangles(ordered);
            (void)CountTriplets(graph);
          }
          const double rebuild_per_batch = timer.ElapsedSeconds() / kSample;

          // ROADMAP PR 6 follow-up, measured: ApplyBatch still drops the
          // ordering and forest wholesale, so every profile query after a
          // batch pays this rebuild even though coreness itself was
          // patched in place.  The counter quantifies what an incremental
          // ordering/forest would save per batch.
          timer.Reset();
          for (int i = 0; i < kSample; ++i) {
            const OrderedGraph reordered(graph, base_cores);
            const CoreForest reforest(graph, base_cores);
            (void)reordered;
            (void)reforest;
          }
          const double dropped_rebuild_per_batch =
              timer.ElapsedSeconds() / kSample;

          const double batches = static_cast<double>(report.batches);
          const double patch_per_batch =
              quiet.patch_seconds_total /
              std::max(static_cast<double>(quiet.batches), 1.0);
          const double speedup =
              patch_per_batch > 0 ? rebuild_per_batch / patch_per_batch : 0;
          const double queries =
              static_cast<double>(report.queries.TotalQueries());
          const double queries_per_patch = queries / std::max(batches, 1.0);

          rec.SetSeconds(report.queries.wall_seconds);
          rec.Counter("batches", batches);
          rec.Counter("inserted", static_cast<double>(report.inserted));
          rec.Counter("deleted", static_cast<double>(report.deleted));
          rec.Counter("coreness_changed",
                      static_cast<double>(report.coreness_changed));
          rec.Counter("queries", queries);
          rec.Counter("serve_patch_seconds_total", report.patch_seconds_total);
          rec.Counter("patch_seconds_per_batch", patch_per_batch);
          rec.Counter("rebuild_seconds_per_batch", rebuild_per_batch);
          rec.Counter("dropped_ordering_rebuild_seconds_per_batch",
                      dropped_rebuild_per_batch);
          rec.Counter("dropped_ordering_vs_patch",
                      patch_per_batch > 0
                          ? dropped_rebuild_per_batch / patch_per_batch
                          : 0.0);
          rec.Counter("patch_vs_rebuild_speedup", speedup);
          rec.Counter("queries_per_patch", queries_per_patch);
          rec.EngineStages(engine);

          printed = {dataset.short_name,
                     std::to_string(report.batches),
                     TablePrinter::FormatDouble(queries, 0),
                     TablePrinter::FormatSeconds(patch_per_batch),
                     TablePrinter::FormatSeconds(rebuild_per_batch),
                     TablePrinter::FormatDouble(speedup, 1) + "x",
                     TablePrinter::FormatDouble(queries_per_patch, 1)};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: patching beats the per-batch rebuild "
               "wherever update footprints are local (most datasets); AP's "
               "stand-in is the documented outlier whose near-uniform "
               "coreness makes subcores — and hence per-update footprints — "
               "a large fraction of the graph, pushing dynamic maintenance "
               "toward recompute cost (see the table above: ~1x there "
               "too).  Every query between batches reads the patched "
               "(fresh) substrate rather than a stale snapshot.\n";
}

// The same churn workload one network hop up: ApplyBatch frames over
// the wire into an EngineRegistry holding several tenants, while reader
// clients query the *other* tenants.  Pins the per-tenant StageStats
// `patches` aggregation across the registry: patches accrue only on the
// churned tenant (its epoch equals the batch count), never leak to its
// neighbours, and every batch is acknowledged with the engine's epoch —
// the serving-tier freshness contract.
void RunExtDynamicServeWire(BenchRunner& run) {
  const std::vector<BenchDataset> active = ActiveDatasets();
  if (active.size() < 2) return;  // needs a churned tenant plus a reader's
  constexpr std::uint32_t kBatches = 24;
  constexpr std::uint32_t kEdgesPerBatch = 4;

  std::cout << "== Extension: churn over the wire across registry tenants "
               "==\n";
  const CaseResult* result = run.Case(
      {"ext_dynamic/serve_wire", {"ext"}},
      [&](CaseRecorder& rec) {
        // Tenant 0 takes the writes; the rest serve reads.
        const std::size_t tenant_count = std::min<std::size_t>(
            active.size(), 3);
        std::vector<Graph> graphs;
        EngineRegistry registry;  // unbounded: churn pins residency anyway
        for (std::size_t i = 0; i < tenant_count; ++i) {
          graphs.push_back(active[i].make());
          COREKIT_CHECK(registry.AddGraph(active[i].short_name,
                                          Graph(graphs.back())).ok());
        }
        server::EngineService service(registry);
        server::TcpServer server(service, server::TcpServerOptions{});
        COREKIT_CHECK(server.Start().ok());

        // Perturb live edges (delete + restore) so every batch is
        // effective: each bumps the epoch by exactly one.
        EdgeList removable = graphs[0].ToEdgeList();
        Rng rng(SeedFromString(active[0].short_name + "-wire-churn"));
        rng.Shuffle(removable);

        server::WireClient writer;
        COREKIT_CHECK(writer.Connect("127.0.0.1", server.port()).ok());
        Timer timer;
        std::uint64_t inserted_total = 0;
        std::uint64_t deleted_total = 0;
        for (std::uint32_t batch = 0; batch < kBatches; ++batch) {
          server::Request request;
          request.opcode = server::Opcode::kApplyBatch;
          request.request_id = batch + 1;
          request.graph = active[0].short_name;
          const std::size_t offset =
              (batch / 2 * kEdgesPerBatch) % removable.size();
          for (std::uint32_t i = 0; i < kEdgesPerBatch; ++i) {
            const Edge edge = removable[(offset + i) % removable.size()];
            if (batch % 2 == 0) {
              request.deletes.push_back(edge);
            } else {
              request.inserts.push_back(edge);
            }
          }
          const Result<server::Response> response = writer.Call(request);
          COREKIT_CHECK(response.ok());
          COREKIT_CHECK(response->status == server::WireError::kOk)
              << WireErrorName(response->status);
          COREKIT_CHECK(response->epoch == batch + 1);
          inserted_total += response->inserted;
          deleted_total += response->deleted;
        }
        const double churn_seconds = timer.ElapsedSeconds();

        // Readers over the remaining tenants, after the churn: their
        // stage tables must not have picked up a single patch.
        server::LoadGenOptions options;
        options.port = server.port();
        for (std::size_t i = 1; i < tenant_count; ++i) {
          options.graphs.push_back(active[i].short_name);
          options.graph_sizes.push_back(graphs[i].NumVertices());
        }
        options.num_clients = 2;
        options.queries_per_client = 16;
        options.seed = SeedFromString("serve-wire-readers");
        const server::LoadGenReport reads = server::RunWireLoad(options);
        COREKIT_CHECK(reads.transport_failures == 0);

        // The pin: patches aggregate on the churned tenant only.
        bool patches_isolated = true;
        std::uint64_t churned_patches = 0;
        for (std::size_t i = 0; i < tenant_count; ++i) {
          auto lease = registry.Acquire(active[i].short_name);
          COREKIT_CHECK(lease.ok());
          const std::uint64_t patches =
              lease->engine().stats().TotalPatches();
          if (i == 0) {
            churned_patches = patches;
            if (lease->engine().Epoch() != kBatches) {
              patches_isolated = false;
            }
          } else if (patches != 0 || lease->engine().Epoch() != 0) {
            patches_isolated = false;
          }
          rec.Counter("patches_" + active[i].short_name,
                      static_cast<double>(patches));
          lease->Release();
        }
        if (churned_patches < kBatches) patches_isolated = false;

        rec.SetSeconds(churn_seconds);
        rec.Counter("batches", static_cast<double>(kBatches));
        rec.Counter("inserted", static_cast<double>(inserted_total));
        rec.Counter("deleted", static_cast<double>(deleted_total));
        rec.Counter("batch_seconds",
                    churn_seconds / static_cast<double>(kBatches));
        rec.Counter("reader_queries", static_cast<double>(reads.queries));
        rec.Counter("reader_errors", static_cast<double>(reads.errors));
        rec.Counter("patches_isolated", patches_isolated ? 1.0 : 0.0);
        server.Shutdown();

        std::cout << "  " << kBatches << " batches -> "
                  << active[0].short_name << " ("
                  << TablePrinter::FormatSeconds(
                         churn_seconds / static_cast<double>(kBatches))
                  << "/batch), " << reads.queries
                  << " reads on untouched tenants, patches isolated: "
                  << (patches_isolated ? "yes" : "NO") << "\n";
      });
  (void)result;
  std::cout << "\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_dynamic, corekit::bench::RunExtDynamic);
COREKIT_BENCH_UNIT(ext_dynamic_serve, corekit::bench::RunExtDynamicServe);
COREKIT_BENCH_UNIT(ext_dynamic_serve_wire,
                   corekit::bench::RunExtDynamicServeWire);
COREKIT_BENCH_MAIN()
