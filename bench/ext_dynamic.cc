// Extension bench: incremental core maintenance vs recomputation.
//
// Applies a mixed insert/delete update stream to each dataset and
// compares the dynamic index's per-update cost (and its subcore
// footprint) against the naive alternative of rerunning the O(m)
// decomposition after every update.  The headline: updates touch a tiny
// fraction of the graph, so maintenance is orders of magnitude faster —
// exactly why the paradigm matters for keeping best-k answers fresh on
// evolving networks.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtDynamic(BenchRunner& run) {
  constexpr int kUpdates = 2000;

  std::cout << "== Extension: incremental core maintenance (" << kUpdates
            << " updates per dataset) ==\n";
  TablePrinter table({"Dataset", "updates/s", "avg footprint",
                      "recompute/s", "speedup", "exact"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_dynamic/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          DynamicCoreIndex index(graph);
          EdgeList removable = graph.ToEdgeList();
          Rng rng(SeedFromString(dataset.short_name + "-dyn"));
          rng.Shuffle(removable);

          // Update stream: alternate deletions of existing edges and
          // re-insertions of previously removed ones.
          Timer timer;
          std::uint64_t footprint_total = 0;
          std::size_t next_remove = 0;
          EdgeList removed;
          for (int op = 0; op < kUpdates; ++op) {
            if (removed.empty() ||
                (op % 2 == 0 && next_remove < removable.size())) {
              const auto [u, v] = removable[next_remove++];
              index.RemoveEdge(u, v);
              removed.emplace_back(u, v);
            } else {
              const auto [u, v] = removed.back();
              removed.pop_back();
              index.InsertEdge(u, v);
            }
            footprint_total += index.LastUpdateFootprint();
          }
          const double dynamic_time = timer.ElapsedSeconds();

          // Recompute baseline: a full decomposition per update, measured
          // on a small sample and extrapolated.
          constexpr int kSample = 5;
          timer.Reset();
          for (int i = 0; i < kSample; ++i) {
            const CoreDecomposition cores = ComputeCoreDecomposition(graph);
            (void)cores;
          }
          const double recompute_per_update =
              timer.ElapsedSeconds() / kSample;

          // Exactness check at the end of the stream.
          const bool exact =
              index.CorenessArray() ==
              ComputeCoreDecomposition(index.Snapshot()).coreness;

          const double updates_per_second = kUpdates / dynamic_time;
          const double recompute_per_second = 1.0 / recompute_per_update;

          rec.SetSeconds(dynamic_time);
          rec.Counter("updates", kUpdates);
          rec.Counter("updates_per_second", updates_per_second);
          rec.Counter("avg_footprint",
                      static_cast<double>(footprint_total) / kUpdates);
          rec.Counter("recompute_per_second", recompute_per_second);
          rec.Counter("exact", exact ? 1.0 : 0.0);

          printed = {dataset.short_name,
                     TablePrinter::FormatDouble(updates_per_second, 0),
                     TablePrinter::FormatDouble(
                         static_cast<double>(footprint_total) / kUpdates, 1),
                     TablePrinter::FormatDouble(recompute_per_second, 1),
                     TablePrinter::FormatDouble(
                         updates_per_second / recompute_per_second, 0) +
                         "x",
                     exact ? "yes" : "NO"};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: thousands-to-millions of updates per "
               "second vs a handful of recomputes; footprints are tiny "
               "relative to n.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_dynamic, corekit::bench::RunExtDynamic);
COREKIT_BENCH_MAIN()
