// Extension bench: cold-path ingestion, serial vs parallel.
//
// The paper's pipeline is O(m) end to end, so on SNAP-scale inputs the
// text-file scan in front of it is a real fraction of wall clock.  This
// unit writes each stand-in dataset to a SNAP edge-list file and times
// the two cold paths that turn it back into a CSR Graph: the serial
// fgets reader (ReadSnapEdgeList) and the mmap'd chunked reader plus
// parallel CSR build (ReadSnapEdgeListParallel) on BenchThreads()
// workers.  Both paths produce bitwise-identical graphs — the speedup
// column is the only thing allowed to differ.

#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunIoIngest(BenchRunner& run) {
  const std::uint32_t threads = BenchThreads();
  std::cout << "== Extension: edge-list ingestion, serial vs parallel ("
            << threads << " thread(s)) ==\n";
  TablePrinter table({"Dataset", "n", "m", "file MB", "serial", "parallel",
                      "speedup"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    const CaseOptions serial_options{
        "io/serial/" + dataset.short_name,
        SuitesPlusSmoke("ext", dataset.short_name)};
    const CaseOptions parallel_options{
        "io/parallel/" + dataset.short_name,
        SuitesPlusSmoke("ext", dataset.short_name)};
    if (!run.ShouldRun(serial_options) && !run.ShouldRun(parallel_options)) {
      continue;
    }

    // Shared setup: materialize the dataset as a SNAP text file once;
    // every (re-runnable) case body just re-reads it.
    const Graph graph = dataset.make();
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("corekit_bench_io_" + dataset.short_name + ".txt"))
            .string();
    const Status written = WriteSnapEdgeList(graph, path);
    COREKIT_CHECK(written.ok());
    std::error_code ec;
    const std::uint64_t file_bytes = std::filesystem::file_size(path, ec);

    double serial_seconds = 0.0;
    const CaseResult* serial = run.Case(serial_options, [&](CaseRecorder& rec) {
      Timer timer;
      Result<Graph> reread = ReadSnapEdgeList(path);
      rec.SetSeconds(timer.ElapsedSeconds());
      COREKIT_CHECK(reread.ok());
      COREKIT_CHECK(reread->NumEdges() == graph.NumEdges());
      rec.Counter("n", static_cast<double>(graph.NumVertices()));
      rec.Counter("m", static_cast<double>(graph.NumEdges()));
      rec.Counter("file_bytes", static_cast<double>(file_bytes));
    });
    if (serial != nullptr) serial_seconds = serial->seconds_min;

    double parallel_seconds = 0.0;
    const CaseResult* parallel =
        run.Case(parallel_options, [&](CaseRecorder& rec) {
          ThreadPool pool(threads);
          Timer timer;
          Result<Graph> reread = ReadSnapEdgeListParallel(path, pool);
          rec.SetSeconds(timer.ElapsedSeconds());
          COREKIT_CHECK(reread.ok());
          COREKIT_CHECK(reread->NumEdges() == graph.NumEdges());
          rec.Counter("n", static_cast<double>(graph.NumVertices()));
          rec.Counter("m", static_cast<double>(graph.NumEdges()));
          rec.Counter("file_bytes", static_cast<double>(file_bytes));
          rec.Counter("threads", static_cast<double>(pool.num_threads()));
        });
    if (parallel != nullptr) parallel_seconds = parallel->seconds_min;

    std::filesystem::remove(path, ec);

    if (serial == nullptr && parallel == nullptr) continue;
    std::string speedup = "-";
    if (serial_seconds > 0 && parallel_seconds > 0) {
      speedup =
          TablePrinter::FormatDouble(serial_seconds / parallel_seconds, 2) +
          "x";
    }
    table.AddRow({dataset.short_name,
                  std::to_string(graph.NumVertices()),
                  std::to_string(graph.NumEdges()),
                  TablePrinter::FormatDouble(
                      static_cast<double>(file_bytes) / (1024.0 * 1024.0), 1),
                  serial_seconds > 0
                      ? TablePrinter::FormatSeconds(serial_seconds)
                      : "-",
                  parallel_seconds > 0
                      ? TablePrinter::FormatSeconds(parallel_seconds)
                      : "-",
                  std::move(speedup)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: the parallel column wins even at one "
               "thread (mmap scan + dense-array interning vs fgets + hash "
               "map) and scales with --threads until the file is "
               "memory-bandwidth bound.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(io_ingest, corekit::bench::RunIoIngest);
COREKIT_BENCH_MAIN()
