// Extension bench: best s for weighted (s-core) decomposition — the
// Section VII direction ("our algorithm may shed light on finding the
// best k-core on weighted graphs if we apply the weighted community
// scores").
//
// Each dataset is lifted to a weighted graph with deterministic random
// weights; the harness reports the s-core hierarchy depth, the best
// threshold per weighted metric, and the decomposition/scoring split.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtWeighted(BenchRunner& run) {
  std::cout << "== Extension: best s for weighted s-core decomposition "
               "==\n";
  TablePrinter table({"Dataset", "smax", "levels", "decomp", "score",
                      "s* (strength)", "s* (w-con)", "s* (w-den)"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_weighted/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph base = dataset.make();
          const WeightedGraph graph = RandomlyWeighted(
              base, 10.0, SeedFromString(dataset.short_name));

          Timer timer;
          const SCoreDecomposition cores = ComputeSCoreDecomposition(graph);
          const double decomp_time = timer.ElapsedSeconds();

          timer.Reset();
          std::vector<std::string> row{
              dataset.short_name, TablePrinter::FormatDouble(cores.smax, 1),
              "", "", "", "", "", ""};
          std::size_t levels = 0;
          int column = 5;
          for (const WeightedMetric metric :
               {WeightedMetric::kAverageStrength,
                WeightedMetric::kWeightedConductance,
                WeightedMetric::kWeightedDensity}) {
            const SCoreProfile profile = FindBestSCore(graph, cores, metric);
            levels = profile.thresholds.size();
            row[static_cast<std::size_t>(column++)] =
                TablePrinter::FormatDouble(profile.best_s, 2);
          }
          const double score_time = timer.ElapsedSeconds();
          row[2] = std::to_string(levels);
          row[3] = TablePrinter::FormatSeconds(decomp_time);
          row[4] = TablePrinter::FormatSeconds(score_time);
          printed = std::move(row);

          rec.SetSeconds(decomp_time + score_time);
          rec.Counter("smax", cores.smax);
          rec.Counter("levels", static_cast<double>(levels));
          rec.Counter("decomp_seconds", decomp_time);
          rec.Counter("score_seconds", score_time);
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: cohesion metrics (strength, density) pick "
               "large s; the separation metric picks small s — the "
               "weighted mirror of Table IV.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_weighted, corekit::bench::RunExtWeighted);
COREKIT_BENCH_MAIN()
