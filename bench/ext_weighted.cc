// Extension bench: best s for weighted (s-core) decomposition — the
// Section VII direction ("our algorithm may shed light on finding the
// best k-core on weighted graphs if we apply the weighted community
// scores").
//
// Each dataset is lifted to a weighted graph with deterministic random
// weights; the harness reports the s-core hierarchy depth, the best
// threshold per weighted metric, and the decomposition/scoring split.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  std::cout << "== Extension: best s for weighted s-core decomposition "
               "==\n";
  TablePrinter table({"Dataset", "smax", "levels", "decomp", "score",
                      "s* (strength)", "s* (w-con)", "s* (w-den)"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    const Graph base = dataset.make();
    const WeightedGraph graph =
        RandomlyWeighted(base, 10.0, SeedFromString(dataset.short_name));

    Timer timer;
    const SCoreDecomposition cores = ComputeSCoreDecomposition(graph);
    const double decomp_time = timer.ElapsedSeconds();

    timer.Reset();
    std::vector<std::string> row{dataset.short_name,
                                 TablePrinter::FormatDouble(cores.smax, 1),
                                 "", "", "", "", "", ""};
    std::size_t levels = 0;
    int column = 5;
    for (const WeightedMetric metric :
         {WeightedMetric::kAverageStrength,
          WeightedMetric::kWeightedConductance,
          WeightedMetric::kWeightedDensity}) {
      const SCoreProfile profile = FindBestSCore(graph, cores, metric);
      levels = profile.thresholds.size();
      row[static_cast<std::size_t>(column++)] =
          TablePrinter::FormatDouble(profile.best_s, 2);
    }
    row[2] = std::to_string(levels);
    row[3] = TablePrinter::FormatSeconds(decomp_time);
    row[4] = TablePrinter::FormatSeconds(timer.ElapsedSeconds());
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: cohesion metrics (strength, density) pick "
               "large s; the separation metric picks small s — the "
               "weighted mirror of Table IV.\n";
  return 0;
}
