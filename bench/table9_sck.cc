// Table IX: Opt-SC hit rate on size-constrained k-core queries (DBLP
// stand-in).
//
// Paper reference: rows are coreness levels c(v) of the random query
// vertex, columns are k in {10, 15, 20, 30, 40}; each cell is the
// fraction of queries answered with a k-core within 5% of the requested
// size h.  Hit rates are high when c(v) comfortably exceeds k and fall as
// k approaches c(v).

#include <algorithm>
#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunTable9(BenchRunner& run) {
  VertexId n = 0;
  VertexId kmax = 0;
  std::vector<std::vector<std::string>> printed;
  const CaseResult* result = run.Case(
      {"table9/D", {"paper"}},
      [&](CaseRecorder& rec) {
        // DBLP stand-in (the dataset Table IX uses).
        Graph graph;
        for (const BenchDataset& dataset : AllDatasets()) {
          if (dataset.short_name == "D") graph = dataset.make();
        }
        Timer timer;
        const SizeConstrainedCoreSolver solver(graph);
        const CoreDecomposition& cores = solver.cores();
        n = graph.NumVertices();
        kmax = cores.kmax;

        // Pick query coreness rows spread over the existing coreness
        // values, like the paper's c(v) in {30, 43, 51, 64, 113}.
        std::vector<VertexId> distinct;
        {
          std::vector<bool> present(static_cast<std::size_t>(cores.kmax) + 1,
                                    false);
          for (const VertexId c : cores.coreness) present[c] = true;
          for (VertexId c = 2; c <= cores.kmax; ++c) {
            if (present[c]) distinct.push_back(c);
          }
        }
        std::vector<VertexId> levels;
        for (std::size_t i = 0; i < 5 && !distinct.empty(); ++i) {
          levels.push_back(distinct[i * (distinct.size() - 1) / 4]);
        }
        levels.erase(std::unique(levels.begin(), levels.end()), levels.end());

        const std::vector<VertexId> ks{3, 5, 8, 12, 16};
        Rng rng(SeedFromString("table9"));

        int all_hits = 0;
        int all_total = 0;
        printed.clear();
        for (const VertexId level : levels) {
          // Collect query vertices of this coreness.
          std::vector<VertexId> candidates;
          for (VertexId v = 0; v < graph.NumVertices(); ++v) {
            if (cores.coreness[v] == level) candidates.push_back(v);
          }
          std::vector<std::string> row{std::to_string(level)};
          for (const VertexId k : ks) {
            if (k > level) {
              row.push_back("/");
              continue;
            }
            int hits = 0;
            int total = 0;
            for (int trial = 0; trial < 50; ++trial) {
              const VertexId q =
                  candidates[rng.NextBounded(candidates.size())];
              // Target size: a random feasible h, drawn relative to the
              // largest core with coreness >= k that contains q (the
              // paper leaves the h distribution unspecified; infeasible h
              // would make every query a trivial miss).
              const CoreForest& forest = solver.forest();
              CoreForest::NodeId node = forest.NodeOfVertex(q);
              while (forest.node(node).parent != CoreForest::kNoNode &&
                     forest.node(forest.node(node).parent).coreness >= k) {
                node = forest.node(node).parent;
              }
              const VertexId candidate_size = forest.CoreSize(node);
              const VertexId floor = 4 * k + 4;
              if (candidate_size <= floor) {
                ++total;  // no feasible h: counts as a miss
                continue;
              }
              const VertexId h =
                  floor + static_cast<VertexId>(
                              rng.NextBounded(candidate_size - floor));
              const SckResult sck = solver.Solve(q, k, h);
              hits += SizeConstrainedCoreSolver::IsHit(sck, h, 0.05) ? 1 : 0;
              ++total;
            }
            row.push_back(
                TablePrinter::FormatDouble(100.0 * hits / total, 1) + "%");
            all_hits += hits;
            all_total += total;
          }
          printed.push_back(std::move(row));
        }
        rec.SetSeconds(timer.ElapsedSeconds());
        rec.Counter("kmax", static_cast<double>(kmax));
        rec.Counter("queries", static_cast<double>(all_total));
        rec.Counter("hit_rate",
                    all_total > 0 ? static_cast<double>(all_hits) /
                                        static_cast<double>(all_total)
                                  : 0.0);
      });
  if (result == nullptr) return;

  std::cout << "== Table IX: Opt-SC on size-constrained k-core (DBLP "
               "stand-in, n="
            << n << ", kmax=" << kmax << ") ==\n";
  TablePrinter table({"c(v)", "k=3", "k=5", "k=8", "k=12", "k=16"});
  for (auto& row : printed) table.AddRow(std::move(row));
  table.Print(std::cout);

  std::cout << "\nExpected shape (paper): hit rate near 100% for k well "
               "below c(v), degrading as k approaches c(v); '/' marks "
               "infeasible combinations.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(table9_sck, corekit::bench::RunTable9);
COREKIT_BENCH_MAIN()
