// Extension (Section VI-B): best k for *truss* decomposition.
//
// Not a table in the paper — Section VI-B sketches how the incremental
// best-k machinery transfers to the k-truss hierarchy; this harness runs
// that extension on every dataset: truss decomposition (O(m^1.5)), then
// O(m) scoring of every k-truss set for the five primary-value metrics.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  constexpr Metric kTrussMetrics[] = {
      Metric::kAverageDegree, Metric::kInternalDensity, Metric::kCutRatio,
      Metric::kConductance, Metric::kModularity};

  std::cout << "== Extension (Sec. VI-B): best k for the k-truss set ==\n";
  TablePrinter table({"Dataset", "tmax", "decomp", "score", "baseline",
                      "T-ad", "T-den", "T-cr", "T-con", "T-mod"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    const Graph graph = dataset.make();
    Timer timer;
    const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
    const double decomp_time = timer.ElapsedSeconds();

    timer.Reset();
    std::vector<std::string> row{dataset.short_name,
                                 std::to_string(trusses.tmax), "", "", ""};
    for (const Metric metric : kTrussMetrics) {
      const TrussSetProfile profile =
          FindBestTrussSet(graph, trusses, metric);
      row.push_back(std::to_string(profile.best_k));
    }
    const double score_time = timer.ElapsedSeconds();
    timer.Reset();
    for (const Metric metric : kTrussMetrics) {
      const TrussSetProfile baseline =
          BaselineFindBestTrussSet(graph, trusses, metric);
      (void)baseline;
    }
    const double baseline_time = timer.ElapsedSeconds();
    row[2] = TablePrinter::FormatSeconds(decomp_time);
    row[3] = TablePrinter::FormatSeconds(score_time);
    row[4] = TablePrinter::FormatSeconds(baseline_time);
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: mirrors Table IV — cohesion metrics pick "
               "large k, separation metrics pick k near 2, modularity "
               "moderate; scoring cost is negligible next to the O(m^1.5) "
               "decomposition.\n";
  return 0;
}
