// Extension (Section VI-B): best k for *truss* decomposition.
//
// Not a table in the paper — Section VI-B sketches how the incremental
// best-k machinery transfers to the k-truss hierarchy; this harness runs
// that extension on every dataset: truss decomposition (O(m^1.5)), then
// O(m) scoring of every k-truss set for the five primary-value metrics.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtTruss(BenchRunner& run) {
  constexpr Metric kTrussMetrics[] = {
      Metric::kAverageDegree, Metric::kInternalDensity, Metric::kCutRatio,
      Metric::kConductance, Metric::kModularity};

  std::cout << "== Extension (Sec. VI-B): best k for the k-truss set ==\n";
  TablePrinter table({"Dataset", "tmax", "decomp", "score", "baseline",
                      "T-ad", "T-den", "T-cr", "T-con", "T-mod"});
  for (const BenchDataset& dataset : ActiveDatasets()) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ext_truss/" + dataset.short_name, {"ext"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          Timer timer;
          const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
          const double decomp_time = timer.ElapsedSeconds();

          timer.Reset();
          std::vector<std::string> row{dataset.short_name,
                                       std::to_string(trusses.tmax), "", "",
                                       ""};
          for (const Metric metric : kTrussMetrics) {
            const TrussSetProfile profile =
                FindBestTrussSet(graph, trusses, metric);
            row.push_back(std::to_string(profile.best_k));
            rec.Counter(std::string("best_k_") + MetricShortName(metric),
                        static_cast<double>(profile.best_k));
          }
          const double score_time = timer.ElapsedSeconds();
          timer.Reset();
          for (const Metric metric : kTrussMetrics) {
            const TrussSetProfile baseline =
                BaselineFindBestTrussSet(graph, trusses, metric);
            (void)baseline;
          }
          const double baseline_time = timer.ElapsedSeconds();
          row[2] = TablePrinter::FormatSeconds(decomp_time);
          row[3] = TablePrinter::FormatSeconds(score_time);
          row[4] = TablePrinter::FormatSeconds(baseline_time);
          printed = std::move(row);

          rec.SetSeconds(decomp_time + score_time);
          rec.Counter("tmax", static_cast<double>(trusses.tmax));
          rec.Counter("decomp_seconds", decomp_time);
          rec.Counter("score_seconds", score_time);
          rec.Counter("baseline_seconds", baseline_time);
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: mirrors Table IV — cohesion metrics pick "
               "large k, separation metrics pick k near 2, modularity "
               "moderate; scoring cost is negligible next to the O(m^1.5) "
               "decomposition.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_truss_best_k, corekit::bench::RunExtTruss);
COREKIT_BENCH_MAIN()
