// Figure 6: score of every individual k-core, plotted against the core's
// sequence id c (cores sorted by ascending k, ties by ascending score),
// on the three largest datasets.
//
// Paper reference: the per-core curves are much noisier than the per-set
// curves of Figure 5 — many high-scoring cores come from low-k levels —
// and the paper smooths them by averaging consecutive cores.  The same
// smoothing (window of 20 for LJ, 5 otherwise) is applied here.

#include <algorithm>
#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  constexpr Metric kFigureMetrics[] = {Metric::kAverageDegree,
                                       Metric::kCutRatio,
                                       Metric::kConductance,
                                       Metric::kModularity};

  std::cout << "== Figure 6: scores of every single k-core ==\n";
  for (const BenchDataset& dataset : ActiveDatasets()) {
    if (dataset.short_name != "LJ" && dataset.short_name != "O" &&
        dataset.short_name != "FS") {
      continue;
    }
    const Graph graph = dataset.make();
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);
    const CoreForest forest(graph, cores);

    // Score every core under each metric.
    std::vector<SingleCoreProfile> profiles;
    for (const Metric metric : kFigureMetrics) {
      profiles.push_back(FindBestSingleCore(ordered, forest, metric));
    }

    // Sequence order: ascending k, ties broken by ascending primary
    // metric score (the paper's ordering for the x axis).
    std::vector<CoreForest::NodeId> order(forest.NumNodes());
    for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](CoreForest::NodeId a, CoreForest::NodeId b) {
                if (forest.node(a).coreness != forest.node(b).coreness) {
                  return forest.node(a).coreness < forest.node(b).coreness;
                }
                return profiles[0].scores[a] < profiles[0].scores[b];
              });

    // The paper's smoothing window (20 for LJ, 5 otherwise), widened when
    // needed to keep the printed series around 30 rows.
    const std::size_t window = std::max<std::size_t>(
        dataset.short_name == "LJ" ? 20 : 5, order.size() / 30 + 1);
    std::cout << "\n-- " << dataset.short_name << " (" << dataset.full_name
              << "), " << forest.NumNodes()
              << " cores, smoothing window " << window << " --\n";
    TablePrinter table({"c", "k range", "ad", "cr", "con", "mod"});
    for (std::size_t begin = 0; begin < order.size(); begin += window) {
      const std::size_t end = std::min(begin + window, order.size());
      double sums[4] = {0, 0, 0, 0};
      for (std::size_t i = begin; i < end; ++i) {
        for (int metric = 0; metric < 4; ++metric) {
          sums[metric] += profiles[static_cast<std::size_t>(metric)]
                              .scores[order[i]];
        }
      }
      const double count = static_cast<double>(end - begin);
      const VertexId k_lo = forest.node(order[begin]).coreness;
      const VertexId k_hi = forest.node(order[end - 1]).coreness;
      table.AddRow({std::to_string(begin),
                    std::to_string(k_lo) + "-" + std::to_string(k_hi),
                    TablePrinter::FormatDouble(sums[0] / count, 2),
                    TablePrinter::FormatDouble(sums[1] / count, 6),
                    TablePrinter::FormatDouble(sums[2] / count, 4),
                    TablePrinter::FormatDouble(sums[3] / count, 4)});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): noisier than Figure 5; many "
               "high-score cores appear at low k; cr/con prefer extreme "
               "small k.\n";
  return 0;
}
