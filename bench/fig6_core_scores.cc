// Figure 6: score of every individual k-core, plotted against the core's
// sequence id c (cores sorted by ascending k, ties by ascending score),
// on the three largest datasets.
//
// Paper reference: the per-core curves are much noisier than the per-set
// curves of Figure 5 — many high-scoring cores come from low-k levels —
// and the paper smooths them by averaging consecutive cores.  The same
// smoothing (window of 20 for LJ, 5 otherwise) is applied here.

#include <algorithm>
#include <iostream>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunFig6(BenchRunner& run) {
  constexpr Metric kFigureMetrics[] = {Metric::kAverageDegree,
                                       Metric::kCutRatio,
                                       Metric::kConductance,
                                       Metric::kModularity};

  std::cout << "== Figure 6: scores of every single k-core ==\n";
  for (const BenchDataset& dataset : ActiveDatasets()) {
    if (dataset.short_name != "LJ" && dataset.short_name != "O" &&
        dataset.short_name != "FS") {
      continue;
    }
    std::size_t num_cores = 0;
    std::size_t window = 0;
    std::vector<std::vector<std::string>> printed;
    const CaseResult* result = run.Case(
        {"fig6/" + dataset.short_name, {"paper"}},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          const CoreDecomposition cores = ComputeCoreDecomposition(graph);
          const OrderedGraph ordered(graph, cores);
          const CoreForest forest(graph, cores);

          // Score every core under each metric.
          Timer timer;
          std::vector<SingleCoreProfile> profiles;
          for (const Metric metric : kFigureMetrics) {
            profiles.push_back(FindBestSingleCore(ordered, forest, metric));
          }
          rec.SetSeconds(timer.ElapsedSeconds());
          rec.Counter("num_cores", static_cast<double>(forest.NumNodes()));
          rec.Counter("kmax", static_cast<double>(cores.kmax));

          // Sequence order: ascending k, ties broken by ascending primary
          // metric score (the paper's ordering for the x axis).
          std::vector<CoreForest::NodeId> order(forest.NumNodes());
          for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
            order[i] = i;
          }
          std::sort(order.begin(), order.end(),
                    [&](CoreForest::NodeId a, CoreForest::NodeId b) {
                      if (forest.node(a).coreness != forest.node(b).coreness) {
                        return forest.node(a).coreness <
                               forest.node(b).coreness;
                      }
                      return profiles[0].scores[a] < profiles[0].scores[b];
                    });

          // The paper's smoothing window (20 for LJ, 5 otherwise), widened
          // when needed to keep the printed series around 30 rows.
          num_cores = forest.NumNodes();
          window = std::max<std::size_t>(
              dataset.short_name == "LJ" ? 20 : 5, order.size() / 30 + 1);
          printed.clear();
          for (std::size_t begin = 0; begin < order.size(); begin += window) {
            const std::size_t end = std::min(begin + window, order.size());
            double sums[4] = {0, 0, 0, 0};
            for (std::size_t i = begin; i < end; ++i) {
              for (int metric = 0; metric < 4; ++metric) {
                sums[metric] += profiles[static_cast<std::size_t>(metric)]
                                    .scores[order[i]];
              }
            }
            const double count = static_cast<double>(end - begin);
            const VertexId k_lo = forest.node(order[begin]).coreness;
            const VertexId k_hi = forest.node(order[end - 1]).coreness;
            printed.push_back(
                {std::to_string(begin),
                 std::to_string(k_lo) + "-" + std::to_string(k_hi),
                 TablePrinter::FormatDouble(sums[0] / count, 2),
                 TablePrinter::FormatDouble(sums[1] / count, 6),
                 TablePrinter::FormatDouble(sums[2] / count, 4),
                 TablePrinter::FormatDouble(sums[3] / count, 4)});
          }
        });
    if (result == nullptr) continue;

    std::cout << "\n-- " << dataset.short_name << " (" << dataset.full_name
              << "), " << num_cores << " cores, smoothing window " << window
              << " --\n";
    TablePrinter table({"c", "k range", "ad", "cr", "con", "mod"});
    for (auto& row : printed) table.AddRow(std::move(row));
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): noisier than Figure 5; many "
               "high-score cores appear at low k; cr/con prefer extreme "
               "small k.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(fig6_core_scores, corekit::bench::RunFig6);
COREKIT_BENCH_MAIN()
