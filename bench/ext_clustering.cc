// Extension bench: core-guided clustering quality on LFR-like community
// benchmarks (the CoreCluster use case, [28]).
//
// Sweeps the mixing parameter mu; at low mu the planted communities are
// recoverable and partition modularity is high, degrading as mixing
// approaches the detectability limit — the standard LFR evaluation curve.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  std::cout << "== Extension: core-guided label propagation on LFR-like "
               "benchmarks ==\n";
  TablePrinter table({"mu", "n", "m", "planted Q", "found Q", "clusters",
                      "planted", "pair agreement", "time"});
  for (const double mu : {0.05, 0.1, 0.2, 0.3, 0.45}) {
    LfrLikeParams params;
    params.num_vertices = static_cast<VertexId>(4000 * BenchScale());
    params.mu = mu;
    params.seed = SeedFromString("ext-clustering");
    const LfrLikeResult lfr = GenerateLfrLike(params);

    const double planted_q = PartitionModularity(
        lfr.graph, lfr.community, lfr.num_communities);

    Timer timer;
    const CoreClustering clustering = ClusterByCores(lfr.graph);
    const double time = timer.ElapsedSeconds();

    EdgeId agree = 0;
    EdgeId total = 0;
    for (const auto& [u, v] : lfr.graph.ToEdgeList()) {
      ++total;
      const bool same_cluster =
          clustering.cluster[u] == clustering.cluster[v];
      const bool same_community = lfr.community[u] == lfr.community[v];
      agree += same_cluster == same_community ? 1u : 0u;
    }
    table.AddRow(
        {TablePrinter::FormatDouble(mu, 2),
         std::to_string(lfr.graph.NumVertices()),
         std::to_string(lfr.graph.NumEdges()),
         TablePrinter::FormatDouble(planted_q, 3),
         TablePrinter::FormatDouble(clustering.modularity, 3),
         std::to_string(clustering.num_clusters),
         std::to_string(lfr.num_communities),
         TablePrinter::FormatDouble(
             100.0 * static_cast<double>(agree) /
                 static_cast<double>(total),
             1) +
             "%",
         TablePrinter::FormatSeconds(time)});
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: found modularity tracks the planted one "
               "and pair agreement stays high at low mu, both degrading as "
               "mixing grows.\n";
  return 0;
}
