// Extension bench: core-guided clustering quality on LFR-like community
// benchmarks (the CoreCluster use case, [28]).
//
// Sweeps the mixing parameter mu; at low mu the planted communities are
// recoverable and partition modularity is high, degrading as mixing
// approaches the detectability limit — the standard LFR evaluation curve.

#include <iostream>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"

namespace corekit::bench {
namespace {

void RunExtClustering(BenchRunner& run) {
  std::cout << "== Extension: core-guided label propagation on LFR-like "
               "benchmarks ==\n";
  TablePrinter table({"mu", "n", "m", "planted Q", "found Q", "clusters",
                      "planted", "pair agreement", "time"});
  for (const double mu : {0.05, 0.1, 0.2, 0.3, 0.45}) {
    std::vector<std::string> printed;
    const int mu_pct = static_cast<int>(mu * 100 + 0.5);
    const CaseResult* result = run.Case(
        {"ext_clustering/mu" + std::to_string(mu_pct), {"ext"}},
        [&](CaseRecorder& rec) {
          LfrLikeParams params;
          params.num_vertices = static_cast<VertexId>(4000 * BenchScale());
          params.mu = mu;
          params.seed = SeedFromString("ext-clustering");
          const LfrLikeResult lfr = GenerateLfrLike(params);

          const double planted_q = PartitionModularity(
              lfr.graph, lfr.community, lfr.num_communities);

          Timer timer;
          const CoreClustering clustering = ClusterByCores(lfr.graph);
          const double time = timer.ElapsedSeconds();

          EdgeId agree = 0;
          EdgeId total = 0;
          for (const auto& [u, v] : lfr.graph.ToEdgeList()) {
            ++total;
            const bool same_cluster =
                clustering.cluster[u] == clustering.cluster[v];
            const bool same_community = lfr.community[u] == lfr.community[v];
            agree += same_cluster == same_community ? 1u : 0u;
          }
          const double agreement =
              100.0 * static_cast<double>(agree) / static_cast<double>(total);

          rec.SetSeconds(time);
          rec.Counter("n", static_cast<double>(lfr.graph.NumVertices()));
          rec.Counter("m", static_cast<double>(lfr.graph.NumEdges()));
          rec.Counter("planted_modularity", planted_q);
          rec.Counter("found_modularity", clustering.modularity);
          rec.Counter("clusters",
                      static_cast<double>(clustering.num_clusters));
          rec.Counter("pair_agreement_pct", agreement);

          printed = {TablePrinter::FormatDouble(mu, 2),
                     std::to_string(lfr.graph.NumVertices()),
                     std::to_string(lfr.graph.NumEdges()),
                     TablePrinter::FormatDouble(planted_q, 3),
                     TablePrinter::FormatDouble(clustering.modularity, 3),
                     std::to_string(clustering.num_clusters),
                     std::to_string(lfr.num_communities),
                     TablePrinter::FormatDouble(agreement, 1) + "%",
                     TablePrinter::FormatSeconds(time)};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: found modularity tracks the planted one "
               "and pair agreement stays high at low mu, both degrading as "
               "mixing grows.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(ext_clustering, corekit::bench::RunExtClustering);
COREKIT_BENCH_MAIN()
