// Ablation: the design choices DESIGN.md calls out.
//
//   (a) Algorithm 1 builds its index with two *bin sorts* (O(m)); a
//       straightforward implementation would comparison-sort every
//       adjacency list (O(m log d)).  Both produce identical indexes.
//   (b) Algorithm 2 answers |N(v, ·)| in O(1) from the position tags; an
//       index-free variant binary-searches coreness boundaries in each
//       (rank-sorted) list per query.
//   (c) LCPS uses a bucket priority queue (O(m) total); a binary heap
//       costs O(m log n).
//
// Each row reports both variants' times and the ratio, on a sweep of
// R-MAT sizes.

#include <algorithm>
#include <iostream>
#include <queue>
#include <vector>

#include "corekit/corekit.h"
#include "harness/harness.h"

namespace {

using namespace corekit;

// Keeps the compiler from discarding ablation work without linking
// google-benchmark into this binary.
volatile std::uint64_t g_sink;
void benchmark_do_not_optimize(std::uint64_t value) { g_sink = value; }

// (a) Comparison-sort ordering: same output as OrderedGraph's edge pass,
// via std::sort on each adjacency list.
double TimeComparisonSortOrdering(const Graph& graph,
                                  const CoreDecomposition& cores) {
  Timer timer;
  std::vector<VertexId> neighbors(graph.NeighborArray().begin(),
                                  graph.NeighborArray().end());
  const auto rank_less = [&cores](VertexId a, VertexId b) {
    return cores.coreness[a] != cores.coreness[b]
               ? cores.coreness[a] < cores.coreness[b]
               : a < b;
  };
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    std::sort(neighbors.begin() +
                  static_cast<std::ptrdiff_t>(graph.Offsets()[v]),
              neighbors.begin() +
                  static_cast<std::ptrdiff_t>(graph.Offsets()[v + 1]),
              rank_less);
  }
  // Tag scan, identical to the production path.
  std::uint64_t checksum = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const VertexId cv = cores.coreness[v];
    for (EdgeId i = graph.Offsets()[v]; i < graph.Offsets()[v + 1]; ++i) {
      if (cores.coreness[neighbors[i]] >= cv) {
        checksum += i;
        break;
      }
    }
  }
  benchmark_do_not_optimize(checksum);
  return timer.ElapsedSeconds();
}

// (b) Index-free scoring: per shell vertex, binary-search the coreness
// boundaries in the rank-sorted list instead of reading the tags.
double TimeBinarySearchScoring(const OrderedGraph& ordered) {
  Timer timer;
  const VertexId kmax = ordered.kmax();
  std::uint64_t in_x2 = 0;
  std::int64_t out = 0;
  std::uint64_t num = 0;
  double best = -1.0;
  const GraphGlobals globals{ordered.NumVertices(),
                             ordered.graph().NumEdges()};
  for (VertexId k = kmax;; --k) {
    for (const VertexId v : ordered.Shell(k)) {
      const auto nbrs = ordered.Neighbors(v);
      const VertexId cv = ordered.Coreness(v);
      // Boundaries via binary search on coreness (lists are rank-sorted).
      const auto coreness_of = [&ordered](VertexId u) {
        return ordered.Coreness(u);
      };
      const auto same = std::partition_point(
          nbrs.begin(), nbrs.end(),
          [&](VertexId u) { return coreness_of(u) < cv; });
      const auto plus = std::partition_point(
          same, nbrs.end(), [&](VertexId u) { return coreness_of(u) == cv; });
      const auto lower = static_cast<std::uint64_t>(same - nbrs.begin());
      const auto equal = static_cast<std::uint64_t>(plus - same);
      const auto higher = static_cast<std::uint64_t>(nbrs.end() - plus);
      in_x2 += 2 * higher + equal;
      out += static_cast<std::int64_t>(lower) -
             static_cast<std::int64_t>(higher);
      ++num;
    }
    PrimaryValues pv;
    pv.num_vertices = num;
    pv.internal_edges_x2 = in_x2;
    pv.boundary_edges = static_cast<std::uint64_t>(out);
    best = std::max(best, EvaluateMetric(Metric::kAverageDegree, pv, globals));
    if (k == 0) break;
  }
  benchmark_do_not_optimize(static_cast<std::uint64_t>(best));
  return timer.ElapsedSeconds();
}

// (c) LCPS exploration order with a std::priority_queue instead of the
// bucket queue (tree building elided — the queue discipline is the cost
// being measured, and both variants visit vertices identically).
double TimeHeapLcps(const Graph& graph, const CoreDecomposition& cores) {
  Timer timer;
  const VertexId n = graph.NumVertices();
  std::vector<bool> visited(n, false);
  std::uint64_t checksum = 0;
  using Entry = std::pair<VertexId, VertexId>;  // (priority, vertex)
  std::priority_queue<Entry> queue;
  for (VertexId s = 0; s < n; ++s) {
    if (visited[s]) continue;
    queue.emplace(0, s);
    while (!queue.empty()) {
      const auto [r, v] = queue.top();
      queue.pop();
      if (visited[v]) continue;
      visited[v] = true;
      checksum += r;
      for (const VertexId w : graph.Neighbors(v)) {
        if (!visited[w]) {
          queue.emplace(std::min(cores.coreness[w], cores.coreness[v]), w);
        }
      }
    }
  }
  benchmark_do_not_optimize(checksum);
  return timer.ElapsedSeconds();
}

double TimeBucketLcps(const Graph& graph, const CoreDecomposition& cores) {
  Timer timer;
  const VertexId n = graph.NumVertices();
  std::vector<bool> visited(n, false);
  std::uint64_t checksum = 0;
  BucketQueue<VertexId> queue(cores.kmax);
  for (VertexId s = 0; s < n; ++s) {
    if (visited[s]) continue;
    queue.Push(0, s);
    while (!queue.empty()) {
      const auto [r, v] = queue.PopMax();
      if (visited[v]) continue;
      visited[v] = true;
      checksum += r;
      for (const VertexId w : graph.Neighbors(v)) {
        if (!visited[w]) {
          queue.Push(std::min(cores.coreness[w], cores.coreness[v]), w);
        }
      }
    }
  }
  benchmark_do_not_optimize(checksum);
  return timer.ElapsedSeconds();
}

void RunAblation(corekit::bench::BenchRunner& run) {
  using corekit::bench::CaseRecorder;
  using corekit::bench::CaseResult;

  std::cout << "== Ablation: Algorithm 1 bin sort, O(1) tags, LCPS bucket "
               "queue, forest construction, parallel peel ==\n";
  TablePrinter table({"scale", "m", "bin sort", "std::sort", "tag score",
                      "bsearch score", "bucket LCPS", "heap LCPS",
                      "LCPS forest", "UF forest", "seq peel",
                      "par peel x8"});
  for (const std::uint32_t scale : {14u, 16u, 18u}) {
    std::vector<std::string> printed;
    const CaseResult* result = run.Case(
        {"ablation/s" + std::to_string(scale), {"ext"}},
        [&](CaseRecorder& rec) {
          RmatParams params;
          params.scale = scale;
          params.num_edges = static_cast<EdgeId>(8) << scale;
          params.seed = 11;
          const Graph graph = GenerateRmat(params);
          const CoreDecomposition cores = ComputeCoreDecomposition(graph);

          Timer timer;
          const OrderedGraph ordered(graph, cores);
          const double bin_sort = timer.ElapsedSeconds();
          const double std_sort = TimeComparisonSortOrdering(graph, cores);

          timer.Reset();
          const auto profile =
              FindBestCoreSet(ordered, Metric::kAverageDegree);
          const double tag_score = timer.ElapsedSeconds();
          (void)profile;
          const double bsearch_score = TimeBinarySearchScoring(ordered);

          const double bucket = TimeBucketLcps(graph, cores);
          const double heap = TimeHeapLcps(graph, cores);

          // Forest construction: the paper's LCPS (Algorithm 4) vs the
          // union-find bottom-up alternative of [50].
          timer.Reset();
          const CoreForest lcps_forest(graph, cores);
          const double lcps_time = timer.ElapsedSeconds();
          timer.Reset();
          const UnionFindForest uf_forest = BuildUnionFindForest(graph, cores);
          const double uf_time = timer.ElapsedSeconds();
          COREKIT_CHECK(ForestsEquivalent(lcps_forest, uf_forest));

          // Decomposition itself: sequential BZ peel vs the
          // level-synchronous parallel peel with 8 threads.
          timer.Reset();
          const auto seq = ComputeCoreDecomposition(graph);
          const double seq_time = timer.ElapsedSeconds();
          timer.Reset();
          const auto par = ComputeCoreDecompositionParallel(graph, 8);
          const double par_time = timer.ElapsedSeconds();
          COREKIT_CHECK(seq.coreness == par.coreness);

          // Aggregate sample: the production-path variants (the paper's
          // choices) — peel + bin sort + tag scoring + LCPS forest.
          rec.SetSeconds(seq_time + bin_sort + tag_score + lcps_time);
          rec.Counter("m", static_cast<double>(graph.NumEdges()));
          rec.Counter("bin_sort", bin_sort);
          rec.Counter("std_sort", std_sort);
          rec.Counter("tag_score", tag_score);
          rec.Counter("bsearch_score", bsearch_score);
          rec.Counter("bucket_lcps", bucket);
          rec.Counter("heap_lcps", heap);
          rec.Counter("lcps_forest", lcps_time);
          rec.Counter("uf_forest", uf_time);
          rec.Counter("seq_peel", seq_time);
          rec.Counter("par_peel_x8", par_time);

          printed = {std::to_string(scale),
                     std::to_string(graph.NumEdges()),
                     TablePrinter::FormatSeconds(bin_sort),
                     TablePrinter::FormatSeconds(std_sort),
                     TablePrinter::FormatSeconds(tag_score),
                     TablePrinter::FormatSeconds(bsearch_score),
                     TablePrinter::FormatSeconds(bucket),
                     TablePrinter::FormatSeconds(heap),
                     TablePrinter::FormatSeconds(lcps_time),
                     TablePrinter::FormatSeconds(uf_time),
                     TablePrinter::FormatSeconds(seq_time),
                     TablePrinter::FormatSeconds(par_time)};
        });
    if (result == nullptr) continue;
    table.AddRow(std::move(printed));
  }
  table.Print(std::cout);
  std::cout << "\nExpected shape: bin sort <= std::sort; O(1) tags <= "
               "binary search; bucket queue <= heap — the constants behind "
               "the paper's O(m) claims.\n";
}

}  // namespace

COREKIT_BENCH_UNIT(ablation_ordering, RunAblation);
COREKIT_BENCH_MAIN()
