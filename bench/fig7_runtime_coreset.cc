// Figure 7: runtime of finding the best k-core set — Baseline
// (Section III-A, from-scratch per-k scoring) vs Optimal (Algorithms 2/3
// with the Algorithm 1 index) — on every dataset, for average degree,
// conductance, modularity, and clustering coefficient.
//
// One CoreEngine per dataset: the decomposition and the ordering are
// built once and amortized across all four metrics (the engine's cache
// counters prove it), exactly the posture the paper's analysis assumes.
// Per-stage timings come from the engine's StageStats, not ad-hoc timers.
//
// Paper reference: Optimal beats Baseline by 1-4 orders of magnitude;
// the gap is largest on deep-hierarchy graphs (Hollywood) and for
// clustering coefficient, where the baseline exceeds its time budget on
// the big datasets.  Columns:
//   core     core decomposition time (shared by both algorithms)
//   index    vertex ordering build time (Optimal only)
//   opt      Optimal score computation (Algorithm 2/3)
//   base     Baseline score computation (from scratch per k)
//   speedup  base / opt (scores only, as in the paper's discussion)

#include <cstddef>
#include <iostream>
#include <map>
#include <optional>
#include <vector>

#include "corekit/corekit.h"
#include "datasets.h"
#include "harness/harness.h"
#include "runtime_common.h"

namespace corekit::bench {
namespace {

void RunFig7(BenchRunner& run) {
  const double budget = BaselineBudgetSeconds();
  std::cout << "== Figure 7: runtime, finding the best k-core set "
               "(baseline budget "
            << budget << "s) ==\n";

  struct Row {
    std::string dataset;
    double core_time = 0.0;
    double index_time = 0.0;
    double opt_time = 0.0;
    std::optional<double> base_time;
  };
  std::map<int, std::vector<Row>> rows;  // keyed by metric

  for (const BenchDataset& dataset : ActiveDatasets()) {
    // One harness case per dataset: the body runs the full amortized
    // optimal path (one engine, four metrics) plus the budgeted
    // baselines, so the aggregated sample is the optimal path's total.
    std::map<int, Row> dataset_rows;
    const CaseResult* result = run.Case(
        {"fig7/" + dataset.short_name,
         SuitesPlusSmoke("paper", dataset.short_name)},
        [&](CaseRecorder& rec) {
          const Graph graph = dataset.make();
          CoreEngine engine(graph);
          double optimal_total = 0.0;
          dataset_rows.clear();
          for (const Metric metric : kRuntimeMetrics) {
            (void)engine.BestCoreSet(metric);

            Row row;
            row.dataset = dataset.short_name;
            // The fixed stages built exactly once (first metric); later
            // metrics see them as cache hits, so the recorded seconds are
            // the one build.
            row.core_time = EngineStageSeconds(engine, "decompose");
            row.index_time = EngineStageSeconds(engine, "order");
            row.opt_time = EngineStageSeconds(
                engine, CoreEngine::CoreSetStageName(metric));
            row.base_time =
                TimedBaselineCoreSet(graph, engine.Cores(), metric, budget);
            optimal_total += row.opt_time;
            const std::string suffix = MetricShortName(metric);
            rec.Counter("opt_" + suffix, row.opt_time);
            rec.Counter("base_" + suffix,
                        row.base_time.has_value() ? *row.base_time : -1.0);
            dataset_rows[static_cast<int>(metric)] = row;
          }
          // The regression-relevant quantity: everything the optimal
          // algorithm runs (decompose + order + all four score passes).
          rec.SetSeconds(EngineStageSeconds(engine, "decompose") +
                         EngineStageSeconds(engine, "order") + optimal_total);
          rec.Counter("m", static_cast<double>(graph.NumEdges()));
          rec.Counter("kmax", static_cast<double>(engine.Cores().kmax));
          rec.EngineStages(engine);
        });
    if (result == nullptr) continue;
    for (auto& [metric, row] : dataset_rows) {
      rows[metric].push_back(std::move(row));
    }
  }

  for (const Metric metric : kRuntimeMetrics) {
    std::cout << "\n-- metric: " << MetricName(metric) << " --\n";
    TablePrinter table(
        {"Dataset", "core", "index", "opt", "base", "speedup"});
    for (const Row& row : rows[static_cast<int>(metric)]) {
      std::string speedup = "-";
      if (row.base_time.has_value() && row.opt_time > 0) {
        speedup =
            TablePrinter::FormatDouble(*row.base_time / row.opt_time, 1) +
            "x";
      } else if (!row.base_time.has_value() && row.opt_time > 0) {
        speedup = ">";
        speedup += TablePrinter::FormatDouble(budget / row.opt_time, 0);
        speedup += "x";
      }
      table.AddRow({row.dataset, TablePrinter::FormatSeconds(row.core_time),
                    TablePrinter::FormatSeconds(row.index_time),
                    TablePrinter::FormatSeconds(row.opt_time),
                    FormatRuntime(row.base_time), speedup});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): 1-4 orders of magnitude speedup; "
               "baseline exceeds its budget for clustering coefficient on "
               "the largest datasets.\n";
}

}  // namespace
}  // namespace corekit::bench

COREKIT_BENCH_UNIT(fig7_runtime_coreset, corekit::bench::RunFig7);
COREKIT_BENCH_MAIN()
