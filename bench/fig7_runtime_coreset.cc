// Figure 7: runtime of finding the best k-core set — Baseline
// (Section III-A, from-scratch per-k scoring) vs Optimal (Algorithms 2/3
// with the Algorithm 1 index) — on every dataset, for average degree,
// conductance, modularity, and clustering coefficient.
//
// Paper reference: Optimal beats Baseline by 1-4 orders of magnitude;
// the gap is largest on deep-hierarchy graphs (Hollywood) and for
// clustering coefficient, where the baseline exceeds its time budget on
// the big datasets.  Columns:
//   core     core decomposition time (shared by both algorithms)
//   index    vertex ordering build time (Optimal only)
//   opt      Optimal score computation (Algorithm 2/3)
//   base     Baseline score computation (from scratch per k)
//   speedup  base / opt (scores only, as in the paper's discussion)

#include <iostream>
#include <optional>

#include "corekit/corekit.h"
#include "datasets.h"
#include "runtime_common.h"

int main() {
  using namespace corekit;
  using namespace corekit::bench;

  const double budget = BaselineBudgetSeconds();
  std::cout << "== Figure 7: runtime, finding the best k-core set "
               "(baseline budget "
            << budget << "s) ==\n";

  for (const Metric metric : kRuntimeMetrics) {
    std::cout << "\n-- metric: " << MetricName(metric) << " --\n";
    TablePrinter table(
        {"Dataset", "core", "index", "opt", "base", "speedup"});
    for (const BenchDataset& dataset : ActiveDatasets()) {
      const Graph graph = dataset.make();

      Timer timer;
      const CoreDecomposition cores = ComputeCoreDecomposition(graph);
      const double core_time = timer.ElapsedSeconds();

      timer.Reset();
      const OrderedGraph ordered(graph, cores);
      const double index_time = timer.ElapsedSeconds();

      timer.Reset();
      const CoreSetProfile profile = FindBestCoreSet(ordered, metric);
      const double opt_time = timer.ElapsedSeconds();
      (void)profile;

      const std::optional<double> base_time =
          TimedBaselineCoreSet(graph, cores, metric, budget);

      std::string speedup = "-";
      if (base_time.has_value() && opt_time > 0) {
        speedup =
            TablePrinter::FormatDouble(*base_time / opt_time, 1) + "x";
      } else if (!base_time.has_value() && opt_time > 0) {
        speedup =
            ">" + TablePrinter::FormatDouble(budget / opt_time, 0) + "x";
      }
      table.AddRow({dataset.short_name,
                    TablePrinter::FormatSeconds(core_time),
                    TablePrinter::FormatSeconds(index_time),
                    TablePrinter::FormatSeconds(opt_time),
                    FormatRuntime(base_time), speedup});
    }
    table.Print(std::cout);
  }
  std::cout << "\nExpected shape (paper): 1-4 orders of magnitude speedup; "
               "baseline exceeds its budget for clustering coefficient on "
               "the largest datasets.\n";
  return 0;
}
