// Shared fixtures for the corekit test suite.
//
// Fig2Graph() is the running example of the paper (Figure 2): 12 vertices,
// two K4 blocks (coreness 3) bridged by a coreness-2 chain.  Examples 2-6
// of the paper state exact coreness values, ordering tags, primary values
// and scores for it; the unit tests assert those published numbers.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/graph/types.h"

namespace corekit::testing {

// Paper vertex v_i (1-based) -> test id i-1 (0-based).
inline constexpr VertexId V(int paper_id) {
  return static_cast<VertexId>(paper_id - 1);
}

// The graph of Figure 2.  Edges: K4 on {v1..v4}, K4 on {v9..v12}, and the
// 2-shell wiring v5-v3, v5-v6, v6-v3, v6-v7, v6-v8, v7-v8, v8-v9.
// n = 12, m = 19, kmax = 3.
inline Graph Fig2Graph() {
  GraphBuilder builder(12);
  auto add = [&builder](int a, int b) { builder.AddEdge(V(a), V(b)); };
  // K4 on v1..v4.
  add(1, 2);
  add(1, 3);
  add(1, 4);
  add(2, 3);
  add(2, 4);
  add(3, 4);
  // K4 on v9..v12.
  add(9, 10);
  add(9, 11);
  add(9, 12);
  add(10, 11);
  add(10, 12);
  add(11, 12);
  // The 2-shell.
  add(5, 3);
  add(5, 6);
  add(6, 3);
  add(6, 7);
  add(6, 8);
  add(7, 8);
  add(8, 9);
  return builder.Build();
}

// A small zoo of deterministic random graphs exercising all generators;
// used by the parameterized property tests.  Sizes stay small enough for
// the naive oracles.
struct NamedGraph {
  std::string name;
  Graph graph;
};

inline std::vector<NamedGraph> SmallGraphZoo() {
  std::vector<NamedGraph> zoo;
  zoo.push_back({"fig2", Fig2Graph()});
  zoo.push_back({"empty_edges", GraphBuilder::FromEdges(8, {})});
  zoo.push_back({"single_edge", GraphBuilder::FromEdges(4, {{0, 1}})});
  zoo.push_back({"er_sparse", GenerateErdosRenyi(60, 90, 11)});
  zoo.push_back({"er_dense", GenerateErdosRenyi(40, 300, 12)});
  zoo.push_back({"ba", GenerateBarabasiAlbert(80, 3, 13)});
  zoo.push_back({"ws", GenerateWattsStrogatz(70, 4, 0.2, 14)});
  {
    RmatParams rmat;
    rmat.scale = 7;
    rmat.num_edges = 400;
    rmat.seed = 15;
    zoo.push_back({"rmat", GenerateRmat(rmat)});
  }
  {
    PlantedPartitionParams pp;
    pp.num_vertices = 90;
    pp.num_communities = 3;
    pp.p_in = 0.4;
    pp.p_out = 0.02;
    pp.seed = 16;
    zoo.push_back({"planted", GeneratePlantedPartition(pp).graph});
  }
  {
    OnionParams onion;
    onion.num_vertices = 120;
    onion.num_layers = 4;
    onion.target_kmax = 12;
    onion.seed = 17;
    zoo.push_back({"onion", GenerateOnion(onion)});
  }
  // Disconnected mix: two ER blobs plus isolated vertices.
  {
    GraphBuilder builder(70);
    const Graph a = GenerateErdosRenyi(30, 60, 18);
    const Graph b = GenerateErdosRenyi(30, 90, 19);
    for (const auto& [u, v] : a.ToEdgeList()) builder.AddEdge(u, v);
    for (const auto& [u, v] : b.ToEdgeList()) {
      builder.AddEdge(u + 30, v + 30);
    }
    zoo.push_back({"disconnected", builder.Build()});
  }
  return zoo;
}

}  // namespace corekit::testing
