// Protocol conformance for the corekit_serve wire format.
//
// Two halves:
//   * round-trip: every request and response shape encodes and decodes
//     back to itself, field for field;
//   * adversarial: truncated frames, oversized length prefixes, unknown
//     versions/opcodes, zero-length and over-long bodies, and random
//     byte soup all decode to *typed* errors — never a crash, never an
//     over-read (the ASan CI job is the teeth behind that claim).

#include "corekit/server/wire_protocol.h"

#include <cstring>
#include <vector>

#include "corekit/util/random.h"
#include "gtest/gtest.h"

namespace corekit::server {
namespace {

Request MakeRequest(Opcode opcode) {
  Request request;
  request.opcode = opcode;
  request.request_id = 0xCAFEBABE12345678ULL;
  switch (opcode) {
    case Opcode::kPing:
      request.ping_payload = 0xFEEDFACEULL;
      break;
    case Opcode::kGraphInfo:
    case Opcode::kTrussMax:
      request.graph = "tenant-a";
      break;
    case Opcode::kCoreness:
      request.graph = "tenant-a";
      request.vertex = 4242;
      break;
    case Opcode::kBestCoreSet:
      request.graph = "tenant-b";
      request.metric = Metric::kConductance;
      break;
    case Opcode::kBestSingleCore:
      request.graph = "tenant-b";
      request.metric = Metric::kClusteringCoefficient;
      break;
    case Opcode::kApplyBatch:
      request.graph = "tenant-c";
      request.inserts = {{1, 2}, {3, 4}, {5, 6}};
      request.deletes = {{7, 8}};
      break;
  }
  return request;
}

TEST(WireProtocolTest, RequestRoundTripsEveryOpcode) {
  for (int op = 0; op < kOpcodeCount; ++op) {
    const Request original = MakeRequest(static_cast<Opcode>(op));
    const std::vector<std::uint8_t> bytes = EncodeRequest(original);
    Request decoded;
    std::string error;
    ASSERT_EQ(DecodeRequest(bytes, &decoded, &error), WireError::kOk)
        << OpcodeName(original.opcode) << ": " << error;
    EXPECT_EQ(decoded.opcode, original.opcode);
    EXPECT_EQ(decoded.request_id, original.request_id);
    EXPECT_EQ(decoded.ping_payload, original.ping_payload);
    EXPECT_EQ(decoded.graph, original.graph);
    EXPECT_EQ(decoded.vertex, original.vertex);
    EXPECT_EQ(decoded.metric, original.metric);
    EXPECT_EQ(decoded.inserts, original.inserts);
    EXPECT_EQ(decoded.deletes, original.deletes);
  }
}

Response MakeOkResponse(Opcode opcode) {
  Response response;
  response.opcode = opcode;
  response.request_id = 0x1122334455667788ULL;
  switch (opcode) {
    case Opcode::kPing:
      response.ping_payload = 99;
      break;
    case Opcode::kGraphInfo:
      response.num_vertices = 12;
      response.num_edges = 19;
      response.epoch = 3;
      break;
    case Opcode::kCoreness:
      response.coreness = 3;
      response.kmax = 4;
      break;
    case Opcode::kBestCoreSet:
      response.best_k = 3;
      response.best_score = 2.71828;
      response.num_scores = 4;
      break;
    case Opcode::kBestSingleCore:
      response.best_k = 2;
      response.best_node = 7;
      response.best_score = -0.125;
      response.num_scores = 4;
      break;
    case Opcode::kTrussMax:
      response.tmax = 4;
      response.num_edges = 19;
      break;
    case Opcode::kApplyBatch:
      response.epoch = 5;
      response.inserted = 3;
      response.deleted = 1;
      response.rejected = 2;
      response.coreness_changed = 6;
      break;
  }
  return response;
}

TEST(WireProtocolTest, ResponseRoundTripsEveryOpcode) {
  for (int op = 0; op < kOpcodeCount; ++op) {
    const Response original = MakeOkResponse(static_cast<Opcode>(op));
    const std::vector<std::uint8_t> bytes = EncodeResponse(original);
    Response decoded;
    std::string error;
    ASSERT_EQ(DecodeResponse(bytes, &decoded, &error), WireError::kOk)
        << OpcodeName(original.opcode) << ": " << error;
    EXPECT_EQ(decoded.opcode, original.opcode);
    EXPECT_EQ(decoded.request_id, original.request_id);
    EXPECT_EQ(decoded.status, WireError::kOk);
    EXPECT_EQ(decoded.ping_payload, original.ping_payload);
    EXPECT_EQ(decoded.num_vertices, original.num_vertices);
    EXPECT_EQ(decoded.num_edges, original.num_edges);
    EXPECT_EQ(decoded.epoch, original.epoch);
    EXPECT_EQ(decoded.coreness, original.coreness);
    EXPECT_EQ(decoded.kmax, original.kmax);
    EXPECT_EQ(decoded.best_k, original.best_k);
    EXPECT_EQ(decoded.best_node, original.best_node);
    EXPECT_EQ(decoded.best_score, original.best_score);
    EXPECT_EQ(decoded.num_scores, original.num_scores);
    EXPECT_EQ(decoded.tmax, original.tmax);
    EXPECT_EQ(decoded.inserted, original.inserted);
    EXPECT_EQ(decoded.deleted, original.deleted);
    EXPECT_EQ(decoded.rejected, original.rejected);
    EXPECT_EQ(decoded.coreness_changed, original.coreness_changed);
  }
}

TEST(WireProtocolTest, ErrorResponseRoundTripsMessage) {
  const Response original = MakeErrorResponse(
      Opcode::kCoreness, 42, WireError::kUnknownGraph, "no tenant 'x'");
  const std::vector<std::uint8_t> bytes = EncodeResponse(original);
  Response decoded;
  ASSERT_EQ(DecodeResponse(bytes, &decoded), WireError::kOk);
  EXPECT_EQ(decoded.status, WireError::kUnknownGraph);
  EXPECT_EQ(decoded.opcode, Opcode::kCoreness);
  EXPECT_EQ(decoded.request_id, 42u);
  EXPECT_EQ(decoded.message, "no tenant 'x'");
}

TEST(WireProtocolTest, EmptyGraphNameAndEmptyBatchRoundTrip) {
  Request request;
  request.opcode = Opcode::kApplyBatch;
  request.graph = "";  // decoders must not confuse empty with missing
  const std::vector<std::uint8_t> bytes = EncodeRequest(request);
  Request decoded;
  ASSERT_EQ(DecodeRequest(bytes, &decoded), WireError::kOk);
  EXPECT_EQ(decoded.graph, "");
  EXPECT_TRUE(decoded.inserts.empty());
  EXPECT_TRUE(decoded.deletes.empty());
}

// ---------------------------------------------------------------------------
// Adversarial decodes.  Every one must return the named typed error.
// ---------------------------------------------------------------------------

TEST(WireProtocolTest, TruncatedHeaderIsTyped) {
  const std::vector<std::uint8_t> bytes = EncodeRequest(MakeRequest(
      Opcode::kCoreness));
  for (std::size_t len = 0; len < kFrameHeaderBytes; ++len) {
    Request decoded;
    EXPECT_EQ(DecodeRequest({bytes.data(), len}, &decoded),
              WireError::kTruncatedFrame)
        << "prefix length " << len;
    FrameHeader header;
    EXPECT_EQ(DecodeFrameHeader({bytes.data(), len}, &header),
              WireError::kTruncatedFrame);
  }
}

TEST(WireProtocolTest, TruncatedBodyIsTyped) {
  const std::vector<std::uint8_t> bytes =
      EncodeRequest(MakeRequest(Opcode::kApplyBatch));
  // Every strict prefix that has a full header but a short body.
  for (std::size_t len = kFrameHeaderBytes; len < bytes.size(); ++len) {
    Request decoded;
    EXPECT_EQ(DecodeRequest({bytes.data(), len}, &decoded),
              WireError::kTruncatedFrame)
        << "prefix length " << len;
    // The header survives, so the rejection is addressable.
    EXPECT_EQ(decoded.request_id, 0xCAFEBABE12345678ULL);
  }
}

TEST(WireProtocolTest, TrailingBytesAreRejected) {
  std::vector<std::uint8_t> bytes = EncodeRequest(MakeRequest(Opcode::kPing));
  bytes.push_back(0x00);  // one byte past the declared body
  Request decoded;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kMalformedBody);
}

TEST(WireProtocolTest, OversizedLengthPrefixIsTypedBeforeAllocation) {
  std::vector<std::uint8_t> bytes = EncodeRequest(MakeRequest(Opcode::kPing));
  // Forge body_len = 0xFFFFFFFF; no 4 GiB buffer is ever allocated.
  bytes[0] = bytes[1] = bytes[2] = bytes[3] = 0xFF;
  FrameHeader header;
  EXPECT_EQ(DecodeFrameHeader(bytes, &header), WireError::kOversizedFrame);
  // Transports can cap below the protocol max.
  std::vector<std::uint8_t> big = EncodeRequest(MakeRequest(Opcode::kCoreness));
  EXPECT_EQ(DecodeFrameHeader(big, &header, /*max_body_bytes=*/4),
            WireError::kOversizedFrame);
}

TEST(WireProtocolTest, UnknownVersionIsTypedAndStillAddressable) {
  std::vector<std::uint8_t> bytes =
      EncodeRequest(MakeRequest(Opcode::kCoreness));
  bytes[4] = kWireVersion + 1;
  Request decoded;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kUnsupportedVersion);
  EXPECT_EQ(decoded.request_id, 0xCAFEBABE12345678ULL);
}

TEST(WireProtocolTest, UnknownOpcodeIsTyped) {
  std::vector<std::uint8_t> bytes = EncodeRequest(MakeRequest(Opcode::kPing));
  bytes[5] = static_cast<std::uint8_t>(kOpcodeCount);
  Request decoded;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kUnknownOpcode);
  bytes[5] = 0xFF;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kUnknownOpcode);
}

TEST(WireProtocolTest, ZeroLengthBodyIsTypedPerOpcode) {
  // A frame with body_len = 0 is malformed for every opcode that needs a
  // body (all of them: even Ping carries its 8-byte payload).
  for (int op = 0; op < kOpcodeCount; ++op) {
    std::vector<std::uint8_t> bytes =
        EncodeRequest(MakeRequest(static_cast<Opcode>(op)));
    bytes.resize(kFrameHeaderBytes);
    bytes[0] = bytes[1] = bytes[2] = bytes[3] = 0;  // body_len = 0
    Request decoded;
    EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kMalformedBody)
        << OpcodeName(static_cast<Opcode>(op));
  }
}

TEST(WireProtocolTest, LyingStringLengthIsTyped) {
  std::vector<std::uint8_t> bytes =
      EncodeRequest(MakeRequest(Opcode::kGraphInfo));
  // The graph-name length prefix sits right after the header; inflate it
  // beyond the body.
  bytes[kFrameHeaderBytes] = 0xFF;
  bytes[kFrameHeaderBytes + 1] = 0xFF;
  Request decoded;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kMalformedBody);
}

TEST(WireProtocolTest, LyingBatchCountIsTyped) {
  Request request = MakeRequest(Opcode::kApplyBatch);
  std::vector<std::uint8_t> bytes = EncodeRequest(request);
  // n_inserts lives after the header + graph string; claim 2^24 edges in
  // a tiny body.  The decoder must reject by arithmetic, not by reading.
  const std::size_t counts_at = kFrameHeaderBytes + 2 + request.graph.size();
  bytes[counts_at + 2] = 0xFF;
  Request decoded;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kMalformedBody);
}

TEST(WireProtocolTest, InvalidMetricByteIsTyped) {
  std::vector<std::uint8_t> bytes =
      EncodeRequest(MakeRequest(Opcode::kBestCoreSet));
  bytes.back() = 0xEE;  // metric byte is the last body byte
  Request decoded;
  EXPECT_EQ(DecodeRequest(bytes, &decoded), WireError::kMalformedBody);
}

TEST(WireProtocolTest, ResponseDecoderRejectsRequestShapedGarbage) {
  // A response frame whose status is OK but whose body is a request body:
  // must fail typed, not mis-parse.
  std::vector<std::uint8_t> request_bytes =
      EncodeRequest(MakeRequest(Opcode::kApplyBatch));
  Response decoded;
  EXPECT_EQ(DecodeResponse(request_bytes, &decoded),
            WireError::kMalformedBody);
}

TEST(WireProtocolTest, RandomByteSoupNeverCrashes) {
  // 10k random frames, sized 0..64: every decode returns *some* typed
  // error (or very rarely kOk for a luckily-valid tiny frame) without
  // touching memory out of bounds — ASan enforces the second half.
  Rng rng(20260808);
  std::vector<std::uint8_t> bytes;
  for (int round = 0; round < 10000; ++round) {
    const std::size_t size = rng.NextBounded(65);
    bytes.resize(size);
    for (auto& b : bytes) {
      b = static_cast<std::uint8_t>(rng.NextBounded(256));
    }
    Request request;
    (void)DecodeRequest(bytes, &request);
    Response response;
    (void)DecodeResponse(bytes, &response);
    FrameHeader header;
    (void)DecodeFrameHeader(bytes, &header);
  }
}

TEST(WireProtocolTest, MutatedValidFramesNeverCrash) {
  // Start from valid frames and flip bytes: the decoder walks much
  // deeper into the body parsers than pure noise reaches.
  Rng rng(1234321);
  for (int op = 0; op < kOpcodeCount; ++op) {
    const std::vector<std::uint8_t> pristine =
        EncodeRequest(MakeRequest(static_cast<Opcode>(op)));
    for (int round = 0; round < 2000; ++round) {
      std::vector<std::uint8_t> bytes = pristine;
      const int flips = 1 + static_cast<int>(rng.NextBounded(3));
      for (int f = 0; f < flips; ++f) {
        bytes[rng.NextBounded(bytes.size())] =
            static_cast<std::uint8_t>(rng.NextBounded(256));
      }
      if (rng.NextBounded(4) == 0) {
        bytes.resize(rng.NextBounded(bytes.size() + 1));
      }
      Request request;
      (void)DecodeRequest(bytes, &request);
    }
  }
}

TEST(WireProtocolTest, NamesAreTotal) {
  for (int op = 0; op < kOpcodeCount; ++op) {
    EXPECT_STRNE(OpcodeName(static_cast<Opcode>(op)), "?");
  }
  EXPECT_STREQ(OpcodeName(static_cast<Opcode>(200)), "?");
  for (int e = 0; e <= 9; ++e) {
    EXPECT_STRNE(WireErrorName(static_cast<WireError>(e)), "?");
  }
  EXPECT_STREQ(WireErrorName(static_cast<WireError>(999)), "?");
}

}  // namespace
}  // namespace corekit::server
