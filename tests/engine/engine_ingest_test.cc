// CoreEngine::FromEdgeListFile — the cold-path factory that parses a
// text edge list with the chunked parallel reader, normalizes it with
// the parallel CSR builder, and records the work as the "ingest" and
// "build" stages.  These tests lock the stage accounting, the error
// propagation, and end-to-end parity with an engine built from a
// directly-constructed Graph (including with every parallel option on).

#include "corekit/engine/core_engine.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/metrics.h"
#include "corekit/gen/generators.h"
#include "corekit/graph/ckg_format.h"
#include "corekit/graph/edge_list_io.h"
#include "corekit/util/json.h"

namespace corekit {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/corekit_engine_ingest_" + name;
}

// Writes `graph` to a temp SNAP file and returns the path.
std::string WriteGraphFile(const Graph& graph, const std::string& name) {
  const std::string path = TempPath(name);
  const Status status = WriteSnapEdgeList(graph, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

TEST(EngineIngestTest, RecordsIngestAndBuildStages) {
  const Graph graph = GenerateErdosRenyi(120, 480, 3);
  const std::string path = WriteGraphFile(graph, "stages.txt");
  auto engine = CoreEngine::FromEdgeListFile(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::remove(path.c_str());

  const StageRecord* ingest = (*engine)->stats().Find("ingest");
  ASSERT_NE(ingest, nullptr);
  EXPECT_EQ(ingest->builds.load(), 1u);
  EXPECT_GE(ingest->seconds.load(), 0.0);
  EXPECT_GT(ingest->bytes.load(), 0u);
  EXPECT_GE(ingest->threads.load(), 1u);

  const StageRecord* build = (*engine)->stats().Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_EQ(build->builds.load(), 1u);
  EXPECT_GT(build->bytes.load(), 0u);
  EXPECT_GE(build->threads.load(), 1u);
}

TEST(EngineIngestTest, GraphMatchesSerialReaderExactly) {
  const Graph original = GenerateBarabasiAlbert(200, 4, 19);
  const std::string path = WriteGraphFile(original, "parity.txt");
  const Result<Graph> serial = ReadSnapEdgeList(path);
  ASSERT_TRUE(serial.ok());
  auto engine = CoreEngine::FromEdgeListFile(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::remove(path.c_str());
  EXPECT_TRUE(std::ranges::equal((*engine)->graph().Offsets(), serial->Offsets()));
  EXPECT_TRUE(std::ranges::equal((*engine)->graph().NeighborArray(), serial->NeighborArray()));
}

TEST(EngineIngestTest, PropagatesReaderErrors) {
  {
    auto engine = CoreEngine::FromEdgeListFile(TempPath("missing.txt"));
    EXPECT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kIoError);
  }
  {
    const std::string path = TempPath("malformed.txt");
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("0 1\ngarbage here\n", f);
    std::fclose(f);
    auto engine = CoreEngine::FromEdgeListFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kCorruption);
    EXPECT_NE(engine.status().ToString().find(":2"), std::string::npos)
        << engine.status().ToString();
  }
}

TEST(EngineIngestTest, QueriesMatchGraphBuiltEngine) {
  // Same answers as an engine over the same graph built in memory — with
  // every parallel option enabled on the cold-path engine.
  const Graph graph = GenerateErdosRenyi(250, 1500, 7);
  const std::string path = WriteGraphFile(graph, "queries.txt");
  CoreEngineOptions options;
  options.num_threads = 4;
  options.parallel_peel = true;
  options.parallel_ordering = true;
  options.parallel_triangles = true;
  auto cold = CoreEngine::FromEdgeListFile(path, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  std::remove(path.c_str());

  CoreEngine warm(graph);
  EXPECT_EQ((*cold)->Triangles(), warm.Triangles());
  EXPECT_EQ((*cold)->Triplets(), warm.Triplets());
  for (const Metric metric :
       {Metric::kAverageDegree, Metric::kClusteringCoefficient}) {
    SCOPED_TRACE(MetricName(metric));
    const CoreSetProfile& cold_set = (*cold)->BestCoreSet(metric);
    const CoreSetProfile& warm_set = warm.BestCoreSet(metric);
    EXPECT_EQ(cold_set.best_k, warm_set.best_k);
    EXPECT_DOUBLE_EQ(cold_set.best_score, warm_set.best_score);
    const SingleCoreProfile& cold_single = (*cold)->BestSingleCore(metric);
    const SingleCoreProfile& warm_single = warm.BestSingleCore(metric);
    EXPECT_EQ(cold_single.best_k, warm_single.best_k);
    EXPECT_DOUBLE_EQ(cold_single.best_score, warm_single.best_score);
  }
}

TEST(EngineIngestTest, FromBinaryFileMatchesTextIngest) {
  // Both .ckg flavors, both IO paths: the binary cold path must yield
  // the same graph and the same answers as the text cold path.
  const Graph graph = GenerateErdosRenyi(180, 900, 13);
  for (const bool compressed : {false, true}) {
    for (const bool force_fallback : {false, true}) {
      SCOPED_TRACE((compressed ? "compressed" : "plain") +
                   std::string(force_fallback ? "/fallback" : "/mmap"));
      const std::string path = TempPath("binary.ckg");
      CkgWriteOptions write_options;
      write_options.compressed = compressed;
      ASSERT_TRUE(WriteCkgGraph(graph, path, write_options).ok());
      CoreEngineOptions options;
      options.binary_force_fallback = force_fallback;
      auto engine = CoreEngine::FromBinaryFile(path, options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      std::remove(path.c_str());

      EXPECT_TRUE(std::ranges::equal((*engine)->graph().Offsets(),
                                     graph.Offsets()));
      EXPECT_TRUE(std::ranges::equal((*engine)->graph().NeighborArray(),
                                     graph.NeighborArray()));
      CoreEngine warm(graph);
      EXPECT_EQ((*engine)->Triangles(), warm.Triangles());
      const CoreSetProfile& cold_set =
          (*engine)->BestCoreSet(Metric::kAverageDegree);
      const CoreSetProfile& warm_set = warm.BestCoreSet(Metric::kAverageDegree);
      EXPECT_EQ(cold_set.best_k, warm_set.best_k);
      EXPECT_DOUBLE_EQ(cold_set.best_score, warm_set.best_score);

      const StageRecord* ingest = (*engine)->stats().Find("ingest");
      ASSERT_NE(ingest, nullptr);
      EXPECT_EQ(ingest->builds.load(), 1u);
      EXPECT_GT(ingest->bytes.load(), 0u);
      const StageRecord* build = (*engine)->stats().Find("build");
      ASSERT_NE(build, nullptr);
      EXPECT_EQ(build->builds.load(), 1u);
    }
  }
}

TEST(EngineIngestTest, FromBinaryFilePropagatesErrors) {
  {
    auto engine = CoreEngine::FromBinaryFile(TempPath("missing.ckg"));
    EXPECT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kIoError);
  }
  {
    const std::string path = TempPath("garbage.ckg");
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a ckg file at all", f);
    std::fclose(f);
    auto engine = CoreEngine::FromBinaryFile(path);
    std::remove(path.c_str());
    ASSERT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kCorruption);
  }
}

TEST(EngineIngestTest, EagerOrderingWarmsAfterIngest) {
  const Graph graph = GenerateErdosRenyi(80, 240, 5);
  const std::string path = WriteGraphFile(graph, "eager.txt");
  CoreEngineOptions options;
  options.eager_ordering = true;
  auto engine = CoreEngine::FromEdgeListFile(path, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::remove(path.c_str());
  EXPECT_NE((*engine)->stats().Find("decompose"), nullptr);
  EXPECT_NE((*engine)->stats().Find("order"), nullptr);
  EXPECT_EQ((*engine)->Ordered().NumVertices(), graph.NumVertices());
}

TEST(EngineIngestTest, ConcurrentQueriesAfterIngestStayExactlyOnce) {
  // The cold-path engine inherits the full thread-safety contract: many
  // clients racing the lazily-built substrate still produce exactly one
  // build per stage.  (Runs under TSan in CI.)
  const Graph graph = GenerateErdosRenyi(150, 700, 29);
  const std::string path = WriteGraphFile(graph, "concurrent.txt");
  CoreEngineOptions options;
  options.num_threads = 2;
  options.parallel_ordering = true;
  options.parallel_triangles = true;
  auto engine = CoreEngine::FromEdgeListFile(path, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  std::remove(path.c_str());

  std::vector<std::thread> clients;
  clients.reserve(4);
  for (int i = 0; i < 4; ++i) {
    clients.emplace_back([&engine] {
      (void)(*engine)->Cores();
      (void)(*engine)->Ordered();
      (void)(*engine)->Triangles();
      (void)(*engine)->BestCoreSet(Metric::kAverageDegree);
      (void)(*engine)->BestSingleCore(Metric::kClusteringCoefficient);
    });
  }
  for (std::thread& t : clients) t.join();

  for (const StageRecord& record : (*engine)->stats().records()) {
    EXPECT_LE(record.builds.load(), 1u) << record.name;
  }
}

}  // namespace
}  // namespace corekit
