// Golden lock on the StageStats JSON contract.
//
// BENCH_<suite>.json files, bench_diff, and any log shipping key on the
// exact stage names and field keys StageStats::ToJson emits.  This test
// pins that layout: if it fails, either revert the change or bump
// kStageStatsSchemaVersion AND update both this test and every consumer
// in the same commit (see stage_stats.h).

#include "corekit/engine/stage_stats.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/engine/core_engine.h"
#include "corekit/gen/generators.h"
#include "corekit/graph/edge_list_io.h"
#include "corekit/util/json.h"

namespace corekit {
namespace {

std::vector<std::string> MemberKeys(const Json& object) {
  std::vector<std::string> keys;
  for (const auto& [key, value] : object.members()) keys.push_back(key);
  return keys;
}

TEST(StageStatsSchemaTest, SchemaVersionIsThree) {
  // Bumping this constant is an intentional breaking change: update the
  // bench harness and bench_diff expectations alongside it.  v2 added the
  // cold-path "ingest" and "build" stages (CoreEngine::FromEdgeListFile);
  // v3 added the "patches" counter and the "applybatch" stage (mutable
  // engine mode).
  EXPECT_EQ(kStageStatsSchemaVersion, 3);
}

TEST(StageStatsSchemaTest, EmptyStatsDocumentShape) {
  StageStats stats;
  EXPECT_EQ(stats.ToJson(),
            "{\"schema_version\":3,\"stages\":[],"
            "\"totals\":{\"builds\":0,\"hits\":0,\"patches\":0,"
            "\"seconds\":0.000000,\"bytes\":0}}");
}

TEST(StageStatsSchemaTest, TopLevelAndPerStageKeysAreLocked) {
  StageStats stats;
  StageRecord& record = stats.Get("decompose");
  record.builds = 2;
  record.hits = 5;
  record.patches = 1;
  record.seconds = 0.125;
  record.bytes = 4096;
  record.threads = 3;

  Result<Json> doc = Json::Parse(stats.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(MemberKeys(*doc), (std::vector<std::string>{
                                  "schema_version", "stages", "totals"}));
  EXPECT_EQ(doc->NumberOr("schema_version", -1), kStageStatsSchemaVersion);

  const Json& stage = doc->Find("stages")->items().at(0);
  EXPECT_EQ(MemberKeys(stage),
            (std::vector<std::string>{"name", "builds", "hits", "patches",
                                      "seconds", "bytes", "threads"}));
  EXPECT_EQ(stage.StringOr("name", ""), "decompose");
  EXPECT_EQ(stage.NumberOr("builds", -1), 2);
  EXPECT_EQ(stage.NumberOr("hits", -1), 5);
  EXPECT_EQ(stage.NumberOr("patches", -1), 1);
  EXPECT_NEAR(stage.NumberOr("seconds", -1), 0.125, 1e-9);
  EXPECT_EQ(stage.NumberOr("bytes", -1), 4096);
  EXPECT_EQ(stage.NumberOr("threads", -1), 3);

  EXPECT_EQ(MemberKeys(*doc->Find("totals")),
            (std::vector<std::string>{"builds", "hits", "patches", "seconds",
                                      "bytes"}));
}

TEST(StageStatsSchemaTest, CanonicalEngineStageNames) {
  // The fixed pipeline stage names the bench harness and EXPERIMENTS.md
  // reference; renaming any of these is a schema change.
  Graph graph = GenerateErdosRenyi(60, 180, 11);
  CoreEngine engine(graph);
  (void)engine.Cores();
  (void)engine.Ordered();
  (void)engine.Forest();
  (void)engine.Components();
  (void)engine.Triangles();
  (void)engine.Triplets();
  (void)engine.BestCoreSet(Metric::kAverageDegree);
  (void)engine.BestSingleCore(Metric::kAverageDegree);

  Result<Json> doc = Json::Parse(engine.StatsJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  std::vector<std::string> names;
  for (const Json& stage : doc->Find("stages")->items()) {
    names.push_back(stage.StringOr("name", ""));
  }
  EXPECT_EQ(names, (std::vector<std::string>{
                       "decompose", "order", "forest", "components",
                       "triangles", "triplets", "coreset[ad]",
                       "singlecore[ad]"}));
}

TEST(StageStatsSchemaTest, ColdPathEngineStageNamesLeadWithIngest) {
  // Engines built through FromEdgeListFile additionally record the two
  // cold-path stages, in pipeline order, ahead of everything else.
  Graph graph = GenerateErdosRenyi(60, 180, 11);
  const std::string path =
      ::testing::TempDir() + "/stage_schema_cold_path.txt";
  ASSERT_TRUE(WriteSnapEdgeList(graph, path).ok());
  auto engine = CoreEngine::FromEdgeListFile(path);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  (void)(*engine)->Cores();
  (void)(*engine)->Ordered();
  std::remove(path.c_str());

  Result<Json> doc = Json::Parse((*engine)->StatsJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  std::vector<std::string> names;
  for (const Json& stage : doc->Find("stages")->items()) {
    names.push_back(stage.StringOr("name", ""));
  }
  EXPECT_EQ(names, (std::vector<std::string>{"ingest", "build", "decompose",
                                             "order"}));
}

TEST(StageStatsSchemaTest, PerMetricStageNamesAreLocked) {
  EXPECT_EQ(CoreEngine::CoreSetStageName(Metric::kAverageDegree),
            "coreset[ad]");
  EXPECT_EQ(CoreEngine::CoreSetStageName(Metric::kInternalDensity),
            "coreset[den]");
  EXPECT_EQ(CoreEngine::CoreSetStageName(Metric::kCutRatio), "coreset[cr]");
  EXPECT_EQ(CoreEngine::CoreSetStageName(Metric::kConductance),
            "coreset[con]");
  EXPECT_EQ(CoreEngine::CoreSetStageName(Metric::kModularity),
            "coreset[mod]");
  EXPECT_EQ(CoreEngine::CoreSetStageName(Metric::kClusteringCoefficient),
            "coreset[cc]");
  EXPECT_EQ(CoreEngine::SingleCoreStageName(Metric::kAverageDegree),
            "singlecore[ad]");
  EXPECT_EQ(CoreEngine::SingleCoreStageName(Metric::kModularity),
            "singlecore[mod]");
}

TEST(StageStatsSchemaTest, DumpIsParseableWithRealTimings) {
  // Whatever values land in the records, the document must stay valid
  // JSON whose totals equal the per-stage sums.
  Graph graph = GenerateErdosRenyi(80, 300, 23);
  CoreEngine engine(graph);
  for (const Metric metric : kAllMetrics) (void)engine.BestCoreSet(metric);

  Result<Json> doc = Json::Parse(engine.StatsJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  double builds = 0;
  double bytes = 0;
  for (const Json& stage : doc->Find("stages")->items()) {
    builds += stage.NumberOr("builds", 0);
    bytes += stage.NumberOr("bytes", 0);
  }
  const Json* totals = doc->Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_EQ(totals->NumberOr("builds", -1), builds);
  EXPECT_EQ(totals->NumberOr("bytes", -1), bytes);
}

}  // namespace
}  // namespace corekit
