// End-to-end serving tests: real sockets, real threads, real eviction.
//
// The acceptance battery for the serving tier:
//   * wire-vs-direct differential — the same deterministic query mix
//     through a TCP round-trip and through direct EngineService calls
//     produces bitwise-identical checksums, with multiple tenants
//     resident under a memory budget that forces eviction mid-run;
//   * protocol robustness over a live socket — malformed frames get
//     typed error responses and never take the server down;
//   * backpressure — a saturated bounded queue sheds typed kServerBusy,
//     every accepted request completes, and shutdown drains cleanly
//     (ASan proves no session leaks);
//   * churn through the server path — ApplyBatch over the wire patches
//     engines in place, and the per-tenant StageStats `patches`
//     aggregation stays correct across registry tenants.

#include <atomic>
#include <thread>
#include <vector>

#include "corekit/engine/engine_registry.h"
#include "corekit/gen/generators.h"
#include "corekit/server/engine_service.h"
#include "corekit/server/load_generator.h"
#include "corekit/server/tcp_server.h"
#include "corekit/server/wire_client.h"
#include "corekit/server/wire_protocol.h"
#include "corekit/util/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace corekit::server {
namespace {

using corekit::testing::Fig2Graph;

// Three deterministic tenants of different shapes.
void AddTenants(EngineRegistry& registry) {
  ASSERT_TRUE(registry.AddGraph("fig2", Fig2Graph()).ok());
  ASSERT_TRUE(registry.AddGraph("ba", GenerateBarabasiAlbert(300, 4, 11)).ok());
  ASSERT_TRUE(registry.AddGraph("er", GenerateErdosRenyi(200, 600, 13)).ok());
}

// A deterministic edge that is NOT in `graph` — epoch bumps only on
// effective batches, so churn tests must insert genuinely-new edges.
Edge AbsentEdge(const Graph& graph, VertexId skip_u = kInvalidVertex) {
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    if (u == skip_u) continue;
    for (VertexId v = u + 1; v < graph.NumVertices(); ++v) {
      if (!graph.HasEdge(u, v)) return {u, v};
    }
  }
  ADD_FAILURE() << "graph is complete";
  return {0, 0};
}

std::uint64_t TenantBudget(std::uint32_t engines) {
  // Big enough for `engines` of the largest tenant, not for all three.
  return engines *
         EstimateEngineFootprintBytes(GenerateBarabasiAlbert(300, 4, 11));
}

LoadGenOptions MixFor(std::uint16_t port, std::uint32_t clients,
                      std::uint32_t queries) {
  LoadGenOptions options;
  options.port = port;
  options.graphs = {"fig2", "ba", "er"};
  options.graph_sizes = {12, 300, 200};
  options.num_clients = clients;
  options.queries_per_client = queries;
  options.seed = 0xD1FFULL;
  return options;
}

// --- The tentpole differential --------------------------------------------

TEST(ServingE2eTest, WireMatchesDirectBitwiseUnderEviction) {
  // Budget for ~1.5 engines across 3 tenants: the mix *must* evict.
  EngineRegistryOptions registry_options;
  registry_options.memory_budget_bytes = TenantBudget(1) +
                                         TenantBudget(1) / 2;
  EngineRegistry wire_registry(registry_options);
  AddTenants(wire_registry);
  EngineService wire_service(wire_registry);
  TcpServerOptions server_options;
  server_options.num_workers = 4;
  TcpServer server(wire_service, server_options);
  ASSERT_TRUE(server.Start().ok());

  const LoadGenOptions mix = MixFor(server.port(), /*clients=*/6,
                                    /*queries=*/80);
  const LoadGenReport wire_report = RunWireLoad(mix);
  server.Shutdown();

  EXPECT_EQ(wire_report.transport_failures, 0u);
  EXPECT_EQ(wire_report.errors, 0u);
  EXPECT_EQ(wire_report.queries,
            static_cast<std::uint64_t>(mix.num_clients) *
                mix.queries_per_client);
  EXPECT_GT(wire_report.qps, 0.0);
  EXPECT_GE(wire_report.p99_seconds, wire_report.p50_seconds);
  EXPECT_GE(wire_report.p999_seconds, wire_report.p99_seconds);

  // ≥ 2 graphs went resident and the budget forced at least 1 eviction.
  const auto wire_stats = wire_registry.stats();
  EXPECT_GE(wire_stats.admissions, 3u);
  EXPECT_GE(wire_stats.evictions, 1u);

  // Direct replay: fresh registry (same tenants, same budget), no
  // sockets, serial.  The checksums must agree bitwise.
  EngineRegistry direct_registry(registry_options);
  AddTenants(direct_registry);
  EngineService direct_service(direct_registry);
  const LoadGenReport direct_report = RunDirectLoad(direct_service, mix);
  EXPECT_EQ(direct_report.queries, wire_report.queries);
  EXPECT_EQ(direct_report.errors, 0u);
  EXPECT_EQ(wire_report.checksum, direct_report.checksum)
      << "socket transport changed an answer";

  // And an unbounded-budget direct replay agrees too: eviction and
  // re-admission are answer-invariant, not just transport.
  EngineRegistry unbounded_registry;
  AddTenants(unbounded_registry);
  EngineService unbounded_service(unbounded_registry);
  const LoadGenReport unbounded_report =
      RunDirectLoad(unbounded_service, mix);
  EXPECT_EQ(unbounded_report.checksum, wire_report.checksum)
      << "eviction changed an answer";
  EXPECT_EQ(unbounded_registry.stats().evictions, 0u);
}

// The same mix twice over the wire: reproducible end to end.
TEST(ServingE2eTest, WireChecksumIsReproducible) {
  EngineRegistry registry;
  AddTenants(registry);
  EngineService service(registry);
  TcpServer server(service);
  ASSERT_TRUE(server.Start().ok());
  const LoadGenOptions mix = MixFor(server.port(), 3, 40);
  const LoadGenReport first = RunWireLoad(mix);
  const LoadGenReport second = RunWireLoad(mix);
  server.Shutdown();
  EXPECT_EQ(first.checksum, second.checksum);
  EXPECT_EQ(first.queries, second.queries);
}

// Pipelined clients (several requests in flight per connection) still
// match the serial direct replay: responses may interleave, request_id
// matching un-interleaves them.
TEST(ServingE2eTest, PipeliningPreservesAnswers) {
  EngineRegistry registry;
  AddTenants(registry);
  EngineService service(registry);
  TcpServer server(service);
  ASSERT_TRUE(server.Start().ok());
  LoadGenOptions mix = MixFor(server.port(), 4, 60);
  mix.pipeline_depth = 8;
  const LoadGenReport wire_report = RunWireLoad(mix);
  server.Shutdown();
  EXPECT_EQ(wire_report.transport_failures, 0u);

  EngineRegistry direct_registry;
  AddTenants(direct_registry);
  EngineService direct_service(direct_registry);
  EXPECT_EQ(wire_report.checksum,
            RunDirectLoad(direct_service, mix).checksum);
}

// --- Basic request/response over a live socket ----------------------------

class ServingFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    AddTenants(registry_);
    service_ = std::make_unique<EngineService>(registry_);
    server_ = std::make_unique<TcpServer>(*service_);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_TRUE(client_.Connect("127.0.0.1", server_->port()).ok());
  }

  void TearDown() override {
    client_.Close();
    if (server_ != nullptr) server_->Shutdown();
  }

  Response MustCall(const Request& request) {
    auto response = client_.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? response.value() : Response{};
  }

  EngineRegistry registry_;
  std::unique_ptr<EngineService> service_;
  std::unique_ptr<TcpServer> server_;
  WireClient client_;
};

TEST_F(ServingFixture, PingEchoes) {
  Request request;
  request.opcode = Opcode::kPing;
  request.request_id = 7;
  request.ping_payload = 0xABCDEF;
  const Response response = MustCall(request);
  EXPECT_EQ(response.status, WireError::kOk);
  EXPECT_EQ(response.request_id, 7u);
  EXPECT_EQ(response.ping_payload, 0xABCDEFu);
}

TEST_F(ServingFixture, GraphInfoReportsTenantShape) {
  Request request;
  request.opcode = Opcode::kGraphInfo;
  request.graph = "fig2";
  const Response response = MustCall(request);
  EXPECT_EQ(response.status, WireError::kOk);
  EXPECT_EQ(response.num_vertices, 12u);
  EXPECT_EQ(response.num_edges, 19u);
  EXPECT_EQ(response.epoch, 0u);
}

TEST_F(ServingFixture, CorenessMatchesThePaperExample) {
  Request request;
  request.opcode = Opcode::kCoreness;
  request.graph = "fig2";
  request.vertex = 0;  // v1 of Figure 2: in a K4, coreness 3
  const Response response = MustCall(request);
  EXPECT_EQ(response.status, WireError::kOk);
  EXPECT_EQ(response.coreness, 3u);
  EXPECT_EQ(response.kmax, 3u);
}

TEST_F(ServingFixture, UnknownGraphIsTyped) {
  Request request;
  request.opcode = Opcode::kCoreness;
  request.graph = "nope";
  const Response response = MustCall(request);
  EXPECT_EQ(response.status, WireError::kUnknownGraph);
}

TEST_F(ServingFixture, OutOfRangeVertexIsTyped) {
  Request request;
  request.opcode = Opcode::kCoreness;
  request.graph = "fig2";
  request.vertex = 1000;
  const Response response = MustCall(request);
  EXPECT_EQ(response.status, WireError::kBadRequest);
}

// --- Malformed frames over the socket -------------------------------------

TEST_F(ServingFixture, MalformedBodyGetsTypedErrorAndSessionSurvives) {
  // A syntactically-intact frame whose body lies about its string
  // length: typed kMalformedBody, and the *same connection* keeps
  // working afterwards (body errors do not poison the framing).
  Request info;
  info.opcode = Opcode::kGraphInfo;
  info.graph = "fig2";
  std::vector<std::uint8_t> bytes = EncodeRequest(info);
  bytes[kFrameHeaderBytes] = 0xFF;
  bytes[kFrameHeaderBytes + 1] = 0xFF;
  ASSERT_TRUE(client_.SendRaw(bytes).ok());
  Response response;
  ASSERT_TRUE(client_.Receive(&response).ok());
  EXPECT_EQ(response.status, WireError::kMalformedBody);
  // Session still alive:
  EXPECT_EQ(MustCall(info).status, WireError::kOk);
}

TEST_F(ServingFixture, UnknownOpcodeGetsTypedErrorAndSessionSurvives) {
  Request ping;
  ping.opcode = Opcode::kPing;
  ping.request_id = 77;
  std::vector<std::uint8_t> bytes = EncodeRequest(ping);
  bytes[5] = 0x7F;  // forge an undefined opcode
  ASSERT_TRUE(client_.SendRaw(bytes).ok());
  Response response;
  ASSERT_TRUE(client_.Receive(&response).ok());
  EXPECT_EQ(response.status, WireError::kUnknownOpcode);
  EXPECT_EQ(response.request_id, 77u);  // rejection is addressable
  EXPECT_EQ(MustCall(ping).status, WireError::kOk);
}

TEST_F(ServingFixture, UnsupportedVersionClosesTheConnection) {
  Request ping;
  ping.opcode = Opcode::kPing;
  std::vector<std::uint8_t> bytes = EncodeRequest(ping);
  bytes[4] = kWireVersion + 9;
  ASSERT_TRUE(client_.SendRaw(bytes).ok());
  Response response;
  ASSERT_TRUE(client_.Receive(&response).ok());
  EXPECT_EQ(response.status, WireError::kUnsupportedVersion);
  // The server hangs up after a version mismatch: the next read EOFs.
  EXPECT_FALSE(client_.Receive(&response).ok());
}

TEST_F(ServingFixture, OversizedLengthPrefixClosesTheConnection) {
  std::vector<std::uint8_t> bytes =
      EncodeRequest([] {
        Request ping;
        ping.opcode = Opcode::kPing;
        return ping;
      }());
  bytes[0] = bytes[1] = bytes[2] = bytes[3] = 0xFF;  // 4 GiB body claim
  ASSERT_TRUE(client_.SendRaw(bytes).ok());
  Response response;
  ASSERT_TRUE(client_.Receive(&response).ok());
  EXPECT_EQ(response.status, WireError::kOversizedFrame);
  EXPECT_FALSE(client_.Receive(&response).ok());  // hung up
  // The *server* is fine: a fresh connection works.
  WireClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server_->port()).ok());
  Request info;
  info.opcode = Opcode::kGraphInfo;
  info.graph = "fig2";
  auto ok = fresh.Call(info);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().status, WireError::kOk);
  EXPECT_GE(server_->stats().frames_rejected, 1u);
}

TEST_F(ServingFixture, GarbageStreamNeverKillsTheServer) {
  // Shovel random bytes at the server, then confirm it still answers.
  Rng rng(555);
  std::vector<std::uint8_t> noise(512);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.NextBounded(256));
  (void)client_.SendRaw(noise);
  client_.Close();
  WireClient fresh;
  ASSERT_TRUE(fresh.Connect("127.0.0.1", server_->port()).ok());
  Request info;
  info.opcode = Opcode::kGraphInfo;
  info.graph = "ba";
  auto response = fresh.Call(info);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().status, WireError::kOk);
  EXPECT_EQ(response.value().num_vertices, 300u);
}

// --- Backpressure ----------------------------------------------------------

TEST(ServingBackpressureTest, SaturatedQueueShedsTypedBusy) {
  EngineRegistry registry;
  AddTenants(registry);
  // One slow worker + a 2-deep queue: a burst of pipelined requests
  // must overflow deterministically.
  EngineServiceOptions service_options;
  service_options.artificial_delay_seconds = 0.02;
  service_options.coalesce_cold_queries = false;  // every request works
  EngineService service(registry, service_options);
  TcpServerOptions server_options;
  server_options.num_workers = 1;
  server_options.queue_capacity = 2;
  TcpServer server(service, server_options);
  ASSERT_TRUE(server.Start().ok());

  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr std::uint32_t kBurst = 16;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Request request;
    // Coreness (not Ping): the artificial delay applies after the lease
    // is acquired, so every admitted request holds the one worker for
    // 20ms — the burst must overflow the 2-deep queue.
    request.opcode = Opcode::kCoreness;
    request.graph = "fig2";
    request.vertex = i % 12;
    request.request_id = i;
    ASSERT_TRUE(client.Send(request).ok());
  }
  std::uint32_t ok_count = 0;
  std::uint32_t busy_count = 0;
  for (std::uint32_t i = 0; i < kBurst; ++i) {
    Response response;
    ASSERT_TRUE(client.Receive(&response).ok());
    if (response.status == WireError::kOk) {
      ++ok_count;
    } else {
      ASSERT_EQ(response.status, WireError::kServerBusy);
      ++busy_count;
    }
  }
  client.Close();
  server.Shutdown();

  // Every request got exactly one response; overload shed typed busy.
  EXPECT_EQ(ok_count + busy_count, kBurst);
  EXPECT_GT(busy_count, 0u) << "queue never saturated";
  EXPECT_GT(ok_count, 0u) << "nothing was admitted";
  const auto stats = server.stats();
  EXPECT_EQ(stats.busy_rejections, busy_count);
  // "Accepted implies completed": the workers answered every admitted
  // request before shutdown returned.
  EXPECT_EQ(stats.requests_completed, ok_count);
}

TEST(ServingBackpressureTest, ShutdownDrainsAcceptedRequests) {
  EngineRegistry registry;
  AddTenants(registry);
  EngineServiceOptions service_options;
  service_options.artificial_delay_seconds = 0.01;
  EngineService service(registry, service_options);
  TcpServerOptions server_options;
  server_options.num_workers = 2;
  TcpServer server(service, server_options);
  ASSERT_TRUE(server.Start().ok());

  // Queue a pile of slow requests, then shut down while they are in
  // flight: every admitted request still gets its response (drain), and
  // ASan confirms no session or thread leaks.
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());
  constexpr std::uint32_t kInFlight = 8;
  for (std::uint32_t i = 0; i < kInFlight; ++i) {
    Request request;
    request.opcode = Opcode::kCoreness;
    request.graph = "fig2";
    request.vertex = i;
    request.request_id = 100 + i;
    ASSERT_TRUE(client.Send(request).ok());
  }
  std::atomic<std::uint32_t> answered{0};
  std::thread reader([&client, &answered] {
    Response response;
    while (client.Receive(&response).ok()) {
      if (response.status == WireError::kOk ||
          response.status == WireError::kServerBusy ||
          response.status == WireError::kShuttingDown) {
        answered.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Give the reader a moment to start, then drain underneath it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.Shutdown();
  reader.join();
  client.Close();
  const auto stats = server.stats();
  EXPECT_EQ(stats.requests_completed + stats.busy_rejections,
            static_cast<std::uint64_t>(answered.load()));
  EXPECT_LE(answered.load(), kInFlight);
  EXPECT_GT(answered.load(), 0u);
}

TEST(ServingBackpressureTest, SessionLimitRefusesWithTypedBusy) {
  EngineRegistry registry;
  AddTenants(registry);
  EngineService service(registry);
  TcpServerOptions server_options;
  server_options.max_sessions = 2;
  TcpServer server(service, server_options);
  ASSERT_TRUE(server.Start().ok());

  WireClient first, second;
  ASSERT_TRUE(first.Connect("127.0.0.1", server.port()).ok());
  ASSERT_TRUE(second.Connect("127.0.0.1", server.port()).ok());
  // Make sure both sessions are registered before the third knocks.
  Request ping;
  ping.opcode = Opcode::kPing;
  ASSERT_TRUE(first.Call(ping).ok());
  ASSERT_TRUE(second.Call(ping).ok());

  WireClient third;
  ASSERT_TRUE(third.Connect("127.0.0.1", server.port()).ok());
  Response refusal;
  ASSERT_TRUE(third.Receive(&refusal).ok());
  EXPECT_EQ(refusal.status, WireError::kServerBusy);
  server.Shutdown();
  EXPECT_GE(server.stats().sessions_refused, 1u);
}

// --- Churn through the server path ----------------------------------------

TEST(ServingChurnTest, ApplyBatchOverWirePatchesTenantsIndependently) {
  EngineRegistry registry;
  AddTenants(registry);
  EngineService service(registry);
  TcpServer server(service);
  ASSERT_TRUE(server.Start().ok());
  WireClient client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server.port()).ok());

  // Batch 1 on fig2: add a chord inside the 2-shell, drop a K4 edge.
  Request batch;
  batch.opcode = Opcode::kApplyBatch;
  batch.graph = "fig2";
  batch.request_id = 1;
  batch.inserts = {{4, 7}};   // v5-v8
  batch.deletes = {{0, 1}};   // v1-v2
  auto first = client.Call(batch);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first.value().status, WireError::kOk);
  EXPECT_EQ(first.value().epoch, 1u);
  EXPECT_EQ(first.value().inserted, 1u);
  EXPECT_EQ(first.value().deleted, 1u);

  // Batch 2, same tenant: epochs accumulate per tenant.
  batch.request_id = 2;
  batch.inserts = {{0, 1}};   // restore the K4 edge
  batch.deletes = {{4, 7}};
  auto second = client.Call(batch);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().epoch, 2u);

  // A batch on a *different* tenant starts at its own epoch 1.  The er
  // tenant is random, so pick an edge provably absent from it.
  Request other;
  other.opcode = Opcode::kApplyBatch;
  other.graph = "er";
  other.request_id = 3;
  other.inserts = {AbsentEdge(GenerateErdosRenyi(200, 600, 13))};
  auto third = client.Call(other);
  ASSERT_TRUE(third.ok());
  EXPECT_EQ(third.value().inserted, 1u);
  EXPECT_EQ(third.value().epoch, 1u);

  // Queries against the churned tenant see post-batch state over the
  // same socket (fig2 is net unchanged, so the paper's numbers hold).
  Request coreness;
  coreness.opcode = Opcode::kCoreness;
  coreness.graph = "fig2";
  coreness.vertex = 0;
  coreness.request_id = 4;
  auto query = client.Call(coreness);
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(query.value().coreness, 3u);

  client.Close();
  server.Shutdown();
  EXPECT_EQ(service.stats().batches, 3u);

  // StageStats `patches` aggregation per tenant: fig2's engine absorbed
  // 2 batches, er's 1, ba's 0 — the counters are per-engine, so the
  // registry's tenancy must not smear them together.
  {
    auto fig2 = registry.Acquire("fig2");
    EXPECT_EQ(fig2->engine().Epoch(), 2u);
    EXPECT_GE(fig2->engine().stats().TotalPatches(), 2u);
    fig2->Release();
    auto er = registry.Acquire("er");
    EXPECT_EQ(er->engine().Epoch(), 1u);
    EXPECT_GE(er->engine().stats().TotalPatches(), 1u);
    er->Release();
    auto ba = registry.Acquire("ba");
    EXPECT_EQ(ba->engine().Epoch(), 0u);
    EXPECT_EQ(ba->engine().stats().TotalPatches(), 0u);
    ba->Release();
  }
}

// Concurrent wire clients churning two tenants while readers query a
// third: the registry serializes nothing across tenants (each engine
// has its own locks), and every answer stays coherent.
TEST(ServingChurnTest, ConcurrentChurnAndReadsAcrossTenants) {
  EngineRegistry registry;
  AddTenants(registry);
  EngineService service(registry);
  TcpServer server(service);
  ASSERT_TRUE(server.Start().ok());

  std::atomic<std::uint32_t> batch_errors{0};
  std::atomic<std::uint32_t> read_errors{0};
  std::vector<std::thread> threads;
  // Two writers alternating insert/delete on their own tenant.
  for (const std::string graph : {"fig2", "er"}) {
    threads.emplace_back([port = server.port(), graph, &batch_errors] {
      WireClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
      for (std::uint32_t round = 0; round < 20; ++round) {
        Request batch;
        batch.opcode = Opcode::kApplyBatch;
        batch.graph = graph;
        batch.request_id = round;
        const Edge edge =
            graph == "fig2"
                ? Edge{4, 7}  // v5-v8: absent from Figure 2
                : AbsentEdge(GenerateErdosRenyi(200, 600, 13));
        if (round % 2 == 0) {
          batch.inserts = {edge};
        } else {
          batch.deletes = {edge};
        }
        auto response = client.Call(batch);
        if (!response.ok() ||
            response.value().status != WireError::kOk) {
          batch_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  // Readers on the untouched tenant.
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([port = server.port(), &read_errors] {
      WireClient client;
      ASSERT_TRUE(client.Connect("127.0.0.1", port).ok());
      for (std::uint32_t round = 0; round < 40; ++round) {
        Request request;
        request.opcode = Opcode::kGraphInfo;
        request.graph = "ba";
        request.request_id = round;
        auto response = client.Call(request);
        if (!response.ok() || response.value().status != WireError::kOk ||
            response.value().num_vertices != 300 ||
            response.value().epoch != 0) {
          read_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  server.Shutdown();
  EXPECT_EQ(batch_errors.load(), 0u);
  EXPECT_EQ(read_errors.load(), 0u);
  EXPECT_EQ(service.stats().batches, 40u);

  // Each churned tenant absorbed exactly its own 20 batches.
  auto fig2 = registry.Acquire("fig2");
  EXPECT_EQ(fig2->engine().Epoch(), 20u);
  fig2->Release();
  auto er = registry.Acquire("er");
  EXPECT_EQ(er->engine().Epoch(), 20u);
  er->Release();
}

// --- Coalescing ------------------------------------------------------------

TEST(ServingCoalescingTest, IdenticalColdQueriesShareOneExecution) {
  EngineRegistry registry;
  AddTenants(registry);
  // The artificial delay holds the leader in Execute() long enough for
  // the followers to pile onto its flight cell.
  EngineServiceOptions service_options;
  service_options.artificial_delay_seconds = 0.05;
  EngineService service(registry, service_options);

  constexpr std::uint32_t kCallers = 6;
  std::vector<std::thread> threads;
  std::vector<Response> responses(kCallers);
  for (std::uint32_t t = 0; t < kCallers; ++t) {
    threads.emplace_back([&service, &responses, t] {
      Request request;
      request.opcode = Opcode::kTrussMax;  // expensive + uncached
      request.graph = "ba";
      request.request_id = t;
      responses[t] = service.Handle(request);
    });
  }
  for (auto& thread : threads) thread.join();
  for (std::uint32_t t = 0; t < kCallers; ++t) {
    EXPECT_EQ(responses[t].status, WireError::kOk);
    EXPECT_EQ(responses[t].request_id, t);  // restamped per caller
    EXPECT_EQ(responses[t].tmax, responses[0].tmax);
  }
  // At least some callers were followers (exact split is a race), and
  // every follower shared the leader's single execution.
  EXPECT_GT(service.stats().coalesced, 0u);
  EXPECT_LT(service.stats().coalesced, kCallers);
}

}  // namespace
}  // namespace corekit::server
