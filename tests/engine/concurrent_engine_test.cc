// Concurrency suite for the shared CoreEngine (run under TSan in CI).
//
// The engine's contract is that one instance serves any number of client
// threads: cold races elect exactly one builder per stage, warm queries
// are lock-free reads, and the answers are bit-identical to a fresh
// single-threaded engine over the same graph.  These tests drive a shared
// engine hard from many threads and then assert the exactly-once
// accounting, pointer identity of the cached artifacts, and the
// differential against a serial reference — including through the
// EngineServer harness and with the parallel substrate options turned on
// (which exercises concurrent entry into the shared ThreadPool).

#include <algorithm>
#include <atomic>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/corekit.h"
#include "corekit/engine/engine_server.h"
#include "corekit/util/random.h"

namespace corekit {
namespace {

constexpr std::uint32_t kClientThreads = 8;

Graph MakeTestGraph(int which, std::uint64_t seed) {
  switch (which) {
    case 0:
      return GenerateErdosRenyi(150, 900, seed);
    case 1:
      return GenerateBarabasiAlbert(150, 4, seed);
    case 2: {
      LfrLikeParams lfr;
      lfr.num_vertices = 150;
      lfr.min_degree = 4;
      lfr.max_degree = 20;
      lfr.min_community = 15;
      lfr.max_community = 50;
      lfr.mu = 0.25;
      lfr.seed = seed;
      return GenerateLfrLike(lfr).graph;
    }
    default: {
      RmatParams rmat;
      rmat.scale = 8;
      rmat.num_edges = 1500;
      rmat.seed = seed;
      return GenerateRmat(rmat);
    }
  }
}

const char* GraphTag(int which) {
  switch (which) {
    case 0:
      return "ER";
    case 1:
      return "BA";
    case 2:
      return "LFR";
    default:
      return "RMAT";
  }
}

// Runs `client` on kClientThreads threads and joins them.
void RunClients(const std::function<void(std::uint32_t)>& client) {
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (std::uint32_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&client, t] { client(t); });
  }
  for (std::thread& thread : threads) thread.join();
}

// Every stage the engine ever recorded must have been built exactly once,
// no matter how many threads raced it cold.
void ExpectExactlyOnceBuilds(const CoreEngine& engine) {
  const std::vector<StageRecord> records = engine.stats().records();
  EXPECT_FALSE(records.empty());
  for (const StageRecord& record : records) {
    EXPECT_EQ(record.builds.load(), 1u) << "stage " << record.name;
  }
}

TEST(ConcurrentCoreEngineTest, ColdStormBuildsEveryStageExactlyOnce) {
  const Graph graph = MakeTestGraph(0, 42);
  CoreEngine engine(graph);
  RunClients([&engine](std::uint32_t) {
    for (const Metric metric : kAllMetrics) {
      (void)engine.BestCoreSet(metric);
      (void)engine.BestSingleCore(metric);
    }
    (void)engine.Cores();
    (void)engine.Ordered();
    (void)engine.Forest();
    (void)engine.Components();
    (void)engine.Triangles();
    (void)engine.Triplets();
  });
  ExpectExactlyOnceBuilds(engine);
  // Every accessor call is exactly one build-or-hit event on its own
  // stage.  The 8 threads issue 18 direct queries each; on top of that,
  // the 18 one-time build bodies make dependency calls of their own
  // (order->cores, forest->cores, triangles->ordered, each coreset->
  // ordered, each singlecore->ordered+forest), which count against the
  // dependency's stage.  Both totals are deterministic however the
  // threads interleave.
  const std::uint64_t kMetrics = sizeof(kAllMetrics) / sizeof(kAllMetrics[0]);
  const std::uint64_t kStages = 6 + 2 * kMetrics;
  const std::uint64_t kDependencyEvents = 3 + kMetrics + 2 * kMetrics;
  EXPECT_EQ(engine.stats().TotalBuilds(), kStages);
  EXPECT_EQ(engine.stats().TotalBuilds() + engine.stats().TotalHits(),
            kClientThreads * kStages + kDependencyEvents);
}

TEST(ConcurrentCoreEngineTest, AllThreadsSeeTheSameCachedArtifacts) {
  const Graph graph = MakeTestGraph(1, 7);
  CoreEngine engine(graph);
  std::vector<const CoreDecomposition*> cores(kClientThreads, nullptr);
  std::vector<const OrderedGraph*> ordered(kClientThreads, nullptr);
  std::vector<const CoreSetProfile*> profiles(kClientThreads, nullptr);
  RunClients([&](std::uint32_t t) {
    cores[t] = &engine.Cores();
    ordered[t] = &engine.Ordered();
    profiles[t] = &engine.BestCoreSet(Metric::kAverageDegree);
  });
  for (std::uint32_t t = 1; t < kClientThreads; ++t) {
    EXPECT_EQ(cores[t], cores[0]);
    EXPECT_EQ(ordered[t], ordered[0]);
    EXPECT_EQ(profiles[t], profiles[0]);
  }
}

// The heart of the suite: a shared engine hammered by K threads across M
// metrics must produce profiles bit-identical to a fresh single-threaded
// engine, for every generator family.
TEST(ConcurrentCoreEngineTest, SharedEngineMatchesSerialReferenceBitwise) {
  for (int which = 0; which < 4; ++which) {
    SCOPED_TRACE(GraphTag(which));
    const Graph graph =
        MakeTestGraph(which, 1000 + static_cast<std::uint64_t>(which));

    CoreEngine shared(graph);
    RunClients([&shared](std::uint32_t t) {
      // Stagger the query order per thread so different stages race cold.
      const std::uint64_t kMetrics =
          sizeof(kAllMetrics) / sizeof(kAllMetrics[0]);
      for (std::uint64_t i = 0; i < kMetrics; ++i) {
        const Metric metric = kAllMetrics[(i + t) % kMetrics];
        (void)shared.BestCoreSet(metric);
        (void)shared.BestSingleCore(metric);
      }
    });

    CoreEngine reference(graph);
    for (const Metric metric : kAllMetrics) {
      SCOPED_TRACE(MetricShortName(metric));
      const CoreSetProfile& got = shared.BestCoreSet(metric);
      const CoreSetProfile ref = reference.BestCoreSet(metric);
      EXPECT_EQ(got.best_k, ref.best_k);
      EXPECT_EQ(got.best_score, ref.best_score);  // bitwise, not NEAR
      ASSERT_EQ(got.scores.size(), ref.scores.size());
      for (std::size_t k = 0; k < got.scores.size(); ++k) {
        EXPECT_EQ(got.scores[k], ref.scores[k]) << "k=" << k;
      }
      const SingleCoreProfile& got_single = shared.BestSingleCore(metric);
      const SingleCoreProfile ref_single = reference.BestSingleCore(metric);
      EXPECT_EQ(got_single.best_k, ref_single.best_k);
      EXPECT_EQ(got_single.best_node, ref_single.best_node);
      EXPECT_EQ(got_single.best_score, ref_single.best_score);
      ASSERT_EQ(got_single.scores.size(), ref_single.scores.size());
      for (std::size_t i = 0; i < got_single.scores.size(); ++i) {
        EXPECT_EQ(got_single.scores[i], ref_single.scores[i]) << "node=" << i;
      }
    }
    ExpectExactlyOnceBuilds(shared);
  }
}

TEST(ConcurrentCoreEngineTest, WarmEngineServesHitsWithoutRebuilding) {
  const Graph graph = MakeTestGraph(2, 9);
  CoreEngine engine(graph);
  // Warm every stage serially first.
  for (const Metric metric : kAllMetrics) {
    (void)engine.BestCoreSet(metric);
    (void)engine.BestSingleCore(metric);
  }
  (void)engine.Components();
  (void)engine.Triangles();
  (void)engine.Triplets();
  const std::uint64_t builds_before = engine.stats().TotalBuilds();

  RunClients([&engine](std::uint32_t) {
    for (int round = 0; round < 10; ++round) {
      for (const Metric metric : kAllMetrics) {
        (void)engine.BestCoreSet(metric);
        (void)engine.BestSingleCore(metric);
      }
      (void)engine.Triangles();
      (void)engine.Components();
    }
  });

  EXPECT_EQ(engine.stats().TotalBuilds(), builds_before);
  ExpectExactlyOnceBuilds(engine);
}

TEST(ConcurrentCoreEngineTest, ResetStatsRacesQueriesWithoutTornCounters) {
  const Graph graph = MakeTestGraph(0, 77);
  CoreEngine engine(graph);
  std::atomic<bool> stop{false};

  std::thread resetter([&engine, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      engine.ResetStats();
      // Aggregates must always be readable mid-race (the snapshot loads
      // are atomic; values are monotone between resets).
      (void)engine.stats().TotalBuilds();
      (void)engine.stats().TotalHits();
      (void)engine.StatsJson();
    }
  });

  RunClients([&engine](std::uint32_t) {
    for (int round = 0; round < 20; ++round) {
      for (const Metric metric : kAllMetrics) {
        (void)engine.BestCoreSet(metric);
        (void)engine.BestSingleCore(metric);
      }
    }
  });
  stop.store(true, std::memory_order_release);
  resetter.join();

  // Artifacts stay cached through resets: a fresh round of queries after
  // the dust settles is all hits, and no stage ever rebuilds.
  engine.ResetStats();
  for (const Metric metric : kAllMetrics) {
    (void)engine.BestCoreSet(metric);
  }
  EXPECT_EQ(engine.stats().TotalBuilds(), 0u);
  const std::uint64_t kMetrics = sizeof(kAllMetrics) / sizeof(kAllMetrics[0]);
  EXPECT_EQ(engine.stats().TotalHits(), kMetrics);
}

TEST(ConcurrentCoreEngineTest, EngineServerChecksumMatchesSerialReference) {
  const Graph graph = MakeTestGraph(3, 5);
  EngineServerOptions options;
  options.num_clients = kClientThreads;
  options.queries_per_client = 16;
  // Keep the apps-layer kind in the mix: it shares the engine caches with
  // the built-in kinds, which is exactly the contention worth testing.
  options.extension_query = CommunitySearchQueryFold;

  CoreEngine shared(graph);
  const EngineServeReport concurrent = ServeQueryMix(shared, options);

  CoreEngine fresh(graph);
  const EngineServeReport serial = ServeQueryMixSerial(fresh, options);

  EXPECT_EQ(concurrent.TotalQueries(), serial.TotalQueries());
  EXPECT_EQ(concurrent.TotalQueries(),
            static_cast<std::uint64_t>(options.num_clients) *
                options.queries_per_client);
  EXPECT_EQ(concurrent.Checksum(), serial.Checksum());
  // Per-client checksums must match pairwise too (same deterministic
  // stream per client id).
  ASSERT_EQ(concurrent.clients.size(), serial.clients.size());
  for (std::size_t c = 0; c < concurrent.clients.size(); ++c) {
    EXPECT_EQ(concurrent.clients[c].checksum, serial.clients[c].checksum)
        << "client " << c;
  }
  ExpectExactlyOnceBuilds(shared);
}

// Parallel substrate options: the cold storm now funnels through the
// shared ThreadPool from several client threads at once, exercising the
// pool's concurrent-entry serialization.  The parallel peel is
// deterministic, so a fresh engine with the same options is an exact
// reference.
TEST(ConcurrentCoreEngineTest, ParallelSubstratesUnderConcurrentCold) {
  const Graph graph = MakeTestGraph(0, 123);
  CoreEngineOptions options;
  options.parallel_peel = true;
  options.parallel_triangles = true;
  options.num_threads = 4;

  CoreEngine shared(graph, options);
  std::vector<std::uint64_t> triangles(kClientThreads, 0);
  RunClients([&shared, &triangles](std::uint32_t t) {
    (void)shared.Cores();
    triangles[t] = shared.Triangles();
    (void)shared.BestCoreSet(Metric::kClusteringCoefficient);
  });

  CoreEngine reference(graph, options);
  EXPECT_EQ(shared.Cores().coreness, reference.Cores().coreness);
  EXPECT_EQ(shared.Cores().kmax, reference.Cores().kmax);
  for (std::uint32_t t = 0; t < kClientThreads; ++t) {
    EXPECT_EQ(triangles[t], reference.Triangles());
  }
  ExpectExactlyOnceBuilds(shared);
}

// --- Mutable engine mode under concurrency -------------------------------

// Readers race an ApplyBatch writer.  Every read must observe a coherent
// epoch (never a half-patched one): the decomposition a reader gets is
// internally consistent, and once the writer has joined, the engine's
// answers are bit-identical to a cold engine on the final snapshot.
// Runs under two configurations: the default serial peel, and the
// frontier-parallel peel (so the baseline decomposition ApplyBatch
// patches on top of came from the parallel substrate).
void RunQueriesRacingApplyBatch(const CoreEngineOptions& options) {
  for (int which = 0; which < 4; ++which) {
    SCOPED_TRACE(GraphTag(which));
    const Graph graph =
        MakeTestGraph(which, 500 + static_cast<std::uint64_t>(which));
    CoreEngine engine(graph, options);
    (void)engine.Cores();  // warm so the first batch patches, not builds
    const VertexId n = graph.NumVertices();

    std::thread writer([&engine, n, which] {
      SplitMix64 stream(std::uint64_t{0xABCD} +
                        static_cast<std::uint64_t>(which));
      EdgeList owned;
      for (int b = 0; b < 12; ++b) {
        EdgeList inserts;
        EdgeList deletes;
        for (int i = 0; i < 5; ++i) {
          const auto u = static_cast<VertexId>(stream.Next() % n);
          const auto v = static_cast<VertexId>(stream.Next() % n);
          inserts.emplace_back(u, v);
          if (u != v) owned.emplace_back(u, v);
        }
        for (int i = 0; i < 2 && !owned.empty(); ++i) {
          const std::size_t pick = stream.Next() % owned.size();
          deletes.push_back(owned[pick]);
          owned[pick] = owned.back();
          owned.pop_back();
        }
        (void)engine.ApplyBatch(inserts, deletes);
      }
    });
    RunClients([&engine](std::uint32_t t) {
      for (int round = 0; round < 8; ++round) {
        // Each reference is from one epoch; its internal invariants hold
        // regardless of what the writer does concurrently.
        const CoreDecomposition& cores = engine.Cores();
        ASSERT_EQ(cores.coreness.size(), cores.peel_order.size());
        const CoreSetProfile& profile = engine.BestCoreSet(
            t % 2 == 0 ? Metric::kAverageDegree : Metric::kModularity);
        ASSERT_EQ(profile.scores.size(), profile.primaries.size());
        (void)engine.Triangles();
        (void)engine.Triplets();
      }
    });
    writer.join();

    // Post-join differential: patched state == cold rebuild, bitwise.
    CoreEngine cold(Graph(engine.graph()));
    EXPECT_EQ(engine.Cores().coreness, cold.Cores().coreness);
    EXPECT_EQ(engine.Cores().kmax, cold.Cores().kmax);
    EXPECT_EQ(engine.Triangles(), cold.Triangles());
    EXPECT_EQ(engine.Triplets(), cold.Triplets());
    for (const Metric metric : kAllMetrics) {
      SCOPED_TRACE(MetricShortName(metric));
      const CoreSetProfile& got = engine.BestCoreSet(metric);
      const CoreSetProfile ref = cold.BestCoreSet(metric);
      EXPECT_EQ(got.best_k, ref.best_k);
      EXPECT_EQ(got.scores, ref.scores);
      const SingleCoreProfile& got_single = engine.BestSingleCore(metric);
      const SingleCoreProfile ref_single = cold.BestSingleCore(metric);
      EXPECT_EQ(got_single.best_k, ref_single.best_k);
      EXPECT_EQ(got_single.scores, ref_single.scores);
    }
    EXPECT_GT(engine.Epoch(), 0u);
  }
}

TEST(ConcurrentCoreEngineTest, QueriesRacingApplyBatchStayCoherent) {
  RunQueriesRacingApplyBatch(CoreEngineOptions{});
}

TEST(ConcurrentCoreEngineTest, QueriesRacingApplyBatchWithFrontierPeel) {
  CoreEngineOptions options;
  options.parallel_peel = true;
  options.num_threads = 4;
  RunQueriesRacingApplyBatch(options);
}

// A parallel-peel storm: every client forces a cold frontier-parallel
// decomposition on its own engine (no exactly-once election to hide
// behind — each engine's pool runs a full peel while seven others do the
// same), then all results are cross-checked against the serial oracle.
// The shared-engine variant on top exercises the election path with the
// frontier substrate under TSan.
TEST(ConcurrentCoreEngineTest, FrontierPeelColdStormMatchesSerialOracle) {
  for (int which = 0; which < 4; ++which) {
    SCOPED_TRACE(GraphTag(which));
    const Graph graph =
        MakeTestGraph(which, 2100 + static_cast<std::uint64_t>(which));
    const CoreDecomposition oracle = ComputeCoreDecomposition(graph);

    CoreEngineOptions options;
    options.parallel_peel = true;
    options.num_threads = 4;

    std::vector<std::unique_ptr<CoreEngine>> engines;
    engines.reserve(kClientThreads);
    for (std::uint32_t t = 0; t < kClientThreads; ++t) {
      engines.push_back(std::make_unique<CoreEngine>(graph, options));
    }
    RunClients([&engines, &oracle](std::uint32_t t) {
      const CoreDecomposition& cores = engines[t]->Cores();
      EXPECT_EQ(cores.coreness, oracle.coreness);
      EXPECT_EQ(cores.kmax, oracle.kmax);
    });

    CoreEngine shared(graph, options);
    RunClients([&shared, &oracle](std::uint32_t) {
      EXPECT_EQ(shared.Cores().coreness, oracle.coreness);
    });
    ExpectExactlyOnceBuilds(shared);
  }
}

// Concurrent ApplyBatch callers serialize; the combined effect must be
// some serialization of the batches (here: all batches are disjoint
// inserts, so the final edge set is exactly their union).
TEST(ConcurrentCoreEngineTest, ConcurrentWritersSerializeCleanly) {
  const VertexId n = 64;
  Graph graph = GenerateErdosRenyi(n, 100, 11);
  CoreEngine engine(std::move(graph));
  constexpr std::uint32_t kWriters = 4;
  std::vector<std::thread> writers;
  std::vector<CoreEngine::BatchResult> results(kWriters);
  for (std::uint32_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&engine, &results, w] {
      // Writer w owns the spoke set {w*8, ..., w*8+7} around hub 63.
      EdgeList inserts;
      for (VertexId i = 0; i < 8; ++i) {
        inserts.emplace_back(static_cast<VertexId>(w * 8 + i), 62);
      }
      results[w] = engine.ApplyBatch(inserts, {});
    });
  }
  for (std::thread& thread : writers) thread.join();

  std::uint64_t total_inserted = 0;
  for (const CoreEngine::BatchResult& result : results) {
    total_inserted += result.inserted;
  }
  // Effective batches got distinct consecutive epochs.
  EXPECT_EQ(engine.Epoch(),
            static_cast<std::uint64_t>(
                std::count_if(results.begin(), results.end(),
                              [](const CoreEngine::BatchResult& r) {
                                return r.inserted > 0;
                              })));
  CoreEngine cold(Graph(engine.graph()));
  EXPECT_EQ(engine.Cores().coreness, cold.Cores().coreness);
  EXPECT_GE(total_inserted, 1u);
}

TEST(EngineServerTest, ServeChurnMixKeepsAnswersFresh) {
  const Graph graph = MakeTestGraph(0, 314);
  CoreEngine engine(graph);
  ChurnMixOptions options;
  options.serve.num_clients = kClientThreads;
  options.serve.queries_per_client = 24;
  options.num_batches = 10;
  options.inserts_per_batch = 6;
  options.deletes_per_batch = 2;

  const ChurnServeReport report = ServeChurnMix(engine, options);
  EXPECT_EQ(report.batches, options.num_batches);
  EXPECT_EQ(report.queries.TotalQueries(),
            static_cast<std::uint64_t>(kClientThreads) *
                options.serve.queries_per_client);
  EXPECT_GT(report.inserted + report.deleted, 0u);
  EXPECT_EQ(report.final_epoch, engine.Epoch());
  EXPECT_GT(report.final_epoch, 0u);
  EXPECT_GE(report.patch_seconds_total, report.patch_seconds_max);

  // Freshness: after the serve, the engine answers like a cold engine on
  // the final graph.
  CoreEngine cold(Graph(engine.graph()));
  EXPECT_EQ(engine.Cores().coreness, cold.Cores().coreness);
  EXPECT_EQ(engine.BestCoreSet(Metric::kAverageDegree).scores,
            cold.BestCoreSet(Metric::kAverageDegree).scores);
  EXPECT_EQ(engine.Triangles(), cold.Triangles());
}

TEST(EngineServerTest, ServeChurnMixPerturbModeChurnsExistingEdges) {
  const Graph graph = MakeTestGraph(1, 159);
  const std::uint64_t base_edges = graph.NumEdges();
  CoreEngine engine(graph);
  ChurnMixOptions options;
  options.serve.num_clients = 2;
  options.serve.queries_per_client = 8;
  options.num_batches = 8;
  options.inserts_per_batch = 4;
  options.deletes_per_batch = 4;
  options.perturb_existing = true;

  const ChurnServeReport report = ServeChurnMix(engine, options);
  EXPECT_EQ(report.batches, options.num_batches);
  // Every update targets a genuinely present (delete) or genuinely
  // absent (restore) edge, so nothing is ever rejected.
  EXPECT_EQ(report.rejected, 0u);
  EXPECT_GT(report.deleted, 0u);
  // Restores never outnumber removals, and the graph never grows.
  EXPECT_LE(report.inserted, report.deleted);
  EXPECT_LE(engine.graph().NumEdges(), base_edges);
  EXPECT_EQ(engine.graph().NumEdges(),
            base_edges - (report.deleted - report.inserted));

  CoreEngine cold(Graph(engine.graph()));
  EXPECT_EQ(engine.Cores().coreness, cold.Cores().coreness);
  EXPECT_EQ(engine.Triangles(), cold.Triangles());
}

}  // namespace
}  // namespace corekit
