// CoreEngine caching semantics: every derived artifact is built exactly
// once per engine no matter how many consumers ask for it, cache hits and
// build counters are observable through StageStats, and the pipeline is
// total on degenerate inputs.

#include "corekit/engine/core_engine.h"

#include <string>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/engine/stage_stats.h"
#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using testing::Fig2Graph;

TEST(CoreEngineTest, CoresMatchesFreeFunction) {
  const Graph graph = Fig2Graph();
  CoreEngine engine(graph);
  const CoreDecomposition expected = ComputeCoreDecomposition(graph);
  EXPECT_EQ(engine.Cores().coreness, expected.coreness);
  EXPECT_EQ(engine.Cores().kmax, expected.kmax);
}

TEST(CoreEngineTest, SecondRequestIsACacheHit) {
  const Graph graph = Fig2Graph();
  CoreEngine engine(graph);
  (void)engine.Ordered();
  const StageRecord* order = engine.stats().Find("order");
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(order->builds, 1u);
  EXPECT_EQ(order->hits, 0u);

  (void)engine.Ordered();
  EXPECT_EQ(order->builds, 1u);
  EXPECT_EQ(order->hits, 1u);
  EXPECT_GE(order->bytes, 1u);
}

// The acceptance criterion of the engine layer: a sweep over several
// metrics performs exactly one decomposition and one ordering build.
TEST(CoreEngineTest, TwoMetricSweepBuildsEachArtifactOnce) {
  const Graph graph = GenerateErdosRenyi(200, 800, 7);
  CoreEngine engine(graph);
  (void)engine.BestCoreSet(Metric::kAverageDegree);
  (void)engine.BestCoreSet(Metric::kModularity);
  (void)engine.BestSingleCore(Metric::kAverageDegree);
  (void)engine.BestSingleCore(Metric::kModularity);

  const StageRecord* decompose = engine.stats().Find("decompose");
  const StageRecord* order = engine.stats().Find("order");
  const StageRecord* forest = engine.stats().Find("forest");
  ASSERT_NE(decompose, nullptr);
  ASSERT_NE(order, nullptr);
  ASSERT_NE(forest, nullptr);
  EXPECT_EQ(decompose->builds, 1u);
  EXPECT_EQ(order->builds, 1u);
  EXPECT_EQ(forest->builds, 1u);
  // The later stages found their dependencies in the cache.
  EXPECT_GE(decompose->hits + order->hits + forest->hits, 1u);

  // Each profile was built once; asking again only bumps hits.
  (void)engine.BestCoreSet(Metric::kModularity);
  const StageRecord* coreset =
      engine.stats().Find(CoreEngine::CoreSetStageName(Metric::kModularity));
  ASSERT_NE(coreset, nullptr);
  EXPECT_EQ(coreset->builds, 1u);
  EXPECT_EQ(coreset->hits, 1u);
}

TEST(CoreEngineTest, ProfilesMatchFreeFunctions) {
  const Graph graph = GenerateErdosRenyi(150, 600, 21);
  CoreEngine engine(graph);
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  for (const Metric metric : kAllMetrics) {
    const CoreSetProfile expected_set = FindBestCoreSet(ordered, metric);
    const CoreSetProfile& got_set = engine.BestCoreSet(metric);
    EXPECT_EQ(got_set.best_k, expected_set.best_k) << MetricShortName(metric);
    EXPECT_DOUBLE_EQ(got_set.best_score, expected_set.best_score)
        << MetricShortName(metric);

    const SingleCoreProfile expected_single =
        FindBestSingleCore(ordered, forest, metric);
    const SingleCoreProfile& got_single = engine.BestSingleCore(metric);
    EXPECT_EQ(got_single.best_k, expected_single.best_k)
        << MetricShortName(metric);
    EXPECT_DOUBLE_EQ(got_single.best_score, expected_single.best_score)
        << MetricShortName(metric);
  }
}

TEST(CoreEngineTest, ProfileReferencesStayValidAcrossInserts) {
  const Graph graph = Fig2Graph();
  CoreEngine engine(graph);
  const CoreSetProfile& first = engine.BestCoreSet(Metric::kAverageDegree);
  const VertexId first_best_k = first.best_k;
  // Filling the cache with the other metrics must not move `first`.
  for (const Metric metric : kAllMetrics) {
    (void)engine.BestCoreSet(metric);
    (void)engine.BestSingleCore(metric);
  }
  EXPECT_EQ(&first, &engine.BestCoreSet(Metric::kAverageDegree));
  EXPECT_EQ(first.best_k, first_best_k);
}

TEST(CoreEngineTest, TriangleAndComponentStagesAreCached) {
  const Graph graph = Fig2Graph();
  CoreEngine engine(graph);
  EXPECT_EQ(engine.Triangles(), engine.Triangles());
  EXPECT_EQ(engine.Triplets(), engine.Triplets());
  EXPECT_EQ(engine.Components().num_components,
            engine.Components().num_components);
  for (const char* name : {"triangles", "triplets", "components"}) {
    const StageRecord* record = engine.stats().Find(name);
    ASSERT_NE(record, nullptr) << name;
    EXPECT_EQ(record->builds, 1u) << name;
    EXPECT_EQ(record->hits, 1u) << name;
  }
  // Fig2: two K4 blocks contribute 4 triangles each; the 2-shell wiring
  // v5-v6-v3 and v6-v7-v8 adds two more.
  EXPECT_EQ(engine.Triangles(), 10u);
  EXPECT_EQ(engine.Components().num_components, 1u);
}

TEST(CoreEngineTest, OwningConstructorKeepsGraphAlive) {
  CoreEngine engine(Fig2Graph());
  EXPECT_EQ(engine.graph().NumVertices(), 12u);
  EXPECT_EQ(engine.Cores().kmax, 3u);
  EXPECT_EQ(engine.Ordered().NumVertices(), 12u);
}

TEST(CoreEngineTest, EagerOrderingBuildsUpFront) {
  CoreEngineOptions options;
  options.eager_ordering = true;
  CoreEngine engine(Fig2Graph(), options);
  const StageRecord* decompose = engine.stats().Find("decompose");
  const StageRecord* order = engine.stats().Find("order");
  ASSERT_NE(decompose, nullptr);
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(decompose->builds, 1u);
  EXPECT_EQ(order->builds, 1u);
  // Later requests are pure hits.
  (void)engine.Ordered();
  EXPECT_EQ(order->builds, 1u);
  EXPECT_EQ(order->hits, 1u);
}

TEST(CoreEngineTest, ParallelOptionsMatchSequential) {
  const Graph graph = GenerateErdosRenyi(300, 1500, 33);
  CoreEngineOptions options;
  options.parallel_peel = true;
  options.parallel_triangles = true;
  options.num_threads = 4;
  CoreEngine parallel_engine(graph, options);
  CoreEngine serial_engine(graph);
  EXPECT_EQ(parallel_engine.Cores().coreness, serial_engine.Cores().coreness);
  EXPECT_EQ(parallel_engine.Triangles(), serial_engine.Triangles());
  const StageRecord* decompose = parallel_engine.stats().Find("decompose");
  ASSERT_NE(decompose, nullptr);
  EXPECT_GE(decompose->threads, 1u);
}

TEST(CoreEngineTest, StatsJsonMentionsEveryStage) {
  CoreEngine engine(Fig2Graph());
  (void)engine.BestCoreSet(Metric::kAverageDegree);
  const std::string json = engine.StatsJson();
  EXPECT_NE(json.find("\"decompose\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"order\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"coreset[ad]\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"totals\""), std::string::npos) << json;
}

TEST(CoreEngineTest, ResetStatsClearsCountersButKeepsArtifacts) {
  CoreEngine engine(Fig2Graph());
  (void)engine.Ordered();
  engine.ResetStats();
  EXPECT_EQ(engine.stats().TotalBuilds(), 0u);
  // The artifact itself survives: the next request is a pure hit.
  (void)engine.Ordered();
  const StageRecord* order = engine.stats().Find("order");
  ASSERT_NE(order, nullptr);
  EXPECT_EQ(order->builds, 0u);
  EXPECT_EQ(order->hits, 1u);
}

// Degenerate inputs must flow through the whole pipeline without tripping
// any internal CHECK.
TEST(CoreEngineTest, DegenerateGraphsRunFullPipeline) {
  struct Case {
    const char* name;
    Graph graph;
  };
  GraphBuilder star(6);
  for (VertexId leaf = 1; leaf < 6; ++leaf) star.AddEdge(0, leaf);
  Case cases[] = {
      {"empty", GraphBuilder::FromEdges(0, {})},
      {"isolated", GraphBuilder::FromEdges(5, {})},
      {"single_edge", GraphBuilder::FromEdges(2, {{0, 1}})},
      {"star", star.Build()},
  };
  for (Case& c : cases) {
    SCOPED_TRACE(c.name);
    CoreEngine engine(std::move(c.graph));
    (void)engine.Components();
    (void)engine.Triangles();
    (void)engine.Triplets();
    for (const Metric metric : kAllMetrics) {
      (void)engine.BestCoreSet(metric);
      (void)engine.BestSingleCore(metric);
    }
    EXPECT_FALSE(engine.StatsJson().empty());
    const StageRecord* decompose = engine.stats().Find("decompose");
    ASSERT_NE(decompose, nullptr);
    EXPECT_EQ(decompose->builds, 1u);
  }
}

}  // namespace
}  // namespace corekit
