// Differential + selective-invalidation tests for the mutable engine
// mode (CoreEngine::ApplyBatch).
//
// The correctness bar is bitwise: after any churn trace, the patched
// engine must answer every query exactly as a cold engine built on the
// materialized snapshot would — coreness, kmax, and the full BestCoreSet
// / BestSingleCore profiles.  The invalidation bar is surgical: value
// artifacts whose batch delta is zero keep their published object
// (pointer identity), and post-batch rebuilds on the coreness path are
// patches, not builds.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/engine/core_engine.h"
#include "corekit/gen/generators.h"
#include "corekit/gen/lfr_like.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/random.h"

namespace corekit {
namespace {

struct ChurnCase {
  std::string name;
  Graph graph;
};

std::vector<ChurnCase> ChurnZoo() {
  std::vector<ChurnCase> zoo;
  zoo.push_back({"erdos_renyi", GenerateErdosRenyi(120, 420, 31)});
  zoo.push_back({"barabasi_albert", GenerateBarabasiAlbert(120, 3, 32)});
  LfrLikeParams lfr;
  lfr.num_vertices = 120;
  lfr.min_degree = 4;
  lfr.max_degree = 16;
  lfr.min_community = 15;
  lfr.max_community = 40;
  lfr.mu = 0.25;
  lfr.seed = 33;
  zoo.push_back({"lfr_like", GenerateLfrLike(lfr).graph});
  RmatParams rmat;
  rmat.scale = 7;
  rmat.num_edges = 500;
  rmat.seed = 34;
  zoo.push_back({"rmat", GenerateRmat(rmat)});
  return zoo;
}

// One random churn batch against the current edge set.
void MakeBatch(Rng& rng, VertexId n, EdgeList& present, EdgeList& inserts,
               EdgeList& deletes) {
  inserts.clear();
  deletes.clear();
  for (int i = 0; i < 8; ++i) {
    inserts.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                         static_cast<VertexId>(rng.NextBounded(n)));
  }
  for (int i = 0; i < 3 && !present.empty(); ++i) {
    const std::size_t pick = rng.NextBounded(present.size());
    deletes.push_back(present[pick]);
    present[pick] = present.back();
    present.pop_back();
  }
}

TEST(MutableEngineTest, ChurnTracesMatchColdRebuildBitwise) {
  for (auto& [name, graph] : ChurnZoo()) {
    CoreEngine engine(graph);
    // Warm everything so every artifact exercises its invalidation path.
    (void)engine.Cores();
    (void)engine.Triangles();
    (void)engine.Triplets();
    (void)engine.BestCoreSet(Metric::kAverageDegree);
    (void)engine.BestSingleCore(Metric::kAverageDegree);

    Rng rng(SeedFromString(name));
    EdgeList present = graph.ToEdgeList();
    const VertexId n = graph.NumVertices();
    for (int batch = 0; batch < 6; ++batch) {
      EdgeList inserts;
      EdgeList deletes;
      MakeBatch(rng, n, present, inserts, deletes);
      const CoreEngine::BatchResult result =
          engine.ApplyBatch(inserts, deletes);
      EXPECT_EQ(result.epoch, engine.Epoch()) << name;

      // Cold reference on the materialized snapshot.
      CoreEngine cold(Graph(engine.graph()));
      ASSERT_EQ(engine.Cores().coreness, cold.Cores().coreness)
          << name << " batch " << batch;
      ASSERT_EQ(engine.Cores().kmax, cold.Cores().kmax) << name;
      EXPECT_EQ(engine.Triangles(), cold.Triangles()) << name;
      EXPECT_EQ(engine.Triplets(), cold.Triplets()) << name;
      for (const Metric metric :
           {Metric::kAverageDegree, Metric::kClusteringCoefficient}) {
        const CoreSetProfile& patched = engine.BestCoreSet(metric);
        const CoreSetProfile& rebuilt = cold.BestCoreSet(metric);
        EXPECT_EQ(patched.best_k, rebuilt.best_k) << name;
        EXPECT_EQ(patched.scores, rebuilt.scores) << name;
      }
      const SingleCoreProfile& patched_sc =
          engine.BestSingleCore(Metric::kAverageDegree);
      const SingleCoreProfile& rebuilt_sc =
          cold.BestSingleCore(Metric::kAverageDegree);
      EXPECT_EQ(patched_sc.best_k, rebuilt_sc.best_k) << name;
      EXPECT_EQ(patched_sc.scores, rebuilt_sc.scores) << name;
      present = engine.graph().ToEdgeList();
    }
  }
}

TEST(MutableEngineTest, EpochAdvancesOnlyOnEffectiveBatches) {
  Graph graph = GenerateErdosRenyi(40, 120, 7);
  CoreEngine engine(std::move(graph));
  EXPECT_EQ(engine.Epoch(), 0u);
  const CoreEngine::BatchResult noop =
      engine.ApplyBatch({{0, 0}, {200, 1}}, {});
  EXPECT_EQ(noop.rejected, 2u);
  EXPECT_EQ(noop.inserted, 0u);
  EXPECT_EQ(engine.Epoch(), 0u);

  // A fully-rejected batch must leave every cached artifact published.
  const CoreDecomposition* cores_before = &engine.Cores();
  (void)engine.ApplyBatch({}, {{0, 39}});  // likely absent in sparse ER
  if (engine.Epoch() == 0) {
    EXPECT_EQ(&engine.Cores(), cores_before);
  }

  std::uint64_t expected_epoch = engine.Epoch();
  for (int i = 0; i < 3; ++i) {
    const CoreEngine::BatchResult result =
        engine.ApplyBatch({{static_cast<VertexId>(i), 20}}, {});
    if (result.inserted > 0) ++expected_epoch;
    EXPECT_EQ(engine.Epoch(), expected_epoch);
  }
  EXPECT_GT(engine.Epoch(), 0u);
}

TEST(MutableEngineTest, PreBatchReferencesStayValidAndFrozen) {
  Graph graph = GenerateBarabasiAlbert(80, 3, 5);
  CoreEngine engine(std::move(graph));
  const CoreDecomposition& before = engine.Cores();
  const std::vector<VertexId> frozen = before.coreness;
  const Graph& graph_before = engine.graph();
  const EdgeId edges_before = graph_before.NumEdges();

  EdgeList inserts;
  for (VertexId v = 1; v < 20; ++v) inserts.emplace_back(0, v);
  const CoreEngine::BatchResult result = engine.ApplyBatch(inserts, {});
  ASSERT_GT(result.inserted, 0u);

  // The old references describe epoch 0, unchanged.
  EXPECT_EQ(before.coreness, frozen);
  EXPECT_EQ(graph_before.NumEdges(), edges_before);
  // The new epoch's artifacts are fresh objects.
  EXPECT_NE(&engine.Cores(), &before);
  EXPECT_GT(engine.graph().NumEdges(), edges_before);
}

TEST(MutableEngineTest, ZeroDeltaBatchKeepsCountersWarm) {
  // 0-1 is an edge; 2 and 3 are isolated.  Inserting {2,3} closes no
  // triangle and adds no wedge (both endpoints had degree 0), so both
  // global counters keep their published object.
  Graph graph = GraphBuilder::FromEdges(4, {{0, 1}});
  CoreEngine engine(std::move(graph));
  (void)engine.Triangles();
  (void)engine.Triplets();
  const std::uint64_t triangle_builds =
      engine.stats().Find("triangles")->builds;

  const CoreEngine::BatchResult result = engine.ApplyBatch({{2, 3}}, {});
  ASSERT_EQ(result.inserted, 1u);
  EXPECT_EQ(result.triangle_delta, 0);
  EXPECT_EQ(result.triplet_delta, 0);

  EXPECT_EQ(engine.Triangles(), 0u);
  EXPECT_EQ(engine.Triplets(), 0u);
  // Served warm: no new build, no patch.
  EXPECT_EQ(engine.stats().Find("triangles")->builds, triangle_builds);
  EXPECT_EQ(engine.stats().Find("triangles")->patches, 0u);
  EXPECT_EQ(engine.stats().Find("triplets")->patches, 0u);
}

TEST(MutableEngineTest, NonZeroDeltaPatchesCountersInPlace) {
  // Path 0-1-2 with counters warm; closing the triangle must patch both
  // counters (one patch each, no rebuild).
  Graph graph = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}});
  CoreEngine engine(std::move(graph));
  EXPECT_EQ(engine.Triangles(), 0u);
  EXPECT_EQ(engine.Triplets(), 1u);

  const CoreEngine::BatchResult result = engine.ApplyBatch({{0, 2}}, {});
  ASSERT_EQ(result.inserted, 1u);
  EXPECT_EQ(result.triangle_delta, 1);
  EXPECT_EQ(result.triplet_delta, 2);

  EXPECT_EQ(engine.Triangles(), 1u);
  EXPECT_EQ(engine.Triplets(), 3u);
  EXPECT_EQ(engine.stats().Find("triangles")->builds, 1u);
  EXPECT_EQ(engine.stats().Find("triangles")->patches, 1u);
  EXPECT_EQ(engine.stats().Find("triplets")->builds, 1u);
  EXPECT_EQ(engine.stats().Find("triplets")->patches, 1u);

  // And the patched values survive a differential against cold counts.
  CoreEngine cold(Graph(engine.graph()));
  EXPECT_EQ(engine.Triangles(), cold.Triangles());
  EXPECT_EQ(engine.Triplets(), cold.Triplets());
}

TEST(MutableEngineTest, PostBatchCorenessRebuildIsAPatchNotABuild) {
  Graph graph = GenerateErdosRenyi(60, 200, 13);
  CoreEngine engine(std::move(graph));
  (void)engine.Cores();
  EXPECT_EQ(engine.stats().Find("decompose")->builds, 1u);

  const CoreEngine::BatchResult result = engine.ApplyBatch({{0, 1}}, {});
  const bool inserted = result.inserted > 0;
  (void)engine.Cores();
  if (inserted) {
    EXPECT_EQ(engine.stats().Find("decompose")->builds, 1u);
    EXPECT_EQ(engine.stats().Find("decompose")->patches, 1u);
    // The lazy snapshot materialization lands on "build" as a patch too.
    EXPECT_EQ(engine.stats().Find("build")->patches, 1u);
    EXPECT_EQ(engine.stats().Find("applybatch")->patches, 1u);
  }
}

TEST(MutableEngineTest, StatsJsonGainsTheApplyBatchStage) {
  Graph graph = GenerateErdosRenyi(30, 80, 3);
  CoreEngine engine(std::move(graph));
  EXPECT_EQ(engine.StatsJson().find("applybatch"), std::string::npos);
  (void)engine.ApplyBatch({{0, 1}, {0, 2}}, {});
  EXPECT_NE(engine.StatsJson().find("\"name\":\"applybatch\""),
            std::string::npos);
  EXPECT_NE(engine.StatsJson().find("\"patches\":"), std::string::npos);
}

TEST(MutableEngineTest, BatchResultReportsChurnAccounting) {
  Graph graph = GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 0}});
  CoreEngine engine(std::move(graph));
  const CoreEngine::BatchResult result =
      engine.ApplyBatch({{3, 4}, {3, 3}}, {{0, 1}, {0, 4}});
  EXPECT_EQ(result.inserted, 1u);
  EXPECT_EQ(result.deleted, 1u);
  EXPECT_EQ(result.rejected, 2u);
  EXPECT_GT(result.coreness_changed, 0u);  // the triangle degrades
  EXPECT_GE(result.seconds, 0.0);
  EXPECT_EQ(result.epoch, 1u);
}

}  // namespace
}  // namespace corekit
