// EngineRegistry: LRU eviction under a byte budget, lease pinning, and
// the races between them.
//
// The Concurrent* tests here are in the TSan CI net (regex includes
// "Registry"): K client threads hammer Acquire across more tenants than
// the budget fits, so eviction and re-admission churn constantly while
// queries run.  The contract under fire:
//   * no query ever observes a destructed engine (leases pin);
//   * admission is exactly-once per cold storm (the PR 3 build
//     arithmetic holds per admission epoch);
//   * churned engines (Epoch() > 0) are never evicted — eviction must
//     not roll back acknowledged writes.

#include "corekit/engine/engine_registry.h"

#include <atomic>
#include <thread>
#include <vector>

#include "corekit/gen/generators.h"
#include "corekit/util/random.h"
#include "gtest/gtest.h"
#include "test_util.h"

namespace corekit {
namespace {

using testing::Fig2Graph;

// Enough tenants/budget to force eviction: each Fig2 engine charges the
// same footprint, so a budget of N footprints holds exactly N engines.
// GCC 12 misfires -Wrestrict on `"g" + std::to_string(i)` (PR 105329);
// append instead.
std::string GraphName(std::uint64_t i) {
  std::string name = "g";
  name += std::to_string(i);
  return name;
}

std::uint64_t Fig2Footprint() {
  return EstimateEngineFootprintBytes(Fig2Graph());
}

EngineRegistryOptions BudgetFor(std::uint32_t resident_cap) {
  EngineRegistryOptions options;
  options.memory_budget_bytes = resident_cap * Fig2Footprint();
  return options;
}

void AddTenants(EngineRegistry& registry, std::uint32_t tenants) {
  for (std::uint32_t i = 0; i < tenants; ++i) {
    ASSERT_TRUE(registry.AddGraph(GraphName(i), Fig2Graph()).ok());
  }
}

TEST(EngineRegistryTest, FootprintIsDeterministic) {
  const Graph graph = Fig2Graph();
  EXPECT_EQ(EstimateEngineFootprintBytes(graph),
            EstimateEngineFootprintBytes(Fig2Graph()));
  EXPECT_GT(EstimateEngineFootprintBytes(graph), 0u);
  // Strictly monotone in graph size: a bigger graph charges more.
  const Graph bigger = GenerateBarabasiAlbert(100, 3, 7);
  EXPECT_GT(EstimateEngineFootprintBytes(bigger),
            EstimateEngineFootprintBytes(graph));
}

TEST(EngineRegistryTest, RejectsBadNames) {
  EngineRegistry registry;
  EXPECT_FALSE(registry.AddGraph("", Fig2Graph()).ok());
  ASSERT_TRUE(registry.AddGraph("a", Fig2Graph()).ok());
  EXPECT_FALSE(registry.AddGraph("a", Fig2Graph()).ok());  // duplicate
  EXPECT_FALSE(registry.Acquire("missing").ok());
}

TEST(EngineRegistryTest, AcquireAdmitsOnceThenHits) {
  EngineRegistry registry(BudgetFor(2));
  AddTenants(registry, 2);
  {
    auto lease = registry.Acquire("g0");
    ASSERT_TRUE(lease.ok());
    EXPECT_TRUE(lease->valid());
    EXPECT_EQ(lease->graph_name(), "g0");
    EXPECT_EQ(lease->engine().Cores().kmax, 3u);
  }
  {
    auto lease = registry.Acquire("g0");
    ASSERT_TRUE(lease.ok());
  }
  const auto stats = registry.stats();
  EXPECT_EQ(stats.admissions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(registry.Admissions("g0"), 1u);
  EXPECT_EQ(registry.Admissions("g1"), 0u);
}

TEST(EngineRegistryTest, LruEvictsTheColdestIdleEngine) {
  EngineRegistry registry(BudgetFor(2));
  AddTenants(registry, 3);
  registry.Acquire("g0").value().Release();
  registry.Acquire("g1").value().Release();
  // Touch g0 so g1 is LRU.
  registry.Acquire("g0").value().Release();
  // Admitting g2 must evict g1, not g0.
  registry.Acquire("g2").value().Release();
  EXPECT_TRUE(registry.IsResident("g0"));
  EXPECT_FALSE(registry.IsResident("g1"));
  EXPECT_TRUE(registry.IsResident("g2"));
  EXPECT_EQ(registry.stats().evictions, 1u);
  // Re-acquiring g1 is a fresh admission (cold rebuild), evicting LRU g0.
  registry.Acquire("g1").value().Release();
  EXPECT_EQ(registry.Admissions("g1"), 2u);
  EXPECT_FALSE(registry.IsResident("g0"));
}

TEST(EngineRegistryTest, ResidentBytesTrackAdmissionsAndEvictions) {
  EngineRegistry registry(BudgetFor(2));
  AddTenants(registry, 3);
  registry.Acquire("g0").value().Release();
  EXPECT_EQ(registry.stats().resident_bytes, Fig2Footprint());
  registry.Acquire("g1").value().Release();
  registry.Acquire("g2").value().Release();
  const auto stats = registry.stats();
  EXPECT_EQ(stats.resident_engines, 2u);
  EXPECT_EQ(stats.resident_bytes, 2 * Fig2Footprint());
  EXPECT_LE(stats.resident_bytes, registry.options().memory_budget_bytes);
}

TEST(EngineRegistryTest, LeasedEnginesAreNeverEvicted) {
  EngineRegistry registry(BudgetFor(1));
  AddTenants(registry, 3);
  auto pinned = registry.Acquire("g0");
  ASSERT_TRUE(pinned.ok());
  // g0 is the only resident engine and it is leased: admitting g1 and
  // g2 must overcommit rather than evict it.
  auto second = registry.Acquire("g1");
  auto third = registry.Acquire("g2");
  EXPECT_TRUE(registry.IsResident("g0"));
  EXPECT_GE(registry.stats().overcommits, 1u);
  // The leased engine stays usable throughout.
  EXPECT_EQ(pinned->engine().Cores().kmax, 3u);
  pinned->Release();
  second->Release();
  third->Release();
  // With every lease released, the next *cold* admission is free to
  // evict g0 (warm hits never evict — eviction is admission pressure).
  ASSERT_TRUE(registry.AddGraph("extra", Fig2Graph()).ok());
  registry.Acquire("extra").value().Release();
  EXPECT_FALSE(registry.IsResident("g0"));
}

TEST(EngineRegistryTest, ChurnedEnginesArePinnedAgainstEviction) {
  EngineRegistry registry(BudgetFor(1));
  AddTenants(registry, 2);
  {
    auto lease = registry.Acquire("g0");
    ASSERT_TRUE(lease.ok());
    // Absorb one write batch: epoch moves to 1.
    const auto result = lease->engine().ApplyBatch({{0, 8}}, {});
    EXPECT_EQ(result.epoch, 1u);
  }
  // g0 is idle but churned; admitting g1 must NOT evict it (that would
  // roll back the acknowledged insert on re-admission).
  registry.Acquire("g1").value().Release();
  EXPECT_TRUE(registry.IsResident("g0"));
  EXPECT_GE(registry.stats().overcommits, 1u);
  // And its churn is still there on the warm path.
  auto lease = registry.Acquire("g0");
  EXPECT_EQ(lease->engine().Epoch(), 1u);
  EXPECT_EQ(registry.Admissions("g0"), 1u);  // never rebuilt
  lease->Release();
}

TEST(EngineRegistryTest, LeaseOutlivesEviction) {
  EngineRegistry registry(BudgetFor(1));
  AddTenants(registry, 2);
  auto lease = registry.Acquire("g0");
  ASSERT_TRUE(lease.ok());
  CoreEngine& engine = lease->engine();
  const VertexId kmax_before = engine.Cores().kmax;
  lease->Release();
  // Evict g0 by admitting g1...
  registry.Acquire("g1").value().Release();
  EXPECT_FALSE(registry.IsResident("g0"));
  // ...but a lease taken *before* an eviction keeps its engine alive:
  auto held = registry.Acquire("g0");  // re-admits
  ASSERT_TRUE(held.ok());
  registry.Acquire("g1").value().Release();  // g0 leased: cannot evict
  EXPECT_EQ(held->engine().Cores().kmax, kmax_before);
  held->Release();
}

TEST(EngineRegistryTest, MoveSemanticsTransferThePin) {
  EngineRegistry registry(BudgetFor(2));
  AddTenants(registry, 1);
  auto lease = registry.Acquire("g0");
  EngineRegistry::Lease moved = std::move(lease).value();
  EXPECT_TRUE(moved.valid());
  EngineRegistry::Lease assigned;
  assigned = std::move(moved);
  EXPECT_TRUE(assigned.valid());
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move)
  assigned.Release();
  EXPECT_FALSE(assigned.valid());
  assigned.Release();  // idempotent
}

TEST(EngineRegistryTest, UnboundedBudgetNeverEvicts) {
  EngineRegistry registry;  // budget 0 = unbounded
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(registry.AddGraph(GraphName(i), Fig2Graph()).ok());
    registry.Acquire(GraphName(i)).value().Release();
  }
  const auto stats = registry.stats();
  EXPECT_EQ(stats.admissions, 8u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.resident_engines, 8u);
}

// ---------------------------------------------------------------------------
// Races (TSan-hunted).
// ---------------------------------------------------------------------------

constexpr std::uint32_t kClientThreads = 8;

// K clients × many rounds over more tenants than the budget holds:
// every Acquire may trigger an eviction of an engine another thread
// queried a microsecond ago.  Leases must keep every observed engine
// alive and answering correctly.
TEST(ConcurrentEngineRegistryTest, QueryStormSurvivesLruChurn) {
  EngineRegistry registry(BudgetFor(2));
  AddTenants(registry, 5);
  std::atomic<std::uint64_t> wrong_answers{0};
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (std::uint32_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&registry, &wrong_answers, t] {
      SplitMix64 stream(0xABCDULL + t);
      for (int round = 0; round < 200; ++round) {
        const std::string name = GraphName(stream.Next() % 5);
        auto lease = registry.Acquire(name);
        ASSERT_TRUE(lease.ok());
        // Fig2: kmax is 3 and v1 (id 0) has coreness 3 — any other
        // answer means we read a destructed or half-built engine.
        const CoreDecomposition& cores = lease->engine().Cores();
        if (cores.kmax != 3 || cores.coreness[0] != 3) {
          wrong_answers.fetch_add(1, std::memory_order_relaxed);
        }
        lease->Release();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(wrong_answers.load(), 0u);
  const auto stats = registry.stats();
  // With 5 tenants in 2 slots, the storm must actually churn.
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_EQ(stats.admissions, stats.evictions + stats.resident_engines);
  EXPECT_EQ(stats.hits + stats.admissions, kClientThreads * 200u);
}

// N racers on one evicted tenant elect exactly one admitter; the others
// share the engine it built.  Repeats the PR 3 ColdStorm build
// arithmetic one layer up: builds are exactly-once *per admission*.
TEST(ConcurrentEngineRegistryTest, ColdStormAdmitsExactlyOnce) {
  EngineRegistry registry(BudgetFor(4));
  AddTenants(registry, 1);
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (std::uint32_t t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&registry] {
      auto lease = registry.Acquire("g0");
      ASSERT_TRUE(lease.ok());
      // Touch the client-facing artifacts: inside the one admitted
      // engine, the versioned slots make each stage build exactly once
      // no matter how many racers arrive (the PR 3 arithmetic).
      (void)lease->engine().Cores();
      (void)lease->engine().BestCoreSet(Metric::kAverageDegree);
      lease->Release();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(registry.Admissions("g0"), 1u);
  const auto stats = registry.stats();
  EXPECT_EQ(stats.admissions, 1u);
  EXPECT_EQ(stats.hits, kClientThreads - 1);
  // Per-admission exactly-once build accounting: decompose, order, and
  // the rest were built once by whichever racer touched them first —
  // never once per client.  (The stages the two queries above pull in:
  // each counts one build, and every other toucher is a hit.)
  auto lease = registry.Acquire("g0");
  const std::uint64_t builds = lease->engine().stats().TotalBuilds();
  EXPECT_GT(builds, 0u);
  EXPECT_LT(builds, kClientThreads * 2u);  // not once-per-client
  lease->Release();
}

// The same exactly-once arithmetic across *re-admissions*: evict g0
// between storms via LRU pressure from a second tenant, and assert each
// storm admits exactly once more.
TEST(ConcurrentEngineRegistryTest, ReAdmissionStormsStayExactlyOnce) {
  EngineRegistry registry(BudgetFor(1));
  AddTenants(registry, 2);
  for (std::uint64_t storm = 1; storm <= 3; ++storm) {
    std::vector<std::thread> threads;
    threads.reserve(kClientThreads);
    for (std::uint32_t t = 0; t < kClientThreads; ++t) {
      threads.emplace_back([&registry] {
        auto lease = registry.Acquire("g0");
        ASSERT_TRUE(lease.ok());
        (void)lease->engine().Cores();
        lease->Release();
      });
    }
    for (auto& thread : threads) thread.join();
    EXPECT_EQ(registry.Admissions("g0"), storm);
    // Evict g0: admit the other tenant into the single slot.
    registry.Acquire("g1").value().Release();
    EXPECT_FALSE(registry.IsResident("g0"));
  }
}

// Readers racing a writer across tenants: ApplyBatch pins g0 against
// eviction while LRU churn continues on the other tenants.
TEST(ConcurrentEngineRegistryTest, ChurnPinsSurviveEvictionPressure) {
  EngineRegistry registry(BudgetFor(2));
  AddTenants(registry, 4);
  std::atomic<bool> stop{false};
  std::thread writer([&registry, &stop] {
    std::uint32_t round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      auto lease = registry.Acquire("g0");
      ASSERT_TRUE(lease.ok());
      // Alternate insert/delete of the same bridge edge.
      if (round % 2 == 0) {
        (void)lease->engine().ApplyBatch({{0, 8}}, {});
      } else {
        (void)lease->engine().ApplyBatch({}, {{0, 8}});
      }
      lease->Release();
      ++round;
    }
  });
  std::vector<std::thread> readers;
  for (std::uint32_t t = 0; t < 4; ++t) {
    readers.emplace_back([&registry, t] {
      SplitMix64 stream(0x77AA55ULL * (t + 1));
      for (int round = 0; round < 150; ++round) {
        const std::string name = GraphName(1 + stream.Next() % 3);
        auto lease = registry.Acquire(name);
        ASSERT_TRUE(lease.ok());
        EXPECT_EQ(lease->engine().Cores().kmax, 3u);
        lease->Release();
      }
    });
  }
  for (auto& reader : readers) reader.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  // g0 absorbed writes, so it was admitted exactly once and never
  // evicted — churned engines are pinned.
  EXPECT_EQ(registry.Admissions("g0"), 1u);
  EXPECT_TRUE(registry.IsResident("g0"));
  auto lease = registry.Acquire("g0");
  EXPECT_GT(lease->engine().Epoch(), 0u);
  lease->Release();
}

}  // namespace
}  // namespace corekit
