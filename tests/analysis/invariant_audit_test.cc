// Tests for the COREKIT_AUDIT validators: clean structures pass, and each
// auditor catches a deliberately corrupted structure of its kind.

#include "corekit/analysis/invariant_audit.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/core_forest.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/truss/truss_decomposition.h"
#include "test_util.h"

namespace corekit {
namespace {

using testing::Fig2Graph;
using testing::SmallGraphZoo;
using testing::V;

TEST(InvariantAuditTest, CleanStructuresPassEveryAuditor) {
  for (const auto& [name, graph] : SmallGraphZoo()) {
    SCOPED_TRACE(name);
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    EXPECT_TRUE(AuditCoreDecomposition(graph, cores).ok())
        << AuditCoreDecomposition(graph, cores).Summary();

    const OrderedGraph ordered(graph, cores);
    EXPECT_TRUE(AuditOrderedGraph(graph, cores, ordered).ok())
        << AuditOrderedGraph(graph, cores, ordered).Summary();

    const CoreForest forest(graph, cores);
    EXPECT_TRUE(AuditCoreForest(graph, cores, forest).ok())
        << AuditCoreForest(graph, cores, forest).Summary();

    for (const bool with_triangles : {false, true}) {
      const std::vector<PrimaryValues> per_level =
          ComputeCoreSetPrimaries(ordered, with_triangles);
      EXPECT_TRUE(AuditPrimaryValues(graph, cores, per_level).ok())
          << AuditPrimaryValues(graph, cores, per_level).Summary();
      const std::vector<PrimaryValues> per_node =
          ComputeSingleCorePrimaries(ordered, forest, with_triangles);
      EXPECT_TRUE(AuditSingleCorePrimaryValues(graph, forest, per_node).ok())
          << AuditSingleCorePrimaryValues(graph, forest, per_node).Summary();
    }

    const TrussDecomposition truss = ComputeTrussDecomposition(graph);
    EXPECT_TRUE(AuditTrussDecomposition(graph, truss).ok())
        << AuditTrussDecomposition(graph, truss).Summary();
  }
}

// --- Core decomposition corruptions -----------------------------------------

TEST(InvariantAuditTest, CatchesOverclaimedCoreness) {
  const Graph graph = Fig2Graph();
  CoreDecomposition cores = ComputeCoreDecomposition(graph);
  ++cores.coreness[V(5)];  // v5 is in the 2-shell; claim the 3-core
  const AuditResult audit = AuditCoreDecomposition(graph, cores);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.Summary().find("v4"), std::string::npos) << audit.Summary();
}

TEST(InvariantAuditTest, CatchesUniformlyUnderclaimedCoreness) {
  // All-zero coreness satisfies every *local* condition (membership and
  // the h-index fixpoint); only the peel replay sees it.
  const Graph graph = Fig2Graph();
  CoreDecomposition cores = ComputeCoreDecomposition(graph);
  std::fill(cores.coreness.begin(), cores.coreness.end(), 0);
  cores.kmax = 0;
  const AuditResult audit = AuditCoreDecomposition(graph, cores);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.Summary().find("peel replay"), std::string::npos)
      << audit.Summary();
}

TEST(InvariantAuditTest, CatchesWrongKmax) {
  const Graph graph = Fig2Graph();
  CoreDecomposition cores = ComputeCoreDecomposition(graph);
  cores.kmax = 7;
  EXPECT_FALSE(AuditCoreDecomposition(graph, cores).ok());
}

TEST(InvariantAuditTest, CatchesCorruptedPeelOrder) {
  const Graph graph = Fig2Graph();
  CoreDecomposition cores = ComputeCoreDecomposition(graph);
  cores.peel_order[0] = cores.peel_order[1];  // duplicate: not a permutation
  const AuditResult audit = AuditCoreDecomposition(graph, cores);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.Summary().find("peel_order"), std::string::npos)
      << audit.Summary();
}

// --- Ordered graph corruptions ----------------------------------------------

TEST(InvariantAuditTest, CatchesOrderingBuiltFromStaleDecomposition) {
  // The index was built from a decomposition that has since drifted: the
  // position tags and shell boundaries no longer match the live coreness.
  const Graph graph = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  CoreDecomposition drifted = cores;
  drifted.coreness[V(7)] = 1;  // v7 actually has coreness 2
  const OrderedGraph stale(graph, drifted);
  const AuditResult audit = AuditOrderedGraph(graph, cores, stale);
  EXPECT_FALSE(audit.ok());
}

TEST(InvariantAuditTest, CatchesOrderingForDifferentGraph) {
  const Graph graph = Fig2Graph();
  const Graph other = GenerateErdosRenyi(12, 30, 99);
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const CoreDecomposition other_cores = ComputeCoreDecomposition(other);
  const OrderedGraph ordered(other, other_cores);
  EXPECT_FALSE(AuditOrderedGraph(graph, cores, ordered).ok());
}

// --- Core forest corruptions ------------------------------------------------

TEST(InvariantAuditTest, CatchesForestLevelMismatch) {
  const Graph graph = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  CoreDecomposition drifted = cores;
  drifted.coreness[V(1)] = 1;  // v1 sits in a coreness-3 forest node
  const CoreForest forest(graph, cores);
  const AuditResult audit = AuditCoreForest(graph, drifted, forest);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.Summary().find("node"), std::string::npos)
      << audit.Summary();
}

TEST(InvariantAuditTest, CatchesForestOfDifferentGraph) {
  // A forest of one component cannot describe a two-component graph.
  const Graph graph = Fig2Graph();
  GraphBuilder builder(12);
  for (const auto& [u, v] : graph.ToEdgeList()) {
    if (u != V(8) && v != V(8)) builder.AddEdge(u, v);  // cut around v8
  }
  const Graph cut = builder.Build();
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const CoreForest forest(graph, cores);
  const CoreDecomposition cut_cores = ComputeCoreDecomposition(cut);
  EXPECT_FALSE(AuditCoreForest(cut, cut_cores, forest).ok());
}

// --- Primary value corruptions ----------------------------------------------

TEST(InvariantAuditTest, CatchesDriftedCoreSetPrimaries) {
  const Graph graph = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  std::vector<PrimaryValues> per_level = ComputeCoreSetPrimaries(ordered, true);

  auto expect_caught = [&](const char* what) {
    const AuditResult audit = AuditPrimaryValues(graph, cores, per_level);
    EXPECT_FALSE(audit.ok()) << "corruption not caught: " << what;
  };
  std::vector<PrimaryValues> clean = per_level;

  ++per_level[2].num_vertices;
  expect_caught("n(C_2)");
  per_level = clean;

  per_level[1].internal_edges_x2 += 2;
  expect_caught("m(C_1)");
  per_level = clean;

  ++per_level[1].internal_edges_x2;  // odd doubled count
  expect_caught("odd 2m");
  per_level = clean;

  --per_level[3].boundary_edges;
  expect_caught("b(C_3)");
  per_level = clean;

  ++per_level[0].triangles;
  expect_caught("D(C_0)");
  per_level = clean;

  ++per_level[2].triplets;
  expect_caught("t(C_2)");
}

TEST(InvariantAuditTest, CatchesDriftedSingleCorePrimaries) {
  const Graph graph = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  std::vector<PrimaryValues> per_node =
      ComputeSingleCorePrimaries(ordered, forest, true);
  ASSERT_FALSE(per_node.empty());
  ASSERT_TRUE(AuditSingleCorePrimaryValues(graph, forest, per_node).ok());

  ++per_node.front().boundary_edges;
  EXPECT_FALSE(AuditSingleCorePrimaryValues(graph, forest, per_node).ok());
}

// --- Truss corruptions ------------------------------------------------------

TEST(InvariantAuditTest, CatchesOverclaimedTrussNumber) {
  const Graph graph = Fig2Graph();
  TrussDecomposition truss = ComputeTrussDecomposition(graph);
  ++truss.truss[0];
  truss.tmax = std::max(truss.tmax, truss.truss[0]);
  EXPECT_FALSE(AuditTrussDecomposition(graph, truss).ok());
}

TEST(InvariantAuditTest, CatchesUnderclaimedTrussNumber) {
  // Lowering every truss number to 2 passes the membership check (support
  // >= 0 is vacuous); the naive-oracle replay catches it.
  const Graph graph = Fig2Graph();
  TrussDecomposition truss = ComputeTrussDecomposition(graph);
  std::fill(truss.truss.begin(), truss.truss.end(), 2);
  truss.tmax = 2;
  const AuditResult audit = AuditTrussDecomposition(graph, truss);
  EXPECT_FALSE(audit.ok());
  EXPECT_NE(audit.Summary().find("naive oracle"), std::string::npos)
      << audit.Summary();
}

TEST(InvariantAuditTest, CatchesWrongTmax) {
  const Graph graph = Fig2Graph();
  TrussDecomposition truss = ComputeTrussDecomposition(graph);
  truss.tmax = 99;
  EXPECT_FALSE(AuditTrussDecomposition(graph, truss).ok());
}

// --- Report shape ------------------------------------------------------------

TEST(InvariantAuditTest, MassCorruptionIsCappedButFullyCounted) {
  const Graph graph = GenerateErdosRenyi(60, 90, 11);
  CoreDecomposition cores = ComputeCoreDecomposition(graph);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    cores.coreness[v] += 1 + v % 3;
  }
  const AuditResult audit = AuditCoreDecomposition(graph, cores);
  ASSERT_FALSE(audit.ok());
  EXPECT_EQ(audit.failures.size(), AuditResult::kMaxReportedFailures);
  EXPECT_GT(audit.total_violations, audit.failures.size());
  EXPECT_NE(audit.Summary().find("more violations"), std::string::npos);
}

TEST(InvariantAuditTest, EmptyGraphPasses) {
  const Graph graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  EXPECT_TRUE(AuditCoreDecomposition(graph, cores).ok());
  const OrderedGraph ordered(graph, cores);
  EXPECT_TRUE(AuditOrderedGraph(graph, cores, ordered).ok());
  const CoreForest forest(graph, cores);
  EXPECT_TRUE(AuditCoreForest(graph, cores, forest).ok());
  const TrussDecomposition truss = ComputeTrussDecomposition(graph);
  EXPECT_TRUE(AuditTrussDecomposition(graph, truss).ok());
}

}  // namespace
}  // namespace corekit
