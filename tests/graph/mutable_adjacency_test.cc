#include "corekit/graph/mutable_adjacency.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/random.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

// Reference model: the current edge set as a set of ordered pairs.
using EdgeSet = std::set<std::pair<VertexId, VertexId>>;

EdgeSet ToEdgeSet(const Graph& graph) {
  EdgeSet edges;
  for (const auto& [u, v] : graph.ToEdgeList()) {
    edges.emplace(std::min(u, v), std::max(u, v));
  }
  return edges;
}

Graph ModelGraph(VertexId n, const EdgeSet& edges) {
  GraphBuilder builder(n);
  for (const auto& [u, v] : edges) builder.AddEdge(u, v);
  return builder.Build();
}

// The full equivalence check: degrees, neighbor lists (via both the
// iterator and the copying accessor), membership, and the materialized
// CSR must all agree with the reference graph.
void ExpectMatchesModel(const MutableAdjacency& adj, VertexId n,
                        const EdgeSet& edges, const char* context) {
  const Graph model = ModelGraph(n, edges);
  ASSERT_EQ(adj.NumVertices(), model.NumVertices()) << context;
  ASSERT_EQ(adj.NumEdges(), model.NumEdges()) << context;
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_EQ(adj.Degree(v), model.Degree(v)) << context << " v=" << v;
    std::vector<VertexId> iterated;
    adj.ForEachNeighbor(v, [&](VertexId u) { iterated.push_back(u); });
    const auto span = model.Neighbors(v);
    const std::vector<VertexId> expected(span.begin(), span.end());
    EXPECT_EQ(iterated, expected) << context << " v=" << v;
    EXPECT_EQ(adj.Neighbors(v), expected) << context << " v=" << v;
    EXPECT_TRUE(std::is_sorted(iterated.begin(), iterated.end()))
        << context << " v=" << v;
  }
  EXPECT_EQ(ToEdgeSet(adj.Materialize()), edges) << context;
}

TEST(MutableAdjacencyTest, EmptyGraphBasics) {
  MutableAdjacency adj(4);
  EXPECT_EQ(adj.NumVertices(), 4u);
  EXPECT_EQ(adj.NumEdges(), 0u);
  EXPECT_FALSE(adj.HasEdge(0, 1));
  EXPECT_TRUE(adj.AddEdge(0, 1));
  EXPECT_TRUE(adj.HasEdge(1, 0));
  EXPECT_EQ(adj.Degree(0), 1u);
  EXPECT_EQ(adj.NumEdges(), 1u);
}

TEST(MutableAdjacencyTest, RejectsSelfLoopsAndDuplicates) {
  MutableAdjacency adj(3);
  EXPECT_FALSE(adj.AddEdge(1, 1));
  EXPECT_TRUE(adj.AddEdge(0, 1));
  EXPECT_FALSE(adj.AddEdge(0, 1));
  EXPECT_FALSE(adj.AddEdge(1, 0));
  EXPECT_FALSE(adj.RemoveEdge(0, 2));
  EXPECT_FALSE(adj.RemoveEdge(2, 2));
  EXPECT_EQ(adj.NumEdges(), 1u);
  EXPECT_EQ(adj.DeltaEntries(), 2u);
}

TEST(MutableAdjacencyTest, ViewOverBaseStartsIdentical) {
  const Graph base = Fig2Graph();
  MutableAdjacency adj(base);
  ExpectMatchesModel(adj, base.NumVertices(), ToEdgeSet(base), "fresh view");
}

TEST(MutableAdjacencyTest, ReAddOfRemovedBaseEdgeDropsTombstones) {
  const Graph base = Fig2Graph();
  MutableAdjacency adj(base);
  const auto [u, v] = base.ToEdgeList().front();
  ASSERT_TRUE(adj.RemoveEdge(u, v));
  EXPECT_EQ(adj.DeltaEntries(), 2u);
  ASSERT_TRUE(adj.AddEdge(u, v));
  // The tombstone pair is erased rather than shadowed by an added_ pair.
  EXPECT_EQ(adj.DeltaEntries(), 0u);
  ExpectMatchesModel(adj, base.NumVertices(), ToEdgeSet(base),
                     "remove + re-add round trip");
}

TEST(MutableAdjacencyTest, CommonNeighborCountMatchesBrute) {
  const Graph base = GenerateErdosRenyi(40, 160, 7);
  MutableAdjacency adj(base);
  Rng rng(99);
  for (int i = 0; i < 60; ++i) {
    const auto u = static_cast<VertexId>(rng.NextBounded(40));
    const auto v = static_cast<VertexId>(rng.NextBounded(40));
    if (u == v) continue;
    const std::vector<VertexId> nu = adj.Neighbors(u);
    const std::vector<VertexId> nv = adj.Neighbors(v);
    std::vector<VertexId> common;
    std::set_intersection(nu.begin(), nu.end(), nv.begin(), nv.end(),
                          std::back_inserter(common));
    EXPECT_EQ(adj.CommonNeighborCount(u, v), common.size())
        << "u=" << u << " v=" << v;
    if (i % 2 == 0) {
      adj.HasEdge(u, v) ? adj.RemoveEdge(u, v) : adj.AddEdge(u, v);
    }
  }
}

TEST(MutableAdjacencyTest, CompactPreservesTheEdgeSet) {
  const Graph base = GenerateErdosRenyi(30, 90, 3);
  MutableAdjacency adj(base);
  EdgeSet edges = ToEdgeSet(base);
  Rng rng(17);
  for (int i = 0; i < 120; ++i) {
    const auto u = static_cast<VertexId>(rng.NextBounded(30));
    const auto v = static_cast<VertexId>(rng.NextBounded(30));
    if (u == v) continue;
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (edges.count(key)) {
      ASSERT_TRUE(adj.RemoveEdge(u, v));
      edges.erase(key);
    } else {
      ASSERT_TRUE(adj.AddEdge(u, v));
      edges.insert(key);
    }
  }
  adj.Compact();
  EXPECT_EQ(adj.DeltaEntries(), 0u);
  ExpectMatchesModel(adj, 30, edges, "after explicit compact");
  // The compacted view must keep absorbing edits (owned base path).
  if (edges.count({0, 1})) {
    ASSERT_TRUE(adj.RemoveEdge(0, 1));
    edges.erase({0, 1});
  } else {
    ASSERT_TRUE(adj.AddEdge(0, 1));
    edges.insert({0, 1});
  }
  ExpectMatchesModel(adj, 30, edges, "edit after compact");
}

// Randomized differential: a long random edit script over a base CSR,
// validated against the set model at every step boundary.  Long enough
// that the auto-compaction threshold trips at least once.
TEST(MutableAdjacencyTest, RandomEditScriptMatchesModel) {
  const VertexId n = 24;
  const Graph base = GenerateErdosRenyi(n, 60, 5);
  MutableAdjacency adj(base);
  EdgeSet edges = ToEdgeSet(base);
  Rng rng(1234);
  for (int step = 0; step < 500; ++step) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    if (u == v) {
      EXPECT_FALSE(adj.AddEdge(u, v));
      continue;
    }
    const auto key = std::make_pair(std::min(u, v), std::max(u, v));
    if (edges.count(key)) {
      if (rng.NextBool(0.5)) {
        ASSERT_TRUE(adj.RemoveEdge(u, v));
        edges.erase(key);
      } else {
        EXPECT_FALSE(adj.AddEdge(u, v));  // duplicate: no state change
      }
    } else {
      ASSERT_TRUE(adj.AddEdge(u, v));
      edges.insert(key);
    }
    if (step % 50 == 49) {
      ExpectMatchesModel(adj, n, edges,
                         ("step " + std::to_string(step)).c_str());
    }
  }
  ExpectMatchesModel(adj, n, edges, "final state");
}

}  // namespace
}  // namespace corekit
