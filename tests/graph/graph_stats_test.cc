#include "corekit/graph/graph_stats.h"

#include <numeric>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(GraphStatsTest, Fig2Statistics) {
  const GraphStats stats = ComputeGraphStats(corekit::testing::Fig2Graph());
  EXPECT_EQ(stats.num_vertices, 12u);
  EXPECT_EQ(stats.num_edges, 19u);
  EXPECT_NEAR(stats.average_degree, 2.0 * 19 / 12, 1e-12);
  EXPECT_EQ(stats.degeneracy, 3u);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.largest_component_size, 12u);
  EXPECT_EQ(stats.min_degree, 2u);
  EXPECT_EQ(stats.max_degree, 5u);  // v3: {v1, v2, v4, v5, v6}
}

TEST(GraphStatsTest, EmptyGraph) {
  const GraphStats stats = ComputeGraphStats(Graph());
  EXPECT_EQ(stats.num_vertices, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
  EXPECT_EQ(stats.degeneracy, 0u);
}

TEST(GraphStatsTest, EdgelessGraph) {
  const GraphStats stats = ComputeGraphStats(GraphBuilder::FromEdges(7, {}));
  EXPECT_EQ(stats.num_vertices, 7u);
  EXPECT_EQ(stats.degeneracy, 0u);
  EXPECT_EQ(stats.num_components, 7u);
  EXPECT_EQ(stats.largest_component_size, 1u);
}

TEST(GraphStatsTest, DegeneracyMatchesCoreDecompositionKmax) {
  // graph_stats keeps its own peel (the graph layer must not include
  // core/); pin it to the full decomposition's kmax across the zoo.
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const GraphStats stats = ComputeGraphStats(graph);
    EXPECT_EQ(stats.degeneracy, ComputeCoreDecomposition(graph).kmax) << name;
  }
}

TEST(DegreeHistogramTest, CountsMatchDegrees) {
  // Star on 5 vertices: center degree 4, leaves degree 1.
  const Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}});
  const auto hist = DegreeHistogram(g);
  ASSERT_EQ(hist.size(), 5u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 4u);
  EXPECT_EQ(hist[4], 1u);
}

TEST(DegreeHistogramTest, SumsToVertexCount) {
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    const auto hist = DegreeHistogram(graph);
    const EdgeId total = std::accumulate(hist.begin(), hist.end(), EdgeId{0});
    EXPECT_EQ(total, graph.NumVertices()) << name;
  }
}

TEST(DegreeHistogramTest, WeightedSumIsTwiceEdges) {
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    const auto hist = DegreeHistogram(graph);
    EdgeId weighted = 0;
    for (std::size_t d = 0; d < hist.size(); ++d) weighted += d * hist[d];
    EXPECT_EQ(weighted, 2 * graph.NumEdges()) << name;
  }
}

}  // namespace
}  // namespace corekit
