#include "corekit/graph/subgraph.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(SubgraphTest, ExtractByVertexList) {
  // Triangle 0-1-2 plus pendant 3.
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  const InducedSubgraph sub = ExtractInducedSubgraph(g, std::vector<VertexId>{0, 1, 2});
  EXPECT_EQ(sub.graph.NumVertices(), 3u);
  EXPECT_EQ(sub.graph.NumEdges(), 3u);
  EXPECT_EQ(sub.to_parent, (std::vector<VertexId>{0, 1, 2}));
}

TEST(SubgraphTest, LocalIdsFollowInputOrder) {
  const Graph g = GraphBuilder::FromEdges(5, {{1, 4}, {4, 2}});
  const InducedSubgraph sub = ExtractInducedSubgraph(g, std::vector<VertexId>{4, 1});
  // local 0 = parent 4, local 1 = parent 1, one edge between them.
  EXPECT_EQ(sub.graph.NumVertices(), 2u);
  EXPECT_EQ(sub.graph.NumEdges(), 1u);
  EXPECT_TRUE(sub.graph.HasEdge(0, 1));
  EXPECT_EQ(sub.to_parent[0], 4u);
  EXPECT_EQ(sub.to_parent[1], 1u);
}

TEST(SubgraphTest, EdgesOutsideSubsetDropped) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const InducedSubgraph sub = ExtractInducedSubgraph(g, std::vector<VertexId>{0, 2});
  EXPECT_EQ(sub.graph.NumEdges(), 0u);
}

TEST(SubgraphTest, MaskOverloadKeepsIdOrder) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 3}, {1, 2}});
  const InducedSubgraph sub =
      ExtractInducedSubgraph(g, std::vector<bool>{true, false, true, true});
  EXPECT_EQ(sub.to_parent, (std::vector<VertexId>{0, 2, 3}));
  EXPECT_EQ(sub.graph.NumEdges(), 1u);  // only 0-3 survives
  EXPECT_TRUE(sub.graph.HasEdge(0, 2));  // local ids of parents 0 and 3
}

TEST(SubgraphTest, EmptySelection) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  const InducedSubgraph sub = ExtractInducedSubgraph(g, std::vector<VertexId>{});
  EXPECT_EQ(sub.graph.NumVertices(), 0u);
}

TEST(SubgraphTest, FullSelectionIsIsomorphicCopy) {
  const Graph g = corekit::testing::Fig2Graph();
  std::vector<VertexId> all(g.NumVertices());
  for (VertexId v = 0; v < g.NumVertices(); ++v) all[v] = v;
  const InducedSubgraph sub = ExtractInducedSubgraph(g, all);
  EXPECT_EQ(sub.graph.NumEdges(), g.NumEdges());
  EXPECT_TRUE(std::ranges::equal(sub.graph.Offsets(), g.Offsets()));
  EXPECT_TRUE(std::ranges::equal(sub.graph.NeighborArray(), g.NeighborArray()));
}

TEST(SubgraphDeathTest, DuplicateVertexAborts) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  EXPECT_DEATH(
      { ExtractInducedSubgraph(g, std::vector<VertexId>{0, 0}); },
      "duplicate vertex");
}

}  // namespace
}  // namespace corekit
