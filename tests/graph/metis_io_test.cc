#include "corekit/graph/metis_io.h"

#include <algorithm>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/gen/generators.h"
#include "test_util.h"

namespace corekit {
namespace {

class MetisIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/corekit_metis_" + name;
  }
  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream(path) << content;
  }
};

TEST_F(MetisIoTest, ReadsTriangle) {
  const std::string path = TempPath("triangle.graph");
  WriteFile(path,
            "3 3\n"
            "2 3\n"
            "1 3\n"
            "1 2\n");
  const auto result = ReadMetisGraph(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumVertices(), 3u);
  EXPECT_EQ(result->NumEdges(), 3u);
  EXPECT_TRUE(result->HasEdge(0, 1));
  EXPECT_TRUE(result->HasEdge(1, 2));
  EXPECT_TRUE(result->HasEdge(0, 2));
}

TEST_F(MetisIoTest, CommentsAndEmptyAdjacencyLines) {
  const std::string path = TempPath("comments.graph");
  WriteFile(path,
            "% a comment\n"
            "4 2\n"
            "2\n"
            "1\n"
            "% interleaved comment\n"
            "4\n"
            "3\n");
  const auto result = ReadMetisGraph(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumVertices(), 4u);
  EXPECT_EQ(result->NumEdges(), 2u);
}

TEST_F(MetisIoTest, IsolatedVertexHasBlankLine) {
  const std::string path = TempPath("isolated.graph");
  WriteFile(path, "3 1\n2\n1\n\n");
  const auto result = ReadMetisGraph(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumVertices(), 3u);
  EXPECT_EQ(result->Degree(2), 0u);
}

TEST_F(MetisIoTest, AsymmetricAdjacencySymmetrized) {
  const std::string path = TempPath("asym.graph");
  WriteFile(path, "2 1\n2\n\n");  // vertex 2 omits the back-reference
  const auto result = ReadMetisGraph(path);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->HasEdge(0, 1));
  EXPECT_TRUE(result->HasEdge(1, 0));
}

TEST_F(MetisIoTest, MissingFile) {
  const auto result = ReadMetisGraph(TempPath("missing.graph"));
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(MetisIoTest, TruncatedFile) {
  const std::string path = TempPath("short.graph");
  WriteFile(path, "3 3\n2 3\n");
  const auto result = ReadMetisGraph(path);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(MetisIoTest, OutOfRangeNeighbor) {
  const std::string path = TempPath("range.graph");
  WriteFile(path, "2 1\n3\n\n");
  const auto result = ReadMetisGraph(path);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(MetisIoTest, ZeroNeighborRejected) {
  // METIS ids are 1-based; a 0 is always malformed.
  const std::string path = TempPath("zero.graph");
  WriteFile(path, "2 1\n0\n\n");
  const auto result = ReadMetisGraph(path);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(MetisIoTest, WeightedFormatUnimplemented) {
  const std::string path = TempPath("weighted.graph");
  WriteFile(path, "2 1 1\n2 5\n1 5\n");
  const auto result = ReadMetisGraph(path);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(MetisIoTest, RoundTripPreservesStructure) {
  const Graph original = GenerateWattsStrogatz(120, 3, 0.15, 9);
  const std::string path = TempPath("roundtrip.graph");
  ASSERT_TRUE(WriteMetisGraph(original, path).ok());
  const auto reloaded = ReadMetisGraph(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->NumVertices(), original.NumVertices());
  EXPECT_EQ(reloaded->NumEdges(), original.NumEdges());
  EXPECT_TRUE(std::ranges::equal(reloaded->Offsets(), original.Offsets()));
  EXPECT_TRUE(std::ranges::equal(reloaded->NeighborArray(), original.NeighborArray()));
}

TEST_F(MetisIoTest, RoundTripPreservesCoreness) {
  const Graph original = corekit::testing::Fig2Graph();
  const std::string path = TempPath("fig2.graph");
  ASSERT_TRUE(WriteMetisGraph(original, path).ok());
  const auto reloaded = ReadMetisGraph(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(ComputeCoreDecomposition(*reloaded).coreness,
            ComputeCoreDecomposition(original).coreness);
}

}  // namespace
}  // namespace corekit
