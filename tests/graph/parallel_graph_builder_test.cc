// Differential tests for the parallel CSR builder
// (corekit/graph/parallel_graph_builder.h): BuildGraphParallel must be
// bitwise identical to GraphBuilder::FromEdges — same offsets array,
// same neighbor array — on every input, since downstream stages
// (ordering, triangle scoring) key on exact adjacency layout.

#include "corekit/graph/parallel_graph_builder.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/random.h"
#include "corekit/util/thread_pool.h"

namespace corekit {
namespace {

void ExpectBitwiseEqual(VertexId num_vertices, const EdgeList& edges) {
  const Graph serial = GraphBuilder::FromEdges(num_vertices, edges);
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const Graph parallel = BuildGraphParallel(num_vertices, edges, pool);
    EXPECT_EQ(parallel.NumVertices(), serial.NumVertices());
    EXPECT_EQ(parallel.NumEdges(), serial.NumEdges());
    EXPECT_TRUE(std::ranges::equal(parallel.Offsets(), serial.Offsets()));
    EXPECT_TRUE(std::ranges::equal(parallel.NeighborArray(), serial.NeighborArray()));
  }
}

TEST(ParallelGraphBuilderTest, EmptyGraph) {
  ExpectBitwiseEqual(0, {});
  ExpectBitwiseEqual(5, {});
}

TEST(ParallelGraphBuilderTest, SmallTriangle) {
  ExpectBitwiseEqual(3, {{0, 1}, {1, 2}, {2, 0}});
}

TEST(ParallelGraphBuilderTest, DuplicatesAndSelfLoopsNormalizeIdentically) {
  ExpectBitwiseEqual(6, {{0, 1}, {1, 0}, {0, 1}, {2, 2}, {3, 4}, {4, 3},
                         {5, 5}, {0, 1}});
}

TEST(ParallelGraphBuilderTest, IsolatedVerticesKeepEmptyRanges) {
  ExpectBitwiseEqual(10, {{2, 7}});
}

TEST(ParallelGraphBuilderTest, StarAndPathShapes) {
  EdgeList star;
  for (VertexId leaf = 1; leaf < 50; ++leaf) star.push_back({0, leaf});
  ExpectBitwiseEqual(50, star);

  EdgeList path;
  for (VertexId v = 0; v + 1 < 64; ++v) path.push_back({v, v + 1});
  ExpectBitwiseEqual(64, path);
}

TEST(ParallelGraphBuilderTest, RandomEdgeListsWithNoise) {
  // Random multigraph-ish inputs (duplicates, self-loops, both edge
  // orientations) across sizes that don't divide evenly by the thread
  // count.
  Rng rng(99);
  for (const VertexId n : {VertexId{17}, VertexId{101}, VertexId{1000}}) {
    EdgeList edges;
    const std::size_t target = static_cast<std::size_t>(n) * 4;
    for (std::size_t i = 0; i < target; ++i) {
      const auto u = static_cast<VertexId>(rng.NextBounded(n));
      const auto v = static_cast<VertexId>(rng.NextBounded(n));
      edges.push_back({u, v});
      if (rng.NextBounded(4) == 0) edges.push_back({v, u});  // duplicate
    }
    SCOPED_TRACE("n=" + std::to_string(n));
    ExpectBitwiseEqual(n, edges);
  }
}

TEST(ParallelGraphBuilderTest, GeneratedGraphEdgesRoundTrip) {
  // Rebuilding a generator's CSR from its own edge dump must reproduce
  // the CSR exactly, serial or parallel.
  const Graph original = GenerateBarabasiAlbert(500, 5, 21);
  EdgeList edges;
  for (VertexId u = 0; u < original.NumVertices(); ++u) {
    for (const VertexId v : original.Neighbors(u)) {
      if (u < v) edges.push_back({u, v});
    }
  }
  ExpectBitwiseEqual(original.NumVertices(), edges);
  ThreadPool pool(4);
  const Graph rebuilt =
      BuildGraphParallel(original.NumVertices(), edges, pool);
  EXPECT_TRUE(std::ranges::equal(rebuilt.Offsets(), original.Offsets()));
  EXPECT_TRUE(std::ranges::equal(rebuilt.NeighborArray(), original.NeighborArray()));
}

}  // namespace
}  // namespace corekit
