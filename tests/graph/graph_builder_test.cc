#include "corekit/graph/graph_builder.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/graph.h"
#include "corekit/util/random.h"

namespace corekit {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.AverageDegree(), 0.0);
}

TEST(GraphBuilderTest, NoEdges) {
  const Graph g = GraphBuilder::FromEdges(5, {});
  EXPECT_EQ(g.NumVertices(), 5u);
  EXPECT_EQ(g.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.Degree(v), 0u);
}

TEST(GraphBuilderTest, SingleEdgeBothDirectionsVisible) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 2}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_TRUE(g.HasEdge(0, 2));
  EXPECT_TRUE(g.HasEdge(2, 0));
  EXPECT_FALSE(g.HasEdge(0, 1));
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 0u);
  EXPECT_EQ(g.Degree(2), 1u);
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  const Graph g = GraphBuilder::FromEdges(3, {{1, 1}, {0, 1}, {2, 2}});
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, DuplicateAndReversedEdgesDeduped) {
  const Graph g =
      GraphBuilder::FromEdges(4, {{0, 1}, {1, 0}, {0, 1}, {2, 3}, {3, 2}});
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphBuilderTest, NeighborsSortedAscending) {
  const Graph g =
      GraphBuilder::FromEdges(6, {{3, 5}, {3, 1}, {3, 4}, {3, 0}, {3, 2}});
  const auto nbrs = g.Neighbors(3);
  ASSERT_EQ(nbrs.size(), 5u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
}

TEST(GraphBuilderTest, BuilderReusableAfterBuild) {
  GraphBuilder builder(3);
  builder.AddEdge(0, 1);
  const Graph g1 = builder.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  EXPECT_EQ(builder.NumPendingEdges(), 0u);
  builder.AddEdge(1, 2);
  const Graph g2 = builder.Build();
  EXPECT_EQ(g2.NumEdges(), 1u);
  EXPECT_TRUE(g2.HasEdge(1, 2));
  EXPECT_FALSE(g2.HasEdge(0, 1));
}

TEST(GraphBuilderTest, ToEdgeListRoundTrips) {
  const EdgeList edges{{0, 3}, {1, 2}, {2, 3}, {0, 1}};
  const Graph g = GraphBuilder::FromEdges(4, edges);
  EdgeList out = g.ToEdgeList();
  EdgeList expected = edges;
  for (auto& [u, v] : expected) {
    if (u > v) std::swap(u, v);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(out, expected);
}

TEST(GraphBuilderTest, CompleteGraph) {
  GraphBuilder builder(6);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(u, v);
  }
  const Graph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.Degree(v), 5u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 5.0);
}

TEST(GraphBuilderTest, RandomMultisetNormalization) {
  // Feed a messy random multigraph; the result must be simple and must
  // contain exactly the distinct non-loop pairs.
  Rng rng(321);
  const VertexId n = 30;
  EdgeList raw;
  std::vector<std::vector<bool>> expected(
      n, std::vector<bool>(n, false));
  for (int i = 0; i < 500; ++i) {
    const auto u = static_cast<VertexId>(rng.NextBounded(n));
    const auto v = static_cast<VertexId>(rng.NextBounded(n));
    raw.emplace_back(u, v);
    if (u != v) {
      expected[u][v] = true;
      expected[v][u] = true;
    }
  }
  const Graph g = GraphBuilder::FromEdges(n, raw);
  EdgeId expected_edges = 0;
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      EXPECT_EQ(g.HasEdge(u, v), expected[u][v])
          << "pair (" << u << "," << v << ")";
      expected_edges += expected[u][v] ? 1u : 0u;
    }
  }
  EXPECT_EQ(g.NumEdges(), expected_edges);
}

TEST(GraphTest, NeighborSpanMatchesDegree) {
  const Graph g = GraphBuilder::FromEdges(5, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.Neighbors(0).size(), g.Degree(0));
  EXPECT_EQ(g.Neighbors(4).size(), 0u);
}

}  // namespace
}  // namespace corekit
