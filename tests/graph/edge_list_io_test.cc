#include "corekit/graph/edge_list_io.h"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"

namespace corekit {
namespace {

class EdgeListIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/corekit_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(EdgeListIoTest, ReadSimpleEdgeList) {
  const std::string path = TempPath("simple.txt");
  WriteFile(path, "0 1\n1 2\n2 0\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumVertices(), 3u);
  EXPECT_EQ(result->NumEdges(), 3u);
}

TEST_F(EdgeListIoTest, CommentsAndBlankLinesSkipped) {
  const std::string path = TempPath("comments.txt");
  WriteFile(path,
            "# SNAP header comment\n"
            "% matrix-market style comment\n"
            "\n"
            "  \t\n"
            "0 1\n"
            "# trailing comment\n"
            "1 2\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumEdges(), 2u);
}

TEST_F(EdgeListIoTest, SparseIdsRelabeledDensely) {
  const std::string path = TempPath("sparse.txt");
  WriteFile(path, "1000000 42\n42 7\n7 1000000\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumVertices(), 3u);
  EXPECT_EQ(result->NumEdges(), 3u);
}

TEST_F(EdgeListIoTest, SelfLoopsAndDuplicatesDropped) {
  const std::string path = TempPath("loops.txt");
  WriteFile(path, "0 0\n0 1\n1 0\n0 1\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumEdges(), 1u);
}

TEST_F(EdgeListIoTest, TabAndCommaSeparatorsAccepted) {
  const std::string path = TempPath("tabs.txt");
  WriteFile(path, "0\t1\n1, 2\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->NumEdges(), 2u);
}

TEST_F(EdgeListIoTest, MissingFileIsIoError) {
  const auto result = ReadSnapEdgeList(TempPath("does_not_exist.txt"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(EdgeListIoTest, MalformedLineIsCorruption) {
  const std::string path = TempPath("bad.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  const auto result = ReadSnapEdgeList(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().message().find(":2"), std::string::npos)
      << "error should cite line 2: " << result.status().message();
}

TEST_F(EdgeListIoTest, MissingSecondEndpointIsCorruption) {
  const std::string path = TempPath("half.txt");
  WriteFile(path, "0\n");
  const auto result = ReadSnapEdgeList(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListIoTest, TextRoundTripPreservesGraph) {
  const Graph original = GenerateErdosRenyi(50, 120, 9);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteSnapEdgeList(original, path).ok());
  const auto reloaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(reloaded.ok());
  // Writer emits vertices in id order, so relabel-on-read only renames
  // isolated-vertex-free graphs identically; compare structurally.
  EXPECT_EQ(reloaded->NumEdges(), original.NumEdges());
}

TEST_F(EdgeListIoTest, BinaryRoundTripIsExact) {
  const Graph original = GenerateBarabasiAlbert(200, 3, 17);
  const std::string path = TempPath("graph.bin");
  ASSERT_TRUE(WriteBinaryGraph(original, path).ok());
  const auto reloaded = ReadBinaryGraph(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->NumVertices(), original.NumVertices());
  EXPECT_EQ(reloaded->NumEdges(), original.NumEdges());
  EXPECT_TRUE(std::ranges::equal(reloaded->Offsets(), original.Offsets()));
  EXPECT_TRUE(std::ranges::equal(reloaded->NeighborArray(), original.NeighborArray()));
}

TEST_F(EdgeListIoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("not_a_graph.bin");
  WriteFile(path, "GARBAGE DATA");
  const auto result = ReadBinaryGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListIoTest, BinaryRejectsTruncatedFile) {
  const Graph original = GenerateErdosRenyi(30, 50, 3);
  const std::string path = TempPath("trunc.bin");
  ASSERT_TRUE(WriteBinaryGraph(original, path).ok());
  // Truncate to half size.
  std::FILE* f = std::fopen(path.c_str(), "r+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  const auto result = ReadBinaryGraph(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST_F(EdgeListIoTest, BinaryEmptyGraphRoundTrip) {
  const Graph original = GraphBuilder::FromEdges(4, {});
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteBinaryGraph(original, path).ok());
  const auto reloaded = ReadBinaryGraph(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->NumVertices(), 4u);
  EXPECT_EQ(reloaded->NumEdges(), 0u);
}

TEST_F(EdgeListIoTest, OverflowingVertexIdIsCorruption) {
  const std::string path = TempPath("overflow.txt");
  // 2^64 = 18446744073709551616 does not fit in uint64_t.
  WriteFile(path, "18446744073709551616 1\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().ToString().find("overflows"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find(":1"), std::string::npos)
      << result.status().ToString();
}

TEST_F(EdgeListIoTest, MaxUint64VertexIdStillParses) {
  const std::string path = TempPath("max_u64.txt");
  // 2^64 - 1 is the largest parsable token; dense relabeling then maps it
  // to a small VertexId, so the read succeeds.
  WriteFile(path, "18446744073709551615 1\n");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumVertices(), 2u);
  EXPECT_EQ(result->NumEdges(), 1u);
}

TEST_F(EdgeListIoTest, OverlongLineIsCorruptionWithLineNumber) {
  const std::string path = TempPath("long_line.txt");
  // A single line far beyond the 4096-byte read buffer.
  std::string line = "0 1 ";
  line.append(8000, 'x');
  line += "\n2 3\n";
  WriteFile(path, "5 6\n" + line);
  const auto result = ReadSnapEdgeList(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
  EXPECT_NE(result.status().ToString().find("exceeds"), std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find(":2"), std::string::npos)
      << result.status().ToString();
}

TEST_F(EdgeListIoTest, FinalLineWithoutNewlineIsAccepted) {
  const std::string path = TempPath("no_final_newline.txt");
  WriteFile(path, "0 1\n1 2");
  const auto result = ReadSnapEdgeList(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->NumEdges(), 2u);
}

}  // namespace
}  // namespace corekit
