// .ckg binary format: round-trips for both payload flavors across the
// mmap and stdio paths, header-only info reads, and a fuzz-style
// corruption battery — every tampered file must come back as a clean
// Status::Corruption, never a crash or a silently wrong graph.  Where
// a structural lie is hidden behind a recomputed checksum, the payload
// validators must still catch it.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <ranges>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/ckg_format.h"
#include "corekit/graph/compressed_csr.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/status.h"
#include "test_util.h"

namespace corekit {
namespace {

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kFlagsOffset = 12;
constexpr std::size_t kNumVerticesOffset = 16;
constexpr std::size_t kNumDirectedOffset = 24;
constexpr std::size_t kPayloadBytesOffset = 32;
constexpr std::size_t kChecksumOffset = 40;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/corekit_ckg_" + name + ".ckg";
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

template <typename T>
void Store(std::string* bytes, std::size_t offset, T value) {
  ASSERT_LE(offset + sizeof(T), bytes->size());
  std::memcpy(bytes->data() + offset, &value, sizeof(T));
}

// Independent FNV-1a 64 so the tests can forge a valid checksum over a
// structurally corrupt payload.
std::uint64_t Fnv1a64(const char* data, std::size_t len) {
  std::uint64_t hash = 14695981039346656037ull;
  for (std::size_t i = 0; i < len; ++i) {
    hash = (hash ^ static_cast<unsigned char>(data[i])) * 1099511628211ull;
  }
  return hash;
}

void FixChecksum(std::string* bytes) {
  ASSERT_GE(bytes->size(), kHeaderBytes);
  Store(bytes, kChecksumOffset,
        Fnv1a64(bytes->data() + kHeaderBytes, bytes->size() - kHeaderBytes));
}

// Both read entry points, both IO paths: all must refuse with
// Corruption (and must not crash — the suite runs under sanitizers).
void ExpectCorruption(const std::string& path) {
  for (const bool force_fallback : {false, true}) {
    CkgReadOptions options;
    options.force_fallback = force_fallback;
    const Result<Graph> graph = ReadCkgGraph(path, options);
    EXPECT_FALSE(graph.ok());
    EXPECT_EQ(graph.status().code(), StatusCode::kCorruption)
        << graph.status().ToString();
    const Result<CompressedCsr> csr = ReadCkgCompressed(path, options);
    EXPECT_FALSE(csr.ok());
    EXPECT_EQ(csr.status().code(), StatusCode::kCorruption);
  }
}

void ExpectSameGraph(const Graph& actual, const Graph& expected) {
  ASSERT_EQ(actual.NumVertices(), expected.NumVertices());
  ASSERT_EQ(actual.NumEdges(), expected.NumEdges());
  EXPECT_TRUE(std::ranges::equal(actual.Offsets(), expected.Offsets()));
  EXPECT_TRUE(
      std::ranges::equal(actual.NeighborArray(), expected.NeighborArray()));
}

TEST(CkgFormatTest, HasCkgExtension) {
  EXPECT_TRUE(HasCkgExtension("graph.ckg"));
  EXPECT_TRUE(HasCkgExtension("/tmp/a/b.ckg"));
  EXPECT_FALSE(HasCkgExtension("graph.ckg.txt"));
  EXPECT_FALSE(HasCkgExtension("graph.bin"));
  EXPECT_FALSE(HasCkgExtension("ckg"));
  EXPECT_FALSE(HasCkgExtension(""));
}

TEST(CkgFormatTest, PlainRoundTripBothIoPaths) {
  const Graph graph = testing::Fig2Graph();
  const std::string path = TempPath("plain_roundtrip");
  ASSERT_TRUE(WriteCkgGraph(graph, path).ok());
  for (const bool force_fallback : {false, true}) {
    CkgReadOptions options;
    options.force_fallback = force_fallback;
    const Result<Graph> loaded = ReadCkgGraph(path, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectSameGraph(*loaded, graph);
    // Plain payloads are served as views over the file image (mmap'd
    // or an owned fallback buffer) — never re-copied into vectors.
    EXPECT_TRUE(loaded->IsView());
  }
}

TEST(CkgFormatTest, CompressedRoundTripBothIoPaths) {
  const Graph graph = testing::Fig2Graph();
  const std::string path = TempPath("compressed_roundtrip");
  CkgWriteOptions write_options;
  write_options.compressed = true;
  ASSERT_TRUE(WriteCkgGraph(graph, path, write_options).ok());
  for (const bool force_fallback : {false, true}) {
    CkgReadOptions options;
    options.force_fallback = force_fallback;
    const Result<Graph> loaded = ReadCkgGraph(path, options);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectSameGraph(*loaded, graph);
    // Compressed payloads decode into an owning graph.
    EXPECT_FALSE(loaded->IsView());
  }
}

TEST(CkgFormatTest, ZooRoundTripsBothFlavors) {
  for (const auto& [name, graph] : testing::SmallGraphZoo()) {
    for (const bool compressed : {false, true}) {
      SCOPED_TRACE(name + (compressed ? "/compressed" : "/plain"));
      const std::string path = TempPath("zoo");
      CkgWriteOptions options;
      options.compressed = compressed;
      ASSERT_TRUE(WriteCkgGraph(graph, path, options).ok());
      const Result<Graph> loaded = ReadCkgGraph(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ExpectSameGraph(*loaded, graph);
    }
  }
}

TEST(CkgFormatTest, CompressedFlavorIsSmallerOnFig2) {
  const Graph graph = testing::Fig2Graph();
  const std::string plain_path = TempPath("size_plain");
  const std::string compressed_path = TempPath("size_compressed");
  CkgWriteOptions compressed_options;
  compressed_options.compressed = true;
  ASSERT_TRUE(WriteCkgGraph(graph, plain_path).ok());
  ASSERT_TRUE(WriteCkgGraph(graph, compressed_path, compressed_options).ok());
  const Result<CkgInfo> plain = ReadCkgInfo(plain_path);
  const Result<CkgInfo> compressed = ReadCkgInfo(compressed_path);
  ASSERT_TRUE(plain.ok() && compressed.ok());
  EXPECT_LT(compressed->payload_bytes, plain->payload_bytes);
}

TEST(CkgFormatTest, InfoReportsBothFlavors) {
  const Graph graph = testing::Fig2Graph();
  for (const bool compressed : {false, true}) {
    const std::string path = TempPath("info");
    CkgWriteOptions options;
    options.compressed = compressed;
    ASSERT_TRUE(WriteCkgGraph(graph, path, options).ok());
    const Result<CkgInfo> info = ReadCkgInfo(path);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    EXPECT_EQ(info->compressed, compressed);
    EXPECT_EQ(info->num_vertices, graph.NumVertices());
    EXPECT_EQ(info->num_edges, graph.NumEdges());
    EXPECT_GT(info->payload_bytes, 0u);
  }
}

TEST(CkgFormatTest, EmptyAndEdgelessGraphsRoundTrip) {
  const Graph empty = GraphBuilder::FromEdges(0, {});
  const Graph edgeless = GraphBuilder::FromEdges(5, {});
  for (const Graph* graph : {&empty, &edgeless}) {
    for (const bool compressed : {false, true}) {
      const std::string path = TempPath("degenerate");
      CkgWriteOptions options;
      options.compressed = compressed;
      ASSERT_TRUE(WriteCkgGraph(*graph, path, options).ok());
      const Result<Graph> loaded = ReadCkgGraph(path);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      ExpectSameGraph(*loaded, *graph);
    }
  }
}

TEST(CkgFormatTest, ReadCkgCompressedYieldsDecodableView) {
  const Graph graph = testing::Fig2Graph();
  const std::string path = TempPath("compressed_view");
  CkgWriteOptions options;
  options.compressed = true;
  ASSERT_TRUE(WriteCkgGraph(graph, path, options).ok());
  const Result<CompressedCsr> csr = ReadCkgCompressed(path);
  ASSERT_TRUE(csr.ok()) << csr.status().ToString();
  EXPECT_EQ(csr->NumVertices(), graph.NumVertices());
  EXPECT_EQ(csr->NumEdges(), graph.NumEdges());
  std::vector<VertexId> neighbors;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    csr->DecodeNeighbors(v, &neighbors);
    EXPECT_TRUE(std::ranges::equal(neighbors, graph.Neighbors(v))) << v;
  }
}

TEST(CkgFormatTest, ReadCkgCompressedRejectsPlainFile) {
  const std::string path = TempPath("plain_for_compressed");
  ASSERT_TRUE(WriteCkgGraph(testing::Fig2Graph(), path).ok());
  const Result<CompressedCsr> csr = ReadCkgCompressed(path);
  EXPECT_FALSE(csr.ok());
  EXPECT_EQ(csr.status().code(), StatusCode::kCorruption);
  // The plain read of the same file still works.
  EXPECT_TRUE(ReadCkgGraph(path).ok());
}

TEST(CkgFormatTest, MissingFileIsIoError) {
  const Result<Graph> graph = ReadCkgGraph(TempPath("does_not_exist"));
  EXPECT_FALSE(graph.ok());
  EXPECT_EQ(graph.status().code(), StatusCode::kIoError);
}

// ---- Corruption battery -------------------------------------------------

class CkgCorruptionTest : public ::testing::Test {
 protected:
  // Writes Fig2 in the requested flavor and returns the raw bytes. The
  // path carries the test name: each TEST_F runs as its own ctest process,
  // and a shared file would race under `ctest -j`.
  std::string WriteAndSlurp(bool compressed) {
    path_ = TempPath(
        std::string("corrupt_") +
        ::testing::UnitTest::GetInstance()->current_test_info()->name());
    CkgWriteOptions options;
    options.compressed = compressed;
    EXPECT_TRUE(WriteCkgGraph(testing::Fig2Graph(), path_, options).ok());
    return ReadFileBytes(path_);
  }

  void ExpectTamperRejected(std::string bytes) {
    WriteBytes(path_, bytes);
    ExpectCorruption(path_);
  }

  std::string path_;
};

TEST_F(CkgCorruptionTest, TruncatedHeader) {
  const std::string bytes = WriteAndSlurp(/*compressed=*/false);
  for (const std::size_t keep : {std::size_t{0}, std::size_t{1},
                                 std::size_t{8}, std::size_t{63}}) {
    ExpectTamperRejected(bytes.substr(0, keep));
  }
}

TEST_F(CkgCorruptionTest, BadMagic) {
  std::string bytes = WriteAndSlurp(false);
  bytes[0] = 'X';
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, UnsupportedVersion) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, std::size_t{8}, std::uint32_t{2});
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, UnknownFlags) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kFlagsOffset, std::uint32_t{0x80000002u});
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, VertexCountOverflow) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kNumVerticesOffset, std::uint64_t{1} << 32);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, OddDirectedCount) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kNumDirectedOffset, std::uint64_t{37});
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, LyingPayloadBytes) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kPayloadBytesOffset,
        std::uint64_t{bytes.size() - kHeaderBytes + 8});
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, TruncatedPayload) {
  const std::string bytes = WriteAndSlurp(false);
  ExpectTamperRejected(bytes.substr(0, bytes.size() - 1));
  ExpectTamperRejected(bytes.substr(0, kHeaderBytes));
}

TEST_F(CkgCorruptionTest, AppendedGarbage) {
  std::string bytes = WriteAndSlurp(false);
  bytes += "extra";
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, ChecksumMismatch) {
  std::string bytes = WriteAndSlurp(false);
  bytes[bytes.size() - 1] =
      static_cast<char>(static_cast<unsigned char>(bytes.back()) ^ 0xFF);
  ExpectTamperRejected(bytes);  // checksum no longer matches payload
}

// Header count lies that keep the checksum valid (payload untouched)
// must be caught by the cross-checks between header and payload sizes.
TEST_F(CkgCorruptionTest, LyingVertexCount) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kNumVerticesOffset, std::uint64_t{13});
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, LyingDirectedCount) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kNumDirectedOffset, std::uint64_t{40});
  ExpectTamperRejected(bytes);
}

// Structural lies hidden behind a forged (recomputed) checksum: the
// CSR validators are the last line of defense.  Fig2 plain layout:
// offsets[13] x u64 at payload offset 0, neighbors[38] x u32 at 104.
TEST_F(CkgCorruptionTest, PlainNonZeroFirstOffset) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kHeaderBytes + 0, std::uint64_t{1});
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, PlainNonMonotoneOffsets) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kHeaderBytes + 8, std::uint64_t{200});  // offsets[1] > 2m
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, PlainNeighborOutOfRange) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kHeaderBytes + 104, std::uint32_t{12});  // id == n
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, PlainSelfLoop) {
  std::string bytes = WriteAndSlurp(false);
  Store(&bytes, kHeaderBytes + 104, std::uint32_t{0});  // v0 -> v0
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, PlainUnsortedAdjacency) {
  std::string bytes = WriteAndSlurp(false);
  // v0's list becomes {1, 1, 3}: duplicate, not strictly increasing.
  Store(&bytes, kHeaderBytes + 108, std::uint32_t{1});
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

// Fig2 compressed layout: byte_offsets[13] x u64 at payload offset 0,
// degrees[12] x u32 at 104, blob at 152.
TEST_F(CkgCorruptionTest, CompressedNonMonotoneByteOffsets) {
  std::string bytes = WriteAndSlurp(/*compressed=*/true);
  Store(&bytes, kHeaderBytes + 8, std::uint64_t{1} << 40);
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, CompressedDegreeSumMismatch) {
  std::string bytes = WriteAndSlurp(true);
  Store(&bytes, kHeaderBytes + 104, std::uint32_t{100});  // degrees[0]
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, CompressedUndecodableStream) {
  std::string bytes = WriteAndSlurp(true);
  // Keep the degree sum intact but move a neighbor from v0 to v1: v0's
  // byte range no longer decodes exactly degrees[0] values.
  Store(&bytes, kHeaderBytes + 104, std::uint32_t{2});  // degrees[0]: 3 -> 2
  Store(&bytes, kHeaderBytes + 108, std::uint32_t{4});  // degrees[1]: 3 -> 4
  FixChecksum(&bytes);
  ExpectTamperRejected(bytes);
}

TEST_F(CkgCorruptionTest, RandomBitFlipsNeverCrash) {
  const std::string plain = WriteAndSlurp(false);
  const std::string compressed = WriteAndSlurp(true);
  std::uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (const std::string* original : {&plain, &compressed}) {
    for (int trial = 0; trial < 60; ++trial) {
      std::string bytes = *original;
      const std::size_t pos = next() % bytes.size();
      bytes[pos] = static_cast<char>(static_cast<unsigned char>(bytes[pos]) ^
                                     (1u << (next() % 8)));
      WriteBytes(path_, bytes);
      // A flip may hit an ignored byte (e.g. reserved words) and still
      // load fine; the requirement is no crash and, on success, a
      // structurally valid graph.
      const Result<Graph> loaded = ReadCkgGraph(path_);
      if (loaded.ok()) {
        EXPECT_EQ(loaded->NumVertices(), 12u);
      } else {
        EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
      }
    }
  }
}

}  // namespace
}  // namespace corekit
