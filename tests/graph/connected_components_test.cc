#include "corekit/graph/connected_components.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

TEST(ConnectedComponentsTest, SingleComponent) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 3}});
  const ComponentLabels cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 1u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(cc.label[v], 0u);
}

TEST(ConnectedComponentsTest, IsolatedVerticesAreComponents) {
  const Graph g = GraphBuilder::FromEdges(5, {{0, 1}});
  const ComponentLabels cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 4u);  // {0,1}, {2}, {3}, {4}
}

TEST(ConnectedComponentsTest, TwoBlocks) {
  const Graph g =
      GraphBuilder::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  const ComponentLabels cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 2u);
  EXPECT_EQ(cc.label[0], cc.label[2]);
  EXPECT_EQ(cc.label[3], cc.label[5]);
  EXPECT_NE(cc.label[0], cc.label[3]);
}

TEST(ConnectedComponentsTest, GroupsPartitionVertices) {
  const Graph g =
      GraphBuilder::FromEdges(7, {{0, 1}, {2, 3}, {3, 4}});
  const ComponentLabels cc = ConnectedComponents(g);
  const auto groups = cc.Groups();
  ASSERT_EQ(groups.size(), cc.num_components);
  std::vector<VertexId> all;
  for (const auto& group : groups) {
    all.insert(all.end(), group.begin(), group.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<VertexId>{0, 1, 2, 3, 4, 5, 6}));
}

TEST(InducedConnectedComponentsTest, MaskSplitsComponent) {
  // Path 0-1-2-3-4; removing 2 splits it.
  const Graph g =
      GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  std::vector<bool> mask{true, true, false, true, true};
  const ComponentLabels cc = InducedConnectedComponents(g, mask);
  EXPECT_EQ(cc.num_components, 2u);
  EXPECT_EQ(cc.label[2], ComponentLabels::kInvalidComponent);
  EXPECT_EQ(cc.label[0], cc.label[1]);
  EXPECT_EQ(cc.label[3], cc.label[4]);
  EXPECT_NE(cc.label[0], cc.label[3]);
}

TEST(InducedConnectedComponentsTest, EmptyMask) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  const ComponentLabels cc =
      InducedConnectedComponents(g, {false, false, false});
  EXPECT_EQ(cc.num_components, 0u);
}

TEST(InducedConnectedComponentsTest, Fig2ThreeCoreSetHasTwoComponents) {
  // Restricting Figure 2 to the 3-core set {v1..v4, v9..v12} must yield
  // exactly the two K4s.
  const Graph g = Fig2Graph();
  std::vector<bool> mask(12, false);
  for (const int pid : {1, 2, 3, 4, 9, 10, 11, 12}) {
    mask[corekit::testing::V(pid)] = true;
  }
  const ComponentLabels cc = InducedConnectedComponents(g, mask);
  EXPECT_EQ(cc.num_components, 2u);
}

TEST(ConnectedComponentsTest, EmptyGraph) {
  const Graph g;
  const ComponentLabels cc = ConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 0u);
}

}  // namespace
}  // namespace corekit
