#include "corekit/graph/power_law.h"

#include <cmath>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/util/random.h"

namespace corekit {
namespace {

TEST(PowerLawTest, EmptyTail) {
  const PowerLawFit fit = FitDiscretePowerLaw({1, 2, 3}, 10);
  EXPECT_EQ(fit.tail_size, 0u);
  EXPECT_DOUBLE_EQ(fit.alpha, 0.0);
}

TEST(PowerLawTest, RecoversKnownExponent) {
  // Sample from a discrete power law with alpha = 2.5 via inverse
  // transform on the continuous approximation.
  Rng rng(42);
  constexpr double kAlpha = 2.5;
  constexpr VertexId kXmin = 5;
  std::vector<VertexId> samples;
  for (int i = 0; i < 50000; ++i) {
    const double u = rng.NextDouble();
    const double x =
        (static_cast<double>(kXmin) - 0.5) * std::pow(1.0 - u, -1.0 /
                                                             (kAlpha - 1.0));
    samples.push_back(static_cast<VertexId>(x + 0.5));
  }
  const PowerLawFit fit = FitDiscretePowerLaw(samples, kXmin);
  EXPECT_GT(fit.tail_size, 40000u);
  EXPECT_NEAR(fit.alpha, kAlpha, 5 * fit.std_error + 0.05);
}

TEST(PowerLawTest, StdErrorShrinksWithSampleSize) {
  Rng rng(7);
  auto sample = [&rng](int count) {
    std::vector<VertexId> samples;
    for (int i = 0; i < count; ++i) {
      const double u = rng.NextDouble();
      samples.push_back(static_cast<VertexId>(
          2.0 * std::pow(1.0 - u, -1.0 / 1.5) + 0.5));
    }
    return samples;
  };
  const PowerLawFit small = FitDiscretePowerLaw(sample(500), 2);
  const PowerLawFit large = FitDiscretePowerLaw(sample(50000), 2);
  EXPECT_LT(large.std_error, small.std_error);
}

TEST(PowerLawTest, SkewedGeneratorsHaveSocialRangeTails) {
  // The heavy-tailed stand-ins should fit alpha in the social range;
  // the ER stand-in's Poisson degrees should not (its tail estimate is
  // far steeper).
  RmatParams rmat;
  rmat.scale = 14;
  rmat.num_edges = 200000;
  rmat.seed = 3;
  const PowerLawFit skew = FitDegreePowerLaw(GenerateRmat(rmat), 8);
  EXPECT_GT(skew.tail_size, 500u);
  EXPECT_GT(skew.alpha, 1.5);
  EXPECT_LT(skew.alpha, 4.0);

  const PowerLawFit er =
      FitDegreePowerLaw(GenerateErdosRenyi(16384, 200000, 3), 8);
  EXPECT_GT(er.alpha, skew.alpha);  // Poisson tail decays much faster
}

TEST(PowerLawTest, BarabasiAlbertNearCubicExponent) {
  // BA's theoretical exponent is 3.
  const Graph g = GenerateBarabasiAlbert(30000, 4, 9);
  const PowerLawFit fit = FitDegreePowerLaw(g, 8);
  EXPECT_GT(fit.tail_size, 1000u);
  EXPECT_NEAR(fit.alpha, 3.0, 0.5);
}

}  // namespace
}  // namespace corekit
