// FileView: the mmap path and the stdio fallback must expose identical
// bytes, and failures must surface as Status errors.

#include <cstddef>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "corekit/graph/file_view.h"
#include "corekit/util/status.h"

namespace corekit {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/corekit_fileview_" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::string AsString(const FileView& view) {
  return std::string(view.data(), view.size());
}

TEST(FileViewTest, MappedAndFallbackSeeTheSameBytes) {
  const std::string path = TempPath("parity");
  std::string payload = "corekit file view parity\n";
  for (int i = 0; i < 200; ++i) payload += static_cast<char>(i % 256);
  WriteBytes(path, payload);

  FileView mapped;
  ASSERT_TRUE(FileView::Open(path, /*force_fallback=*/false, &mapped).ok());
  FileView copied;
  ASSERT_TRUE(FileView::Open(path, /*force_fallback=*/true, &copied).ok());

  EXPECT_FALSE(copied.is_mapped());
  EXPECT_EQ(AsString(mapped), payload);
  EXPECT_EQ(AsString(copied), payload);
#if defined(COREKIT_HAVE_MMAP)
  EXPECT_TRUE(mapped.is_mapped());
#endif
}

TEST(FileViewTest, EmptyFile) {
  const std::string path = TempPath("empty");
  WriteBytes(path, "");
  for (const bool force_fallback : {false, true}) {
    FileView view;
    ASSERT_TRUE(FileView::Open(path, force_fallback, &view).ok());
    EXPECT_EQ(view.size(), 0u);
  }
}

TEST(FileViewTest, MissingFileIsIoError) {
  FileView view;
  const Status status =
      FileView::Open(TempPath("does_not_exist"), false, &view);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace corekit
