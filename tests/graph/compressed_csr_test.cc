// CompressedCsr and its group-varint codec: round-trips on random and
// adversarial lists, per-vertex decode parity with the source graph,
// the bytes/edge win over plain CSR, and fail-closed decoding of
// truncated or non-canonical byte streams.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <ranges>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/compressed_csr.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/graph/types.h"
#include "corekit/util/random.h"
#include "test_util.h"

namespace corekit {
namespace {

using csr_codec::DecodeSortedList;
using csr_codec::EncodeSortedList;

std::vector<std::uint32_t> RandomSorted(Rng& rng, std::size_t count,
                                        std::uint32_t universe) {
  std::vector<std::uint32_t> values;
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(static_cast<std::uint32_t>(rng.NextBounded(universe)));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

void ExpectRoundTrip(const std::vector<std::uint32_t>& values) {
  std::vector<std::uint8_t> bytes;
  EncodeSortedList(values, &bytes);
  std::vector<std::uint32_t> decoded;
  std::size_t consumed = 0;
  ASSERT_TRUE(DecodeSortedList(bytes, values.size(), &decoded, &consumed));
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(decoded, values);
}

TEST(CsrCodecTest, EmptyListEncodesToNothing) {
  std::vector<std::uint8_t> bytes;
  EncodeSortedList({}, &bytes);
  EXPECT_TRUE(bytes.empty());
  std::vector<std::uint32_t> decoded = {99};
  std::size_t consumed = 123;
  ASSERT_TRUE(DecodeSortedList(bytes, 0, &decoded, &consumed));
  EXPECT_TRUE(decoded.empty());
  EXPECT_EQ(consumed, 0u);
}

TEST(CsrCodecTest, SmallListsRoundTrip) {
  ExpectRoundTrip({0});
  ExpectRoundTrip({7});
  ExpectRoundTrip({0, 1});
  ExpectRoundTrip({0, 1, 2, 3});          // one exact group
  ExpectRoundTrip({0, 1, 2, 3, 4});       // group + 1-value tail
  ExpectRoundTrip({5, 100, 70000, 1u << 25, 1u << 31});
}

TEST(CsrCodecTest, BoundaryValuesRoundTrip) {
  const std::uint32_t max = 0xFFFFFFFFu;
  ExpectRoundTrip({max});
  ExpectRoundTrip({0, max});              // maximal single gap
  ExpectRoundTrip({0, 1, max - 1, max});
  // Gaps hitting every byte-length lane: 1, 2, 3, 4 bytes.
  ExpectRoundTrip({10, 10 + 200, 10 + 200 + 40000, 10 + 200 + 40000 + 9000000,
                   0xF0000000u});
  // Consecutive values: gap-1 == 0 everywhere, 1 byte per value.
  std::vector<std::uint32_t> run;
  for (std::uint32_t i = max - 40; i <= max - 1; ++i) run.push_back(i);
  run.push_back(max);
  ExpectRoundTrip(run);
}

TEST(CsrCodecTest, RandomListsRoundTrip) {
  Rng rng(101);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t count = rng.NextBounded(100);
    const std::uint32_t universe =
        trial % 3 == 0 ? 300 : (trial % 3 == 1 ? (1u << 16) : 0xFFFFFFFFu);
    ExpectRoundTrip(RandomSorted(rng, count, universe));
  }
}

TEST(CsrCodecTest, ConsecutiveRunUsesOneBytePerValue) {
  // A max-degree hub with consecutive neighbors: the first value is
  // absolute, every later value stores gap-1 == 0.  Worst case is 1
  // control byte per 4 values plus 1 data byte each.
  std::vector<std::uint32_t> hub;
  for (std::uint32_t i = 0; i < 4096; ++i) hub.push_back(i);
  std::vector<std::uint8_t> bytes;
  EncodeSortedList(hub, &bytes);
  // 1024 control bytes + 4096 one-byte values.
  EXPECT_EQ(bytes.size(), 1024u + 4096u);
  ExpectRoundTrip(hub);
}

TEST(CsrCodecTest, TruncatedStreamsFailClosed) {
  Rng rng(202);
  const std::vector<std::uint32_t> values = RandomSorted(rng, 50, 1u << 24);
  std::vector<std::uint8_t> bytes;
  EncodeSortedList(values, &bytes);
  std::vector<std::uint32_t> decoded;
  std::size_t consumed = 0;
  for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
    const std::span<const std::uint8_t> prefix(bytes.data(), keep);
    EXPECT_FALSE(DecodeSortedList(prefix, values.size(), &decoded, &consumed))
        << "prefix of " << keep << " bytes decoded";
  }
}

TEST(CsrCodecTest, NonCanonicalTailControlLaneRejected) {
  // Encode 1 value: control byte 0b000000xx with the three unused
  // lanes zero.  Setting an unused lane makes the stream non-canonical
  // and must be rejected even though enough bytes follow.
  std::vector<std::uint8_t> bytes;
  EncodeSortedList(std::vector<std::uint32_t>{42}, &bytes);
  ASSERT_EQ(bytes.size(), 2u);
  std::vector<std::uint8_t> tampered = bytes;
  tampered[0] |= std::uint8_t{0x04};  // lane 1 claims a second value
  tampered.push_back(0);              // ... and bytes to back the claim
  std::vector<std::uint32_t> decoded;
  std::size_t consumed = 0;
  EXPECT_FALSE(DecodeSortedList(tampered, 1, &decoded, &consumed));
}

TEST(CsrCodecTest, OverflowingValueRejected) {
  // First value 0xFFFFFFFF, then any positive gap pushes past 32 bits.
  std::vector<std::uint8_t> bytes;
  bytes.push_back(0x0F);  // control: two 4-byte lanes (0b00001111)
  for (int i = 0; i < 4; ++i) bytes.push_back(0xFF);  // value 0xFFFFFFFF
  bytes.push_back(0x00);
  bytes.push_back(0x00);
  bytes.push_back(0x00);
  bytes.push_back(0x00);  // gap-1 = 0 -> value 0x100000000
  std::vector<std::uint32_t> decoded;
  std::size_t consumed = 0;
  EXPECT_FALSE(DecodeSortedList(bytes, 2, &decoded, &consumed));
}

TEST(CompressedCsrTest, EmptyGraph) {
  const CompressedCsr csr;
  EXPECT_EQ(csr.NumVertices(), 0u);
  EXPECT_EQ(csr.NumEdges(), 0u);
  EXPECT_EQ(csr.BytesPerEdge(), 0.0);
  const Graph round = csr.Decompress();
  EXPECT_EQ(round.NumVertices(), 0u);
}

TEST(CompressedCsrTest, ZooRoundTripsThroughDecompress) {
  for (const auto& [name, graph] : testing::SmallGraphZoo()) {
    SCOPED_TRACE(name);
    const CompressedCsr csr = CompressedCsr::FromGraph(graph);
    EXPECT_EQ(csr.NumVertices(), graph.NumVertices());
    EXPECT_EQ(csr.NumEdges(), graph.NumEdges());
    const Graph round = csr.Decompress();
    ASSERT_EQ(round.NumVertices(), graph.NumVertices());
    ASSERT_EQ(round.NumEdges(), graph.NumEdges());
    EXPECT_TRUE(std::ranges::equal(round.Offsets(), graph.Offsets()));
    EXPECT_TRUE(
        std::ranges::equal(round.NeighborArray(), graph.NeighborArray()));
  }
}

TEST(CompressedCsrTest, PerVertexDecodeMatchesGraph) {
  const Graph graph = testing::Fig2Graph();
  const CompressedCsr csr = CompressedCsr::FromGraph(graph);
  std::vector<VertexId> neighbors;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(csr.Degree(v), graph.Degree(v));
    csr.DecodeNeighbors(v, &neighbors);
    EXPECT_TRUE(std::ranges::equal(neighbors, graph.Neighbors(v))) << v;
  }
}

TEST(CompressedCsrTest, DegreeZeroVerticesOccupyNoBytes) {
  const Graph graph = GraphBuilder::FromEdges(10, {{3, 7}});
  const CompressedCsr csr = CompressedCsr::FromGraph(graph);
  const auto offsets = csr.ByteOffsets();
  for (VertexId v = 0; v < 10; ++v) {
    if (v != 3 && v != 7) {
      EXPECT_EQ(offsets[v], offsets[v + 1]) << v;
    }
  }
  std::vector<VertexId> neighbors;
  csr.DecodeNeighbors(0, &neighbors);
  EXPECT_TRUE(neighbors.empty());
}

TEST(CompressedCsrTest, BeatsPlainCsrBytesPerEdgeOnZoo) {
  for (const auto& [name, graph] : testing::SmallGraphZoo()) {
    // The format header documents the breakeven: the fixed per-vertex
    // sections only amortize once average degree exceeds ~1.6 (every
    // bench dataset qualifies; the 1-edge toy graph does not).
    if (graph.NumEdges() == 0 ||
        2 * graph.NumEdges() < 2 * graph.NumVertices()) {
      continue;
    }
    SCOPED_TRACE(name);
    const CompressedCsr csr = CompressedCsr::FromGraph(graph);
    const double plain_bytes =
        static_cast<double>(graph.Offsets().size_bytes() +
                            graph.NeighborArray().size_bytes());
    const double plain_per_edge =
        plain_bytes / static_cast<double>(graph.NumEdges());
    EXPECT_LT(csr.BytesPerEdge(), plain_per_edge);
    EXPECT_EQ(csr.TotalBytes(),
              csr.ByteOffsets().size_bytes() + csr.Degrees().size_bytes() +
                  csr.Blob().size());
  }
}

TEST(CompressedCsrTest, CopySemantics) {
  const Graph graph = testing::Fig2Graph();
  const CompressedCsr original = CompressedCsr::FromGraph(graph);
  const CompressedCsr copy = original;  // NOLINT(performance-unnecessary-copy)
  CompressedCsr assigned;
  assigned = original;
  const CompressedCsr* views[] = {&copy, &assigned};
  for (const CompressedCsr* csr : views) {
    EXPECT_EQ(csr->NumVertices(), graph.NumVertices());
    EXPECT_EQ(csr->NumEdges(), graph.NumEdges());
    const Graph round = csr->Decompress();
    EXPECT_TRUE(
        std::ranges::equal(round.NeighborArray(), graph.NeighborArray()));
  }
}

TEST(CompressedCsrTest, FromPartsViewsWithoutCopying) {
  const Graph graph = testing::Fig2Graph();
  const CompressedCsr owned = CompressedCsr::FromGraph(graph);
  // Park copies of the sections in a shared backing and view them.
  struct Backing {
    std::vector<std::uint64_t> byte_offsets;
    std::vector<std::uint32_t> degrees;
    std::vector<std::uint8_t> blob;
  };
  auto backing = std::make_shared<Backing>();
  backing->byte_offsets.assign(owned.ByteOffsets().begin(),
                               owned.ByteOffsets().end());
  backing->degrees.assign(owned.Degrees().begin(), owned.Degrees().end());
  backing->blob.assign(owned.Blob().begin(), owned.Blob().end());
  const CompressedCsr view = CompressedCsr::FromParts(
      backing->byte_offsets, backing->degrees, backing->blob,
      2 * graph.NumEdges(), backing);
  EXPECT_EQ(view.ByteOffsets().data(), backing->byte_offsets.data());
  const Graph round = view.Decompress();
  EXPECT_TRUE(
      std::ranges::equal(round.NeighborArray(), graph.NeighborArray()));
}

}  // namespace
}  // namespace corekit
