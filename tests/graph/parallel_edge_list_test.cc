// Differential tests for the parallel cold path's ingestion stage
// (corekit/graph/parallel_edge_list.h): the chunked reader must accept
// exactly what ReadSnapEdgeList accepts — producing a bitwise-identical
// Graph — and reject exactly what it rejects, with the same
// line-numbered messages.  Tiny chunk_bytes values force lines,
// comments, CRLF pairs and errors to straddle chunk boundaries.

#include "corekit/graph/parallel_edge_list.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/edge_list_io.h"
#include "corekit/graph/graph.h"
#include "corekit/util/thread_pool.h"

namespace corekit {
namespace {

class ParallelEdgeListTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/corekit_par_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << content;
    ASSERT_TRUE(out.good());
  }

  // Asserts the parallel reader agrees with the serial one on `path` —
  // same acceptance, same graph bit for bit or same status message —
  // across thread counts, chunk sizes, and the mmap/fallback axis.
  void ExpectParity(const std::string& path) {
    const Result<Graph> serial = ReadSnapEdgeList(path);
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      ThreadPool pool(threads);
      for (const std::size_t chunk_bytes : {std::size_t{0}, std::size_t{3},
                                            std::size_t{7}, std::size_t{64}}) {
        for (const bool fallback : {false, true}) {
          SCOPED_TRACE("threads=" + std::to_string(threads) + " chunk=" +
                       std::to_string(chunk_bytes) + " fallback=" +
                       std::to_string(fallback));
          ParallelIngestOptions options;
          options.chunk_bytes = chunk_bytes;
          options.force_fallback = fallback;
          const Result<Graph> parallel =
              ReadSnapEdgeListParallel(path, pool, options);
          ASSERT_EQ(parallel.ok(), serial.ok());
          if (serial.ok()) {
            EXPECT_EQ(parallel->NumVertices(), serial->NumVertices());
            EXPECT_TRUE(std::ranges::equal(parallel->Offsets(), serial->Offsets()));
            EXPECT_TRUE(std::ranges::equal(parallel->NeighborArray(), serial->NeighborArray()));
          } else {
            EXPECT_EQ(parallel.status().ToString(),
                      serial.status().ToString());
          }
        }
      }
    }
  }
};

TEST_F(ParallelEdgeListTest, SimpleFileMatchesSerial) {
  const std::string path = TempPath("simple.txt");
  WriteFile(path, "0 1\n1 2\n2 0\n3 1\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, EmptyFileMatchesSerial) {
  const std::string path = TempPath("empty.txt");
  WriteFile(path, "");
  ExpectParity(path);
  ThreadPool pool(2);
  const Result<Graph> parallel = ReadSnapEdgeListParallel(path, pool);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->NumVertices(), 0u);
  EXPECT_EQ(parallel->NumEdges(), 0u);
}

TEST_F(ParallelEdgeListTest, FileSmallerThanOneChunk) {
  const std::string path = TempPath("tiny.txt");
  WriteFile(path, "7 9\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, CrlfLineEndingsMatchSerial) {
  const std::string path = TempPath("crlf.txt");
  WriteFile(path, "0 1\r\n# comment\r\n1 2\r\n\r\n2 3\r\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, CommentsAndBlanksAcrossChunkBoundaries) {
  // With chunk_bytes = 3/7 the comment bodies span several chunks; only
  // the chunk owning the line start may classify it.
  const std::string path = TempPath("comments.txt");
  WriteFile(path,
            "# leading comment stretching well past any tiny chunk\n"
            "0 1\n"
            "% metis-style comment, also long enough to straddle\n"
            "\n"
            "   \n"
            "1 2\n"
            "#tail\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, SeparatorsAndDuplicatesMatchSerial) {
  const std::string path = TempPath("seps.txt");
  WriteFile(path, "0,1\n0\t1\n  5   6\n1 0\n5 5\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, FirstAppearanceRelabelingMatchesSerial) {
  // Raw ids far apart exercise both intern paths; serial numbering is by
  // first appearance in file order, which the chunked reader must
  // reproduce exactly.
  const std::string path = TempPath("relabel.txt");
  WriteFile(path,
            "1000000000 4\n4 17\n999999999999 1000000000\n17 0\n0 4\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, NoFinalNewlineMatchesSerial) {
  const std::string path = TempPath("nofinal.txt");
  WriteFile(path, "0 1\n1 2");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, MalformedLineReportsSameLineNumber) {
  const std::string path = TempPath("malformed.txt");
  WriteFile(path, "0 1\n1 2\nnot an edge\n2 3\n");
  ExpectParity(path);
  ThreadPool pool(4);
  ParallelIngestOptions options;
  options.chunk_bytes = 4;
  const Result<Graph> result = ReadSnapEdgeListParallel(path, pool, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("malformed edge"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find(":3"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ParallelEdgeListTest, FirstOfSeveralErrorsWinsLikeSerial) {
  // Errors in different chunks: the reported one must be the first in
  // *file* order, whatever order the chunks finished in.
  const std::string path = TempPath("two_errors.txt");
  WriteFile(path, "0 1\nbad line one\n1 2\nbad line two\n");
  ExpectParity(path);
  ThreadPool pool(4);
  ParallelIngestOptions options;
  options.chunk_bytes = 3;
  const Result<Graph> result = ReadSnapEdgeListParallel(path, pool, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find(":2"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ParallelEdgeListTest, VertexIdOverflowMatchesSerial) {
  const std::string path = TempPath("overflow.txt");
  WriteFile(path, "0 1\n18446744073709551616 1\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, MissingEndpointMatchesSerial) {
  const std::string path = TempPath("half.txt");
  WriteFile(path, "0 1\n42\n");
  ExpectParity(path);
}

TEST_F(ParallelEdgeListTest, OverlongLineAcrossChunksMatchesSerial) {
  // 5000 > 4095 bytes on line 2: must be rejected with the serial
  // message even though the line spans many tiny chunks.
  const std::string path = TempPath("overlong.txt");
  std::string content = "0 1\n";
  content += std::string(5000, '1');
  content += "\n1 2\n";
  WriteFile(path, content);
  ExpectParity(path);
  ThreadPool pool(2);
  ParallelIngestOptions options;
  options.chunk_bytes = 64;
  const Result<Graph> result = ReadSnapEdgeListParallel(path, pool, options);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("exceeds 4095 bytes"),
            std::string::npos)
      << result.status().ToString();
  EXPECT_NE(result.status().ToString().find(":2"), std::string::npos)
      << result.status().ToString();
}

TEST_F(ParallelEdgeListTest, ExactBufferLengthFinalLineMatchesSerial) {
  // A 4095-byte final line with no newline is the serial reader's one
  // tolerated full-buffer case; longer, or mid-file, is an error.
  for (const bool terminated : {false, true}) {
    const std::string path = TempPath(terminated ? "edge4095_nl.txt"
                                                 : "edge4095.txt");
    std::string line = "3 4";
    line += std::string(4095 - line.size(), ' ');
    std::string content = "0 1\n" + line;
    if (terminated) content += "\n";
    WriteFile(path, content);
    SCOPED_TRACE(terminated ? "terminated" : "unterminated");
    ExpectParity(path);
  }
}

TEST_F(ParallelEdgeListTest, MissingFileMatchesSerial) {
  const std::string path = TempPath("does_not_exist.txt");
  std::remove(path.c_str());
  ThreadPool pool(2);
  const Result<Graph> serial = ReadSnapEdgeList(path);
  const Result<Graph> parallel = ReadSnapEdgeListParallel(path, pool);
  ASSERT_FALSE(serial.ok());
  ASSERT_FALSE(parallel.ok());
  EXPECT_EQ(parallel.status().code(), serial.status().code());
}

TEST_F(ParallelEdgeListTest, ParseStageExposesRelabeledEdges) {
  const std::string path = TempPath("parse_stage.txt");
  WriteFile(path, "10 20\n20 30\n10 30\n");
  ThreadPool pool(2);
  const Result<ParsedEdgeList> parsed = ParseSnapEdgeListParallel(path, pool);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->num_vertices, 3u);
  const EdgeList expected = {{0, 1}, {1, 2}, {0, 2}};
  EXPECT_EQ(parsed->edges, expected);
}

TEST_F(ParallelEdgeListTest, DifferentialZooAgainstSerial) {
  // Generated graphs of assorted shapes, written to text and re-read by
  // both paths: the cold path must be bitwise identical on all of them.
  struct ZooEntry {
    std::string name;
    Graph graph;
  };
  std::vector<ZooEntry> zoo;
  zoo.push_back({"er", GenerateErdosRenyi(400, 1600, 7)});
  zoo.push_back({"ba", GenerateBarabasiAlbert(300, 4, 11)});
  zoo.push_back({"ws", GenerateWattsStrogatz(256, 3, 0.2, 13)});
  {
    RmatParams params;
    params.scale = 8;
    params.num_edges = 1200;
    params.seed = 5;
    zoo.push_back({"rmat", GenerateRmat(params)});
  }
  for (const ZooEntry& entry : zoo) {
    SCOPED_TRACE(entry.name);
    const std::string path = TempPath("zoo_" + entry.name + ".txt");
    ASSERT_TRUE(WriteSnapEdgeList(entry.graph, path).ok());
    const Result<Graph> serial = ReadSnapEdgeList(path);
    ASSERT_TRUE(serial.ok());
    for (const std::uint32_t threads : {1u, 3u, 8u}) {
      ThreadPool pool(threads);
      ParallelIngestOptions options;
      options.chunk_bytes = 128;  // many chunks even on small files
      const Result<Graph> parallel =
          ReadSnapEdgeListParallel(path, pool, options);
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_TRUE(std::ranges::equal(parallel->Offsets(), serial->Offsets()));
      EXPECT_TRUE(std::ranges::equal(parallel->NeighborArray(), serial->NeighborArray()));
    }
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace corekit
