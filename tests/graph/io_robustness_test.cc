// Failure-injection tests for every reader: corrupted, truncated, and
// random-garbage inputs must come back as clean Status errors — never
// crashes, hangs, or silently wrong graphs.

#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/edge_list_io.h"
#include "corekit/graph/metis_io.h"
#include "corekit/util/random.h"

namespace corekit {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/corekit_fuzz_" + name;
}

void WriteBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Random printable-ish garbage.
std::string RandomText(Rng& rng, std::size_t length) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(' ' + rng.NextBounded(95)));
  }
  return s;
}

std::string RandomBinary(Rng& rng, std::size_t length) {
  std::string s;
  s.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    s.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return s;
}

TEST(IoRobustnessTest, SnapReaderSurvivesRandomText) {
  Rng rng(404);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("snap_text");
    WriteBytes(path, RandomText(rng, 1 + rng.NextBounded(2000)));
    const auto result = ReadSnapEdgeList(path);
    // Either a clean parse (digit-heavy garbage can be valid) or a
    // Status error; never a crash.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST(IoRobustnessTest, SnapReaderSurvivesRandomBinary) {
  Rng rng(405);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("snap_bin");
    WriteBytes(path, RandomBinary(rng, 1 + rng.NextBounded(2000)));
    const auto result = ReadSnapEdgeList(path);
    if (result.ok()) {
      // If it parsed, the graph must be internally consistent.
      EXPECT_LE(result->NumEdges() * 2, result->NeighborArray().size() + 1);
    }
  }
}

TEST(IoRobustnessTest, BinaryReaderSurvivesRandomBytes) {
  Rng rng(406);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("ckg_bin");
    WriteBytes(path, RandomBinary(rng, 1 + rng.NextBounded(4000)));
    const auto result = ReadBinaryGraph(path);
    EXPECT_FALSE(result.ok());  // magic mismatch is all but certain
  }
}

TEST(IoRobustnessTest, BinaryReaderSurvivesBitFlips) {
  // Take a valid file and flip one byte at a spread of positions; the
  // reader must either reject it or produce a structurally valid graph
  // (flips in the neighbor payload can be undetectable by design).
  const Graph original = GenerateErdosRenyi(40, 100, 8);
  const std::string path = TempPath("flip.bin");
  ASSERT_TRUE(WriteBinaryGraph(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  Rng rng(407);
  for (int trial = 0; trial < 40; ++trial) {
    std::string corrupted = bytes;
    const std::size_t pos = rng.NextBounded(corrupted.size());
    corrupted[pos] = static_cast<char>(corrupted[pos] ^
                                       (1 << rng.NextBounded(8)));
    const std::string flip_path = TempPath("flip_case.bin");
    WriteBytes(flip_path, corrupted);
    const auto result = ReadBinaryGraph(flip_path);
    if (result.ok()) {
      EXPECT_EQ(result->Offsets().back(), result->NeighborArray().size());
    }
  }
}

TEST(IoRobustnessTest, MetisReaderSurvivesRandomText) {
  Rng rng(408);
  for (int trial = 0; trial < 30; ++trial) {
    const std::string path = TempPath("metis_text");
    WriteBytes(path, RandomText(rng, 1 + rng.NextBounded(2000)));
    const auto result = ReadMetisGraph(path);
    // Random text rarely forms a consistent header + adjacency; any OK
    // parse must still be a sane graph.
    if (result.ok()) {
      EXPECT_LE(result->NumEdges() * 2, result->NeighborArray().size() + 1);
    }
  }
}

TEST(IoRobustnessTest, TruncationSweepOnBinary) {
  const Graph original = GenerateBarabasiAlbert(60, 3, 2);
  const std::string path = TempPath("trunc_src.bin");
  ASSERT_TRUE(WriteBinaryGraph(original, path).ok());
  std::ifstream in(path, std::ios::binary);
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  for (const double fraction : {0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    const std::string cut_path = TempPath("trunc_case.bin");
    WriteBytes(cut_path, bytes.substr(
                             0, static_cast<std::size_t>(
                                    static_cast<double>(bytes.size()) *
                                    fraction)));
    const auto result = ReadBinaryGraph(cut_path);
    EXPECT_FALSE(result.ok()) << "fraction " << fraction;
  }
}

}  // namespace
}  // namespace corekit
