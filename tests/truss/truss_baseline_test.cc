#include "corekit/truss/truss_baseline.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

TEST(TrussBaselineTest, AgreesWithIncrementalOnZoo) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    if (graph.NumEdges() == 0) continue;
    const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
    for (const Metric metric :
         {Metric::kAverageDegree, Metric::kInternalDensity,
          Metric::kCutRatio, Metric::kConductance, Metric::kModularity}) {
      const TrussSetProfile optimal =
          FindBestTrussSet(graph, trusses, metric);
      const TrussSetProfile baseline =
          BaselineFindBestTrussSet(graph, trusses, metric);
      ASSERT_EQ(optimal.scores.size(), baseline.scores.size())
          << name << " " << MetricShortName(metric);
      for (std::size_t k = 2; k < optimal.scores.size(); ++k) {
        EXPECT_DOUBLE_EQ(optimal.scores[k], baseline.scores[k])
            << name << " " << MetricShortName(metric) << " k=" << k;
      }
      EXPECT_EQ(optimal.best_k, baseline.best_k)
          << name << " " << MetricShortName(metric);
    }
  }
}

TEST(TrussBaselineTest, ScratchPrimariesOnFig2) {
  const Graph g = corekit::testing::Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const PrimaryValues t4 = ScratchTrussSetPrimaries(g, trusses, 4);
  EXPECT_EQ(t4.num_vertices, 8u);
  EXPECT_EQ(t4.InternalEdges(), 12u);
  EXPECT_EQ(t4.boundary_edges, 3u);
  const PrimaryValues t2 = ScratchTrussSetPrimaries(g, trusses, 2);
  EXPECT_EQ(t2.num_vertices, 12u);
  EXPECT_EQ(t2.InternalEdges(), 19u);
}

TEST(TrussBaselineDeathTest, TriangleMetricRejected) {
  const Graph g = corekit::testing::Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  EXPECT_DEATH(
      {
        BaselineFindBestTrussSet(g, trusses,
                                 Metric::kClusteringCoefficient);
      },
      "out of scope");
}

}  // namespace
}  // namespace corekit
