#include "corekit/truss/best_truss_set.h"

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "corekit/core/naive_oracle.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

// Oracle: primary values of the k-truss set by explicit construction.
PrimaryValues NaiveTrussSetPrimaries(const Graph& graph,
                                     const TrussDecomposition& trusses,
                                     VertexId k) {
  PrimaryValues pv;
  std::vector<bool> in_v(graph.NumVertices(), false);
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    if (trusses.truss[e] < k) continue;
    pv.internal_edges_x2 += 2;
    in_v[trusses.edges[e].first] = true;
    in_v[trusses.edges[e].second] = true;
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    if (!in_v[v]) continue;
    ++pv.num_vertices;
    for (const VertexId u : graph.Neighbors(v)) {
      pv.boundary_edges += in_v[u] ? 0u : 1u;
    }
  }
  return pv;
}

TEST(BestTrussSetTest, Fig2Profile) {
  const Graph g = Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const auto primaries = ComputeTrussSetPrimaries(g, trusses);
  ASSERT_EQ(primaries.size(), 5u);
  // T_4 = the two K4s: 8 vertices, 12 edges, boundary = 3 (v3-v5, v3-v6,
  // v8-v9).
  EXPECT_EQ(primaries[4].num_vertices, 8u);
  EXPECT_EQ(primaries[4].InternalEdges(), 12u);
  EXPECT_EQ(primaries[4].boundary_edges, 3u);
  // T_3 adds the two shell triangles: every vertex but none of v8-v9's
  // bridging edge; V(T_3) = all 12 vertices, 18 edges.
  EXPECT_EQ(primaries[3].num_vertices, 12u);
  EXPECT_EQ(primaries[3].InternalEdges(), 18u);
  EXPECT_EQ(primaries[3].boundary_edges, 0u);
  // T_2 = whole graph (every edge has truss >= 2).
  EXPECT_EQ(primaries[2].num_vertices, 12u);
  EXPECT_EQ(primaries[2].InternalEdges(), 19u);
  EXPECT_EQ(primaries[2].boundary_edges, 0u);
}

TEST(BestTrussSetTest, Fig2BestKByAverageDegree) {
  const Graph g = Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const TrussSetProfile profile =
      FindBestTrussSet(g, trusses, Metric::kAverageDegree);
  // ad(T_2) = 38/12, ad(T_3) = 36/12, ad(T_4) = 24/8 = 3.0.
  EXPECT_NEAR(profile.scores[2], 2.0 * 19 / 12, 1e-12);
  EXPECT_NEAR(profile.scores[3], 3.0, 1e-12);
  EXPECT_NEAR(profile.scores[4], 3.0, 1e-12);
  EXPECT_EQ(profile.best_k, 2u);
}

TEST(BestTrussSetDeathTest, TriangleMetricRejected) {
  const Graph g = Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  EXPECT_DEATH(
      { FindBestTrussSet(g, trusses, Metric::kClusteringCoefficient); },
      "out of scope");
}

using ZooMetricParam = std::tuple<corekit::testing::NamedGraph, Metric>;

class BestTrussSetZooTest : public ::testing::TestWithParam<ZooMetricParam> {
};

TEST_P(BestTrussSetZooTest, PrimariesMatchOracleAtEveryLevel) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumEdges() == 0) return;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const auto primaries = ComputeTrussSetPrimaries(graph, trusses);
  for (VertexId k = 2; k <= trusses.tmax; ++k) {
    const PrimaryValues naive = NaiveTrussSetPrimaries(graph, trusses, k);
    EXPECT_EQ(primaries[k].num_vertices, naive.num_vertices)
        << named.name << " k=" << k;
    EXPECT_EQ(primaries[k].internal_edges_x2, naive.internal_edges_x2)
        << named.name << " k=" << k;
    EXPECT_EQ(primaries[k].boundary_edges, naive.boundary_edges)
        << named.name << " k=" << k;
  }
}

TEST_P(BestTrussSetZooTest, BestKAttainsMaximum) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumEdges() == 0 || MetricNeedsTriangles(metric)) return;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const TrussSetProfile profile = FindBestTrussSet(graph, trusses, metric);
  for (VertexId k = 2; k < profile.scores.size(); ++k) {
    EXPECT_LE(profile.scores[k], profile.best_score + 1e-12)
        << named.name << " " << MetricShortName(metric) << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesMetrics, BestTrussSetZooTest,
    ::testing::Combine(::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
                       ::testing::Values(Metric::kAverageDegree,
                                         Metric::kInternalDensity,
                                         Metric::kCutRatio,
                                         Metric::kConductance,
                                         Metric::kModularity)),
    [](const ::testing::TestParamInfo<ZooMetricParam>& param_info) {
      return std::get<0>(param_info.param).name + std::string("_") +
             MetricShortName(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace corekit
