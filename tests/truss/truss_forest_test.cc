#include "corekit/truss/truss_forest.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/truss/best_single_truss.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

// Reference: connected components of the truss->=k edge subgraph, each as
// a sorted edge-id set.
std::vector<std::set<EdgeId>> NaiveTrussComponents(
    const Graph& graph, const TrussDecomposition& trusses, VertexId k) {
  const VertexId n = graph.NumVertices();
  // Union-find over vertices via the qualifying edges.
  std::vector<VertexId> parent(n);
  for (VertexId v = 0; v < n; ++v) parent[v] = v;
  std::function<VertexId(VertexId)> find = [&](VertexId v) {
    return parent[v] == v ? v : parent[v] = find(parent[v]);
  };
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    if (trusses.truss[e] < k) continue;
    parent[find(trusses.edges[e].first)] = find(trusses.edges[e].second);
  }
  std::map<VertexId, std::set<EdgeId>> components;
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    if (trusses.truss[e] < k) continue;
    components[find(trusses.edges[e].first)].insert(e);
  }
  std::vector<std::set<EdgeId>> result;
  for (auto& [root, edges] : components) result.push_back(std::move(edges));
  return result;
}

TEST(TrussForestTest, EdgelessGraph) {
  const Graph g = GraphBuilder::FromEdges(3, {});
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const TrussForest forest(g, trusses);
  EXPECT_EQ(forest.NumNodes(), 0u);
}

TEST(TrussForestTest, Fig2Structure) {
  // Expected forest: two level-4 nodes (the K4s); one level-3 node (the
  // six shell-triangle edges) whose child is the left K4 (shares v3); one
  // level-2 root (the bridge v8-v9) with the level-3 node and the right
  // K4 as children.
  const Graph g = Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const TrussForest forest(g, trusses);
  ASSERT_EQ(forest.NumNodes(), 4u);

  EXPECT_EQ(forest.node(0).level, 4u);
  EXPECT_EQ(forest.node(1).level, 4u);
  EXPECT_EQ(forest.node(2).level, 3u);
  EXPECT_EQ(forest.node(3).level, 2u);
  EXPECT_EQ(forest.node(3).parent, TrussForest::kNoNode);
  EXPECT_EQ(forest.node(2).parent, 3u);

  // Identify which K4 node is which by vertex content.
  const auto vertices0 = forest.TrussVertices(trusses, 0);
  const auto vertices1 = forest.TrussVertices(trusses, 1);
  const std::vector<VertexId> left{V(1), V(2), V(3), V(4)};
  const std::vector<VertexId> right{V(9), V(10), V(11), V(12)};
  const TrussForest::NodeId left_node = vertices0 == left ? 0u : 1u;
  const TrussForest::NodeId right_node = left_node == 0 ? 1u : 0u;
  EXPECT_EQ(forest.TrussVertices(trusses, left_node), left);
  EXPECT_EQ(forest.TrussVertices(trusses, right_node), right);

  // The left K4 hangs under the level-3 node; the right under the root.
  EXPECT_EQ(forest.node(left_node).parent, 2u);
  EXPECT_EQ(forest.node(right_node).parent, 3u);

  // Edge counts: 6 + 6 + 6 + 1 = 19 total; level-3 truss has 12 edges.
  EXPECT_EQ(forest.TrussEdgeCount(3), 19u);
  EXPECT_EQ(forest.TrussEdgeCount(2), 12u);
  EXPECT_EQ(forest.TrussEdgeCount(left_node), 6u);
  EXPECT_EQ(forest.node(2).edges.size(), 6u);
  EXPECT_EQ(forest.node(3).edges.size(), 1u);

  // The level-3 truss spans v1..v8.
  const auto level3_vertices = forest.TrussVertices(trusses, 2);
  EXPECT_EQ(level3_vertices.size(), 8u);
}

TEST(TrussForestTest, SingleTriangle) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const TrussForest forest(g, trusses);
  ASSERT_EQ(forest.NumNodes(), 1u);
  EXPECT_EQ(forest.node(0).level, 3u);
  EXPECT_EQ(forest.node(0).edges.size(), 3u);
}

class TrussForestZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(TrussForestZooTest, EveryEdgeInExactlyOneNode) {
  const Graph& graph = GetParam().graph;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const TrussForest forest(graph, trusses);
  std::vector<int> covered(trusses.edges.size(), 0);
  for (TrussForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    EXPECT_FALSE(forest.node(i).edges.empty());
    for (const EdgeId e : forest.node(i).edges) {
      EXPECT_EQ(trusses.truss[e], forest.node(i).level);
      ++covered[e];
    }
  }
  for (EdgeId e = 0; e < covered.size(); ++e) {
    EXPECT_EQ(covered[e], 1) << "edge " << e;
  }
}

TEST_P(TrussForestZooTest, NodesMatchNaiveComponentsAtEveryLevel) {
  const Graph& graph = GetParam().graph;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const TrussForest forest(graph, trusses);

  // Forest trusses by level.
  std::map<VertexId, std::set<std::set<EdgeId>>> forest_components;
  for (TrussForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const auto edges = forest.TrussEdges(i);
    forest_components[forest.node(i).level].insert(
        std::set<EdgeId>(edges.begin(), edges.end()));
  }

  // Every node's truss must be a *component* of its level, and every
  // component holding a level-exact edge must have a node.
  for (const auto& [level, trusses_at_level] : forest_components) {
    const auto naive = NaiveTrussComponents(graph, trusses, level);
    const std::set<std::set<EdgeId>> naive_set(naive.begin(), naive.end());
    for (const auto& component : trusses_at_level) {
      EXPECT_TRUE(naive_set.contains(component))
          << GetParam().name << " level " << level;
    }
  }
  for (VertexId k = 2; k <= trusses.tmax; ++k) {
    for (const auto& component : NaiveTrussComponents(graph, trusses, k)) {
      const bool has_exact_edge =
          std::any_of(component.begin(), component.end(),
                      [&](EdgeId e) { return trusses.truss[e] == k; });
      if (has_exact_edge) {
        EXPECT_TRUE(forest_components[k].contains(component))
            << GetParam().name << " missing node at level " << k;
      }
    }
  }
}

TEST_P(TrussForestZooTest, ParentsHaveStrictlyLowerLevel) {
  const Graph& graph = GetParam().graph;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const TrussForest forest(graph, trusses);
  for (TrussForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const auto parent = forest.node(i).parent;
    if (parent == TrussForest::kNoNode) continue;
    EXPECT_GT(parent, i);
    EXPECT_LT(forest.node(parent).level, forest.node(i).level);
  }
}

TEST_P(TrussForestZooTest, SingleTrussPrimariesMatchDirectComputation) {
  const Graph& graph = GetParam().graph;
  if (graph.NumEdges() == 0) return;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph);
  const TrussForest forest(graph, trusses);
  const auto primaries = ComputeSingleTrussPrimaries(graph, trusses, forest);
  for (TrussForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const auto vertices = forest.TrussVertices(trusses, i);
    std::vector<bool> in_v(graph.NumVertices(), false);
    for (const VertexId v : vertices) in_v[v] = true;
    std::uint64_t boundary = 0;
    for (const VertexId v : vertices) {
      for (const VertexId u : graph.Neighbors(v)) {
        boundary += in_v[u] ? 0u : 1u;
      }
    }
    EXPECT_EQ(primaries[i].num_vertices, vertices.size()) << i;
    EXPECT_EQ(primaries[i].InternalEdges(), forest.TrussEdgeCount(i)) << i;
    EXPECT_EQ(primaries[i].boundary_edges, boundary) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, TrussForestZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

TEST(BestSingleTrussTest, Fig2Scores) {
  const Graph g = Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const TrussForest forest(g, trusses);
  const SingleTrussProfile profile =
      FindBestSingleTruss(g, trusses, forest, Metric::kAverageDegree);
  ASSERT_EQ(profile.scores.size(), 4u);
  // K4s: ad 3; level-3 truss (12 edges on 8 vertices): ad 3; whole graph:
  // 2*19/12.
  EXPECT_DOUBLE_EQ(profile.scores[0], 3.0);
  EXPECT_DOUBLE_EQ(profile.scores[1], 3.0);
  EXPECT_DOUBLE_EQ(profile.scores[2], 3.0);
  EXPECT_NEAR(profile.scores[3], 2.0 * 19 / 12, 1e-12);
  EXPECT_EQ(profile.best_k, 2u);
}

TEST(BestSingleTrussDeathTest, TriangleMetricRejected) {
  const Graph g = Fig2Graph();
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const TrussForest forest(g, trusses);
  EXPECT_DEATH(
      {
        FindBestSingleTruss(g, trusses, forest,
                            Metric::kClusteringCoefficient);
      },
      "out of scope");
}

}  // namespace
}  // namespace corekit
