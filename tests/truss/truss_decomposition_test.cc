#include "corekit/truss/truss_decomposition.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

// Truss number of the edge (u, v) in a decomposition (paper ids).
VertexId TrussOf(const TrussDecomposition& trusses, VertexId u, VertexId v) {
  if (u > v) std::swap(u, v);
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    if (trusses.edges[e] == Edge{u, v}) return trusses.truss[e];
  }
  ADD_FAILURE() << "edge (" << u << "," << v << ") not found";
  return 0;
}

TEST(TrussDecompositionTest, EdgelessGraph) {
  const TrussDecomposition trusses =
      ComputeTrussDecomposition(GraphBuilder::FromEdges(4, {}));
  EXPECT_EQ(trusses.tmax, 0u);
  EXPECT_TRUE(trusses.truss.empty());
}

TEST(TrussDecompositionTest, TriangleFreeGraphIsAllTwo) {
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  EXPECT_EQ(trusses.tmax, 2u);
  for (const VertexId t : trusses.truss) EXPECT_EQ(t, 2u);
}

TEST(TrussDecompositionTest, TriangleIsThreeTruss) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  EXPECT_EQ(trusses.tmax, 3u);
  for (const VertexId t : trusses.truss) EXPECT_EQ(t, 3u);
}

TEST(TrussDecompositionTest, CliqueTrussIsSize) {
  // Every edge of K_q is in q-2 triangles: truss number q.
  for (const VertexId q : {4u, 5u, 7u}) {
    GraphBuilder builder(q);
    for (VertexId u = 0; u < q; ++u) {
      for (VertexId v = u + 1; v < q; ++v) builder.AddEdge(u, v);
    }
    const TrussDecomposition trusses =
        ComputeTrussDecomposition(builder.Build());
    EXPECT_EQ(trusses.tmax, q);
    for (const VertexId t : trusses.truss) EXPECT_EQ(t, q) << "K" << q;
  }
}

TEST(TrussDecompositionTest, Fig2TrussNumbers) {
  // The two K4s are 4-trusses; the two 2-shell triangles (v3,v5,v6) and
  // (v6,v7,v8) are 3-truss; the bridge v8-v9 closes no triangle.
  const TrussDecomposition trusses = ComputeTrussDecomposition(Fig2Graph());
  EXPECT_EQ(trusses.tmax, 4u);
  EXPECT_EQ(TrussOf(trusses, V(1), V(2)), 4u);
  EXPECT_EQ(TrussOf(trusses, V(3), V(4)), 4u);
  EXPECT_EQ(TrussOf(trusses, V(9), V(12)), 4u);
  EXPECT_EQ(TrussOf(trusses, V(5), V(6)), 3u);
  EXPECT_EQ(TrussOf(trusses, V(3), V(5)), 3u);
  EXPECT_EQ(TrussOf(trusses, V(3), V(6)), 3u);
  EXPECT_EQ(TrussOf(trusses, V(6), V(7)), 3u);
  EXPECT_EQ(TrussOf(trusses, V(7), V(8)), 3u);
  EXPECT_EQ(TrussOf(trusses, V(8), V(9)), 2u);
}

TEST(TrussDecompositionTest, TwoCliquesSharingAnEdge) {
  // K5 on {0..4} and K4 on {3,4,5,6} share edge (3,4); the shared edge
  // takes the larger truss.
  GraphBuilder builder(7);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(u, v);
  }
  const VertexId k4[] = {3, 4, 5, 6};
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) builder.AddEdge(k4[i], k4[j]);
  }
  const TrussDecomposition trusses =
      ComputeTrussDecomposition(builder.Build());
  EXPECT_EQ(trusses.tmax, 5u);
  EXPECT_EQ(TrussOf(trusses, 0, 1), 5u);
  EXPECT_EQ(TrussOf(trusses, 3, 4), 5u);  // shared edge: in the K5
  EXPECT_EQ(TrussOf(trusses, 5, 6), 4u);
}

TEST(TrussDecompositionTest, LevelSizesSumToEdgeCount) {
  const Graph g = GenerateWattsStrogatz(200, 4, 0.1, 3);
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  EdgeId total = 0;
  for (const EdgeId c : trusses.LevelSizes()) total += c;
  EXPECT_EQ(total, g.NumEdges());
}

TEST(TrussDecompositionTest, TrussAtMostCorenessPlusOne) {
  // Classic relation: t(e) <= min(c(u), c(v)) + 1 for e = (u, v).
  const Graph g = GenerateBarabasiAlbert(300, 4, 9);
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    const auto [u, v] = trusses.edges[e];
    EXPECT_LE(trusses.truss[e],
              std::min(cores.coreness[u], cores.coreness[v]) + 1);
  }
}

TEST(TrussDecompositionTest, KTrussSatisfiesDefinition) {
  // Within the subgraph of truss >= k edges, every edge must close at
  // least k-2 triangles (using only truss >= k edges).
  const Graph g = GenerateErdosRenyi(60, 400, 21);
  const TrussDecomposition trusses = ComputeTrussDecomposition(g);
  std::map<Edge, VertexId> truss_of;
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    truss_of[trusses.edges[e]] = trusses.truss[e];
  }
  auto level = [&](VertexId a, VertexId b) {
    if (a > b) std::swap(a, b);
    const auto it = truss_of.find({a, b});
    return it == truss_of.end() ? VertexId{0} : it->second;
  };
  for (VertexId k = 3; k <= trusses.tmax; ++k) {
    for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
      if (trusses.truss[e] < k) continue;
      const auto [u, v] = trusses.edges[e];
      VertexId support = 0;
      for (const VertexId w : g.Neighbors(u)) {
        if (w != v && level(u, w) >= k && level(v, w) >= k) ++support;
      }
      EXPECT_GE(support + 2, k) << "edge (" << u << "," << v << ") k=" << k;
    }
  }
}

TEST(TrussDecompositionTest, MatchesNaiveOnSmallGraphs) {
  const std::vector<Graph> graphs = {
      Fig2Graph(),
      GenerateErdosRenyi(20, 60, 5),
      GenerateErdosRenyi(25, 120, 6),
      GenerateWattsStrogatz(24, 3, 0.2, 7),
  };
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    const TrussDecomposition fast = ComputeTrussDecomposition(graphs[i]);
    const std::vector<VertexId> naive = NaiveTrussNumbers(graphs[i]);
    EXPECT_EQ(fast.truss, naive) << "graph " << i;
  }
}

}  // namespace
}  // namespace corekit
