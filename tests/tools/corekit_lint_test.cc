#include "corekit_lint_lib.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

namespace corekit::lint {
namespace {

int CountRule(const std::vector<Violation>& violations,
              const std::string& rule) {
  int count = 0;
  for (const Violation& v : violations) {
    if (v.rule == rule) ++count;
  }
  return count;
}

TEST(StripCommentsAndStringsTest, RemovesCommentsKeepsLineStructure) {
  const std::string in =
      "int a; // new int\n"
      "/* delete\n"
      "   everything */ int b;\n"
      "const char* s = \"new X\";\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("new"), std::string::npos);
  EXPECT_EQ(out.find("delete"), std::string::npos);
  EXPECT_NE(out.find("int a;"), std::string::npos);
  EXPECT_NE(out.find("int b;"), std::string::npos);
  // Quotes survive with blanked contents.
  EXPECT_NE(out.find("\"\""), std::string::npos);
  // Same number of newlines in and out.
  const auto newlines = [](const std::string& s) {
    return std::count(s.begin(), s.end(), '\n');
  };
  EXPECT_EQ(newlines(in), newlines(out));
}

TEST(StripCommentsAndStringsTest, HandlesRawStrings) {
  const std::string in = "auto j = R\"({\"key\": \"new value\"})\"; int x;";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(out.find("new"), std::string::npos);
  EXPECT_NE(out.find("int x;"), std::string::npos);
}

TEST(FormatViolationTest, IncludesLineOnlyWhenKnown) {
  EXPECT_EQ(FormatViolation({"a/b.h", 12, "no-endl", "msg"}),
            "a/b.h:12: [no-endl] msg");
  EXPECT_EQ(FormatViolation({"a/b.h", 0, "pragma-once", "msg"}),
            "a/b.h: [pragma-once] msg");
}

// --- pragma-once ------------------------------------------------------------

TEST(PragmaOnceTest, FlagsHeaderWithoutPragma) {
  const auto violations = LintContent("src/corekit/util/x.h", "int f();\n");
  EXPECT_EQ(CountRule(violations, "pragma-once"), 1);
}

TEST(PragmaOnceTest, FlagsLegacyGuard) {
  const std::string content =
      "#ifndef COREKIT_UTIL_X_H_\n#define COREKIT_UTIL_X_H_\n"
      "#pragma once\n#endif\n";
  const auto violations = LintContent("src/corekit/util/x.h", content);
  EXPECT_EQ(CountRule(violations, "pragma-once"), 1);
}

TEST(PragmaOnceTest, CleanHeaderAndSourcesPass) {
  EXPECT_EQ(CountRule(LintContent("src/corekit/util/x.h",
                                  "#pragma once\nint f();\n"),
                      "pragma-once"),
            0);
  // .cc files are out of scope for the rule.
  EXPECT_EQ(CountRule(LintContent("src/corekit/util/x.cc", "int f() {}\n"),
                      "pragma-once"),
            0);
}

// --- no-endl ----------------------------------------------------------------

TEST(NoEndlTest, FlagsEndlUnderSrcOnly) {
  const std::string content = "#include <iostream>\nvoid f() { std::cout << std::endl; }\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.cc", content), "no-endl"),
            1);
  // Outside src/ the rule does not apply (CLIs may flush freely).
  EXPECT_EQ(CountRule(LintContent("tools/x.cc", content), "no-endl"), 0);
  // Mentions in comments and strings don't count.
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/y.cc",
                                  "// std::endl is banned\n"
                                  "const char* s = \"std::endl\";\n"),
                      "no-endl"),
            0);
}

// --- naked-new --------------------------------------------------------------

TEST(NakedNewTest, FlagsNewDeleteAndCAllocs) {
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.cc",
                                  "int* p = new int(3);\n"),
                      "naked-new"),
            1);
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/core/x.cc", "delete ptr;\n"),
                "naked-new"),
      1);
  EXPECT_EQ(CountRule(LintContent("bench/x.cc", "void* p = malloc(8);\n"),
                      "naked-new"),
            1);
}

TEST(NakedNewTest, AllowsDeletedFunctionsAndIdentifiers) {
  const std::string content =
      "struct S { S(const S&) = delete; };\n"
      "int new_in_current = 0;  // 'new' inside an identifier\n"
      "int renewed = 1;\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.h",
                                  "#pragma once\n" + content),
                      "naked-new"),
            0);
}

TEST(NakedNewTest, UtilAndTestsAreExempt) {
  EXPECT_EQ(CountRule(LintContent("src/corekit/util/arena.cc",
                                  "char* p = new char[64];\n"),
                      "naked-new"),
            0);
  EXPECT_EQ(CountRule(LintContent("tests/core/x_test.cc",
                                  "int* p = new int(3);\n"),
                      "naked-new"),
            0);
}

TEST(NakedNewTest, WaiverSuppressesOnItsLine) {
  const std::string content =
      "auto& reg = *new Registry();  // corekit-lint: allow(naked-new)\n"
      "auto& other = *new Registry();\n";
  const auto violations = LintContent("bench/x.cc", content);
  ASSERT_EQ(CountRule(violations, "naked-new"), 1);
  EXPECT_EQ(violations[0].line, 2);
}

// --- bench-suite ------------------------------------------------------------

TEST(BenchSuiteTest, AcceptsKnownSuitesAndBases) {
  const std::string content =
      "void Run(BenchRunner& run) {\n"
      "  run.Case({\"fig7/\" + name, SuitesPlusSmoke(\"paper\", name)},\n"
      "           body);\n"
      "  run.Case({\"ext_x/\" + name, {\"ext\"}}, body);\n"
      "  TablePrinter table({\"k\", \"ad\", \"cr\"});\n"
      "}\n"
      "COREKIT_BENCH_UNIT(x, Run);\n";
  EXPECT_EQ(CountRule(LintContent("bench/x.cc", content), "bench-suite"), 0);
}

TEST(BenchSuiteTest, FlagsUnknownSuiteLiteral) {
  const std::string content =
      "run.Case({\"fig9/\" + name, {\"papr\"}}, body);\n"
      "COREKIT_BENCH_UNIT(x, Run);\n";
  const auto violations = LintContent("bench/x.cc", content);
  ASSERT_EQ(CountRule(violations, "bench-suite"), 1);
  EXPECT_NE(violations[0].message.find("papr"), std::string::npos);
}

TEST(BenchSuiteTest, FlagsUnknownSuitesPlusSmokeBase) {
  const std::string content =
      "run.Case({name, SuitesPlusSmoke(\"smoke\", name)}, body);\n"
      "COREKIT_BENCH_UNIT(x, Run);\n";
  EXPECT_EQ(CountRule(LintContent("bench/x.cc", content), "bench-suite"), 1);
}

TEST(BenchSuiteTest, FlagsUnitWithNoSuiteDeclaration) {
  const std::string content = "COREKIT_BENCH_UNIT(x, Run);\n";
  const auto violations = LintContent("bench/x.cc", content);
  ASSERT_EQ(CountRule(violations, "bench-suite"), 1);
  EXPECT_EQ(violations[0].line, 0);
}

TEST(BenchSuiteTest, HarnessIsExempt) {
  EXPECT_EQ(CountRule(LintContent("bench/harness/harness.cc",
                                  "COREKIT_BENCH_UNIT(x, Run);\n"),
                      "bench-suite"),
            0);
}

// --- stage-table ------------------------------------------------------------

namespace {

std::string StageHeader(const std::string& enums, const std::string& names) {
  return "#pragma once\nnamespace corekit {\n"
         "inline constexpr int kStageStatsSchemaVersion = 2;\n"
         "enum class EngineStage : int {\n" +
         enums +
         "  kCount,\n};\n"
         "inline constexpr std::string_view kEngineStageNames[] = {\n" +
         names + "};\n}  // namespace corekit\n";
}

}  // namespace

TEST(StageTableTest, InSyncTablePasses) {
  const std::string content = StageHeader(
      "  kDecompose = 0,\n  kOrder,\n", "    \"decompose\",\n    \"order\",\n");
  EXPECT_EQ(CountRule(LintContent("src/corekit/engine/stage_stats.h", content),
                      "stage-table"),
            0);
}

TEST(StageTableTest, FlagsCountMismatch) {
  const std::string content =
      StageHeader("  kDecompose = 0,\n  kOrder,\n", "    \"decompose\",\n");
  EXPECT_EQ(CountRule(LintContent("src/corekit/engine/stage_stats.h", content),
                      "stage-table"),
            1);
}

TEST(StageTableTest, FlagsNameMismatch) {
  const std::string content = StageHeader(
      "  kDecompose = 0,\n  kOrder,\n", "    \"decompose\",\n    \"forest\",\n");
  const auto violations =
      LintContent("src/corekit/engine/stage_stats.h", content);
  ASSERT_EQ(CountRule(violations, "stage-table"), 1);
  EXPECT_NE(violations[0].message.find("kOrder"), std::string::npos);
}

TEST(StageTableTest, FlagsUnparsableHeader) {
  EXPECT_EQ(CountRule(LintContent("src/corekit/engine/stage_stats.h",
                                  "#pragma once\nint x;\n"),
                      "stage-table"),
            1);
}

TEST(StageTableTest, OnlyAppliesToStageStatsHeader) {
  EXPECT_EQ(CountRule(LintContent("src/corekit/engine/core_engine.h",
                                  "#pragma once\nint x;\n"),
                      "stage-table"),
            0);
}

TEST(StageTableTest, FlagsDuplicateStageName) {
  const std::string content = StageHeader(
      "  kOrder = 0,\n  kForest,\n", "    \"order\",\n    \"order\",\n");
  const auto violations =
      LintContent("src/corekit/engine/stage_stats.h", content);
  ASSERT_GE(CountRule(violations, "stage-table"), 1);
  bool found = false;
  for (const auto& violation : violations) {
    if (violation.message.find("duplicate stage name") != std::string::npos) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(StageTableTest, FlagsMissingSchemaVersionConstant) {
  // Same in-sync table, but no kStageStatsSchemaVersion anywhere: stage
  // layout changes must be accompanied by a version bump, so the constant
  // has to live in this header.
  const std::string content =
      "#pragma once\nnamespace corekit {\n"
      "enum class EngineStage : int {\n  kDecompose = 0,\n  kOrder,\n"
      "  kCount,\n};\n"
      "inline constexpr std::string_view kEngineStageNames[] = {\n"
      "    \"decompose\",\n    \"order\",\n};\n}  // namespace corekit\n";
  const auto violations =
      LintContent("src/corekit/engine/stage_stats.h", content);
  ASSERT_EQ(CountRule(violations, "stage-table"), 1);
  EXPECT_NE(violations[0].message.find("kStageStatsSchemaVersion"),
            std::string::npos);
}

// --- layering ---------------------------------------------------------------

TEST(LayeringTest, FlagsUpwardInclude) {
  const std::string content =
      "#pragma once\n#include \"corekit/engine/core_engine.h\"\n";
  const auto violations = LintContent("src/corekit/core/x.h", content);
  ASSERT_EQ(CountRule(violations, "layering"), 1);
  EXPECT_EQ(violations[0].line, 2);
}

TEST(LayeringTest, AllowsDownwardAndSameLayerIncludes) {
  const std::string content =
      "#pragma once\n"
      "#include \"corekit/analysis/invariant_audit.h\"\n"
      "#include \"corekit/core/core_decomposition.h\"\n"
      "#include \"corekit/engine/stage_stats.h\"\n"
      "#include \"corekit/util/logging.h\"\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/engine/core_engine.h", content),
                      "layering"),
            0);
}

TEST(LayeringTest, EngineMayIncludeDynamicButNotViceVersa) {
  // The mutable-engine wiring: engine depends on dynamic (ApplyBatch
  // routes through DynamicCoreIndex)...
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/engine/core_engine.h",
                            "#include \"corekit/dynamic/dynamic_core.h\"\n"),
                "layering"),
      0);
  // ...but dynamic must stay engine-free (embeddable on its own).
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/dynamic/dynamic_core.cc",
                            "#include \"corekit/engine/core_engine.h\"\n"),
                "layering"),
      1);
}

TEST(LayeringTest, SimdSitsBelowGraph) {
  // The SIMD kernels speak raw uint32 spans so graph, core, and
  // parallel may all call them...
  for (const char* includer :
       {"src/corekit/graph/graph.cc", "src/corekit/core/triangle_scoring.cc",
        "src/corekit/parallel/frontier_truss.cc"}) {
    EXPECT_EQ(CountRule(LintContent(includer,
                                    "#include \"corekit/simd/intersect.h\"\n"),
                        "layering"),
              0)
        << includer;
  }
  // ...but simd itself may only see util — never graph types.
  EXPECT_EQ(CountRule(LintContent("src/corekit/simd/intersect.cc",
                                  "#include \"corekit/util/status.h\"\n"),
                      "layering"),
            0);
  EXPECT_EQ(CountRule(LintContent("src/corekit/simd/intersect.cc",
                                  "#include \"corekit/graph/graph.h\"\n"),
                      "layering"),
            1);
}

TEST(LayeringTest, ParallelMayIncludeTrussButNotViceVersa) {
  // The frontier truss peel: parallel depends on truss for the shared
  // edge-slot/support helpers...
  EXPECT_EQ(
      CountRule(
          LintContent("src/corekit/parallel/frontier_truss.cc",
                      "#include \"corekit/truss/truss_decomposition.h\"\n"),
          "layering"),
      0);
  // ...but the serial truss module must stay pool-free.
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/truss/truss_decomposition.cc",
                            "#include \"corekit/parallel/frontier_peel.h\"\n"),
                "layering"),
      1);
}

TEST(LayeringTest, ServerMayIncludeEngineButNotViceVersa) {
  // The serving tier: server depends on engine (registry leases feed
  // wire dispatch)...
  EXPECT_EQ(
      CountRule(
          LintContent("src/corekit/server/engine_service.cc",
                      "#include \"corekit/engine/engine_registry.h\"\n"),
          "layering"),
      0);
  // ...but engine must stay transport-free (embeddable without a
  // server).
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/engine/engine_registry.cc",
                            "#include \"corekit/server/wire_protocol.h\"\n"),
                "layering"),
      1);
}

TEST(LayeringTest, ServerReachesTheWholeAnalyticsStack) {
  const std::string content =
      "#include \"corekit/analysis/invariant_audit.h\"\n"
      "#include \"corekit/core/metrics.h\"\n"
      "#include \"corekit/truss/truss_decomposition.h\"\n"
      "#include \"corekit/util/status.h\"\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/server/engine_service.cc",
                                  content),
                      "layering"),
            0);
}

TEST(LayeringTest, GraphMustNotIncludeCore) {
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/graph/graph_stats.cc",
                            "#include \"corekit/core/core_decomposition.h\"\n"),
                "layering"),
      1);
}

TEST(LayeringTest, UnknownSubsystemIsFlagged) {
  const auto violations =
      LintContent("src/corekit/quantum/solver.h", "#pragma once\n");
  ASSERT_EQ(CountRule(violations, "layering"), 1);
  EXPECT_NE(violations[0].message.find("quantum"), std::string::npos);
}

TEST(LayeringTest, UmbrellaHeaderIsExempt) {
  EXPECT_EQ(CountRule(LintContent("src/corekit/corekit.h",
                                  "#pragma once\n#include "
                                  "\"corekit/apps/community_search.h\"\n"),
                      "layering"),
            0);
}

// --- lock-discipline --------------------------------------------------------

TEST(LockDisciplineTest, BansRawStdPrimitivesUnderSrcOnly) {
  const std::string content =
      "#include <mutex>\n"
      "class X {\n"
      "  std::mutex mu_;\n"
      "};\n";
  EXPECT_GE(CountRule(LintContent("src/corekit/core/x.cc", content),
                      "lock-discipline"),
            1);
  // Outside src/ the std primitives are fine (tests and tools are not
  // part of the annotated surface).
  EXPECT_EQ(CountRule(LintContent("tests/core/x_test.cc", content),
                      "lock-discipline"),
            0);
  EXPECT_EQ(CountRule(LintContent("tools/x.cc", content), "lock-discipline"),
            0);
}

TEST(LockDisciplineTest, BansStdLockRaiiAndCondvars) {
  EXPECT_GE(CountRule(LintContent("src/corekit/core/x.cc",
                                  "void F() { std::lock_guard<std::mutex> "
                                  "lock(mu_); }\n"),
                      "lock-discipline"),
            1);
  EXPECT_GE(CountRule(LintContent("src/corekit/core/y.cc",
                                  "std::condition_variable cv_;\n"),
                      "lock-discipline"),
            1);
  EXPECT_GE(CountRule(LintContent("src/corekit/core/z.cc",
                                  "std::scoped_lock lock(a_, b_);\n"),
                      "lock-discipline"),
            1);
}

TEST(LockDisciplineTest, WrapperHeaderItselfIsExempt) {
  EXPECT_EQ(
      CountRule(LintContent("src/corekit/util/thread_annotations.h",
                            "#pragma once\nclass Mutex { std::mutex mu_; };\n"),
                "lock-discipline"),
      0);
}

TEST(LockDisciplineTest, MutexMemberNeedsGuardedBySibling) {
  const std::string bare =
      "#pragma once\n"
      "class X {\n"
      "  corekit::Mutex mutex_;\n"
      "  int value_ = 0;\n"
      "};\n";
  const auto violations = LintContent("src/corekit/core/x.h", bare);
  ASSERT_EQ(CountRule(violations, "lock-discipline"), 1);
  bool mentions_member = false;
  for (const auto& violation : violations) {
    if (violation.message.find("mutex_") != std::string::npos) {
      mentions_member = true;
    }
  }
  EXPECT_TRUE(mentions_member);

  const std::string guarded =
      "#pragma once\n"
      "class X {\n"
      "  corekit::Mutex mutex_;\n"
      "  int value_ COREKIT_GUARDED_BY(mutex_) = 0;\n"
      "};\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.h", guarded),
                      "lock-discipline"),
            0);
}

TEST(LockDisciplineTest, MutexMemberWaiverSuppresses) {
  const std::string content =
      "#pragma once\n"
      "class X {\n"
      "  corekit::Mutex mutex_;  // corekit-lint: "
      "allow(lock-discipline)\n"
      "};\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.h", content),
                      "lock-discipline"),
            0);
}

TEST(LockDisciplineTest, CondVarMemberNeedsSomeGuardedState) {
  const std::string bare =
      "#pragma once\n"
      "class X {\n"
      "  corekit::Mutex mutex_;\n"
      "  corekit::CondVar cv_;\n"
      "  int value_ = 0;\n"
      "};\n";
  // Two findings: the unguarded mutex sibling and the condvar with no
  // guarded state anywhere in the file.
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.h", bare),
                      "lock-discipline"),
            2);

  const std::string guarded =
      "#pragma once\n"
      "class X {\n"
      "  corekit::Mutex mutex_;\n"
      "  corekit::CondVar cv_;\n"
      "  int value_ COREKIT_GUARDED_BY(mutex_) = 0;\n"
      "};\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.h", guarded),
                      "lock-discipline"),
            0);
}

TEST(LockDisciplineTest, ConsistentLockOrderPasses) {
  const std::string content =
      "void A() {\n"
      "  MutexLock lock_a(a_);\n"
      "  MutexLock lock_b(b_);\n"
      "}\n"
      "void B() {\n"
      "  MutexLock lock_a(a_);\n"
      "  MutexLock lock_b(b_);\n"
      "}\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.cc", content),
                      "lock-discipline"),
            0);
}

TEST(LockDisciplineTest, FlagsLockOrderCycleFromScopedNesting) {
  const std::string content =
      "void A() {\n"
      "  MutexLock lock_a(a_);\n"
      "  MutexLock lock_b(b_);\n"
      "}\n"
      "void B() {\n"
      "  MutexLock lock_b(b_);\n"
      "  MutexLock lock_a(a_);\n"
      "}\n";
  const auto violations = LintContent("src/corekit/core/x.cc", content);
  ASSERT_GE(CountRule(violations, "lock-discipline"), 1);
  bool names_cycle = false;
  for (const auto& violation : violations) {
    if (violation.message.find("a_") != std::string::npos &&
        violation.message.find("b_") != std::string::npos) {
      names_cycle = true;
    }
  }
  EXPECT_TRUE(names_cycle);
}

TEST(LockDisciplineTest, FlagsCycleSeededByRequiresAnnotation) {
  // COREKIT_REQUIRES(x) means x is held on entry, so an acquisition in
  // the body is an x -> y edge even with no MutexLock for x in sight.
  const std::string content =
      "void Helper() COREKIT_REQUIRES(a_) {\n"
      "  MutexLock lock(b_);\n"
      "}\n"
      "void Other() COREKIT_REQUIRES(b_) {\n"
      "  MutexLock lock(a_);\n"
      "}\n";
  EXPECT_GE(CountRule(LintContent("src/corekit/core/x.cc", content),
                      "lock-discipline"),
            1);
}

TEST(LockDisciplineTest, ExplicitLockUnlockPairsTracked) {
  const std::string ordered =
      "void F() {\n"
      "  a_.Lock();\n"
      "  b_.Lock();\n"
      "  b_.Unlock();\n"
      "  a_.Unlock();\n"
      "}\n"
      "void G() {\n"
      "  a_.Lock();\n"
      "  b_.Lock();\n"
      "  b_.Unlock();\n"
      "  a_.Unlock();\n"
      "}\n";
  EXPECT_EQ(CountRule(LintContent("src/corekit/core/x.cc", ordered),
                      "lock-discipline"),
            0);
  const std::string inverted =
      "void F() {\n"
      "  a_.Lock();\n"
      "  b_.Lock();\n"
      "  b_.Unlock();\n"
      "  a_.Unlock();\n"
      "}\n"
      "void G() {\n"
      "  b_.Lock();\n"
      "  a_.Lock();\n"
      "  a_.Unlock();\n"
      "  b_.Unlock();\n"
      "}\n";
  EXPECT_GE(CountRule(LintContent("src/corekit/core/x.cc", inverted),
                      "lock-discipline"),
            1);
}

TEST(LockDisciplineTest, ArrowAndDotSpellingsNameOneLock) {
  // cell->mutex and (*cell).mutex are the same capability; an inversion
  // split across the two spellings must still close the cycle.
  const std::string content =
      "void F() {\n"
      "  MutexLock lock_a(cell->mutex);\n"
      "  MutexLock lock_b(other_);\n"
      "}\n"
      "void G() {\n"
      "  MutexLock lock_b(other_);\n"
      "  MutexLock lock_a(cell.mutex);\n"
      "}\n";
  EXPECT_GE(CountRule(LintContent("src/corekit/core/x.cc", content),
                      "lock-discipline"),
            1);
}

// --- stale-waiver -----------------------------------------------------------

TEST(StaleWaiverTest, FlagsWaiverNamingUnknownRule) {
  // The literal is split across source lines so the repo's own lint run
  // does not read this fixture as a waiver (the scan is line-based).
  const auto violations = LintContent("tools/x.cc",
                                      "int x;  // corekit-lint: "
                                      "allow(ancient-rule)\n");
  ASSERT_EQ(CountRule(violations, "stale-waiver"), 1);
  EXPECT_NE(violations[0].message.find("ancient-rule"), std::string::npos);
  EXPECT_EQ(violations[0].line, 1);
}

TEST(StaleWaiverTest, KnownRuleWaiversPass) {
  EXPECT_EQ(
      CountRule(LintContent("tools/x.cc",
                            "auto* p = new X();  // corekit-lint: "
                            "allow(naked-new)\n"),
                "stale-waiver"),
      0);
}

TEST(StaleWaiverTest, AppliesEverywhereIncludingTests) {
  EXPECT_EQ(CountRule(LintContent("tests/core/x_test.cc",
                                  "int x;  // corekit-lint: "
                                  "allow(bogus)\n"),
                      "stale-waiver"),
            1);
}

TEST(KnownRulesTest, RegistryCoversEveryShippedRule) {
  const std::vector<std::string>& rules = KnownRules();
  for (const std::string rule :
       {"pragma-once", "no-endl", "naked-new", "bench-suite", "stage-table",
        "layering", "lock-discipline", "stale-waiver"}) {
    EXPECT_NE(std::find(rules.begin(), rules.end(), rule), rules.end())
        << rule;
  }
}

// --- waiver collection ------------------------------------------------------

TEST(CollectWaiversTest, ReportsFileLineAndRule) {
  const std::string content =
      "int a;\n"
      "int b;  // corekit-lint: "
      "allow(naked-new)\n"
      "int c;  // corekit-lint: "
      "allow(lock-discipline)\n";
  const std::vector<Waiver> waivers = CollectWaivers("src/x.h", content);
  ASSERT_EQ(waivers.size(), 2u);
  EXPECT_EQ(waivers[0].file, "src/x.h");
  EXPECT_EQ(waivers[0].line, 2);
  EXPECT_EQ(waivers[0].rule, "naked-new");
  EXPECT_EQ(waivers[1].line, 3);
  EXPECT_EQ(waivers[1].rule, "lock-discipline");
}

TEST(CollectWaiversTest, TreeWalkFindsWaiversAcrossFiles) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("corekit_waivers_test_" + std::to_string(::getpid()));
  fs::create_directories(root / "src/corekit/core");
  {
    std::ofstream out(root / "src/corekit/core/a.h");
    out << "#pragma once\nint a;  // corekit-lint: "
           "allow(naked-new)\n";
  }
  {
    std::ofstream out(root / "src/corekit/core/b.h");
    out << "#pragma once\nint b;\n";
  }
  const std::vector<Waiver> waivers = CollectWaiversInTree(root, {"src"});
  fs::remove_all(root);

  ASSERT_EQ(waivers.size(), 1u);
  EXPECT_EQ(waivers[0].file, "src/corekit/core/a.h");
  EXPECT_EQ(waivers[0].rule, "naked-new");
}

// --- LintTree ---------------------------------------------------------------

TEST(LintTreeTest, WalksFilesAndReportsRelativePaths) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("corekit_lint_test_" + std::to_string(::getpid()));
  fs::create_directories(root / "src/corekit/core");
  {
    std::ofstream out(root / "src/corekit/core/bad.h");
    out << "#include \"corekit/engine/core_engine.h\"\nint f();\n";
  }
  {
    std::ofstream out(root / "src/corekit/core/good.h");
    out << "#pragma once\nint g();\n";
  }
  const std::vector<Violation> violations = LintTree(root, {"src"});
  fs::remove_all(root);

  ASSERT_EQ(violations.size(), 2u);  // missing pragma + upward include
  EXPECT_EQ(violations[0].file, "src/corekit/core/bad.h");
  EXPECT_EQ(CountRule(violations, "pragma-once"), 1);
  EXPECT_EQ(CountRule(violations, "layering"), 1);
}

TEST(LintTreeTest, MissingSubdirIsSkipped) {
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() /
      ("corekit_lint_empty_" + std::to_string(::getpid()));
  fs::create_directories(root);
  EXPECT_TRUE(LintTree(root, {"src", "tools"}).empty());
  fs::remove_all(root);
}

}  // namespace
}  // namespace corekit::lint
