// bench_diff comparison engine (tools/bench_diff_lib.h): the regression
// gate CI runs over BENCH_<suite>.json files.  Locks the pass/fail
// semantics — threshold crossing, noise floor, missing/new cases, schema
// and suite validation — against hand-built reports.

#include "bench_diff_lib.h"

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/util/json.h"

namespace corekit::bench_diff {
namespace {

// A minimal schema-1 report with (name, seconds_min, seconds_median)
// cases; the full harness emits more fields, but the differ only reads
// these.
Json MakeReport(
    const std::string& suite,
    const std::vector<std::tuple<std::string, double, double>>& cases) {
  Json report = Json::Object();
  report.Set("schema_version", 1);
  report.Set("suite", suite);
  Json array = Json::Array();
  for (const auto& [name, seconds_min, seconds_median] : cases) {
    Json c = Json::Object();
    c.Set("name", name);
    c.Set("seconds_min", seconds_min);
    c.Set("seconds_median", seconds_median);
    array.Append(std::move(c));
  }
  report.Set("cases", std::move(array));
  return report;
}

TEST(BenchDiffTest, IdenticalReportsPass) {
  const Json report = MakeReport(
      "smoke", {{"fig7/AP", 0.02, 0.03}, {"table3/G", 0.5, 0.6}});
  Result<DiffReport> diff = DiffReports(report, report, DiffOptions{});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_FALSE(diff->failed);
  EXPECT_EQ(diff->regressions, 0);
  ASSERT_EQ(diff->cases.size(), 2u);
  for (const CaseDiff& c : diff->cases) {
    EXPECT_FALSE(c.regressed);
    ASSERT_TRUE(c.relative_delta.has_value());
    EXPECT_EQ(*c.relative_delta, 0.0);
  }
}

TEST(BenchDiffTest, RegressionBeyondThresholdFails) {
  const Json baseline = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.2, 0.2}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->failed);
  EXPECT_EQ(diff->regressions, 1);
  ASSERT_EQ(diff->cases.size(), 1u);
  EXPECT_TRUE(diff->cases[0].regressed);
  EXPECT_NEAR(*diff->cases[0].relative_delta, 1.0, 1e-12);
}

TEST(BenchDiffTest, SlowdownWithinThresholdPasses) {
  const Json baseline = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.12, 0.12}});
  DiffOptions options;
  options.threshold = 0.25;
  Result<DiffReport> diff = DiffReports(baseline, current, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->failed);

  options.threshold = 0.1;  // tighten: the same +20% now fails
  diff = DiffReports(baseline, current, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->failed);
}

TEST(BenchDiffTest, SpeedupsNeverFail) {
  const Json baseline = MakeReport("smoke", {{"fig7/AP", 0.2, 0.2}});
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.01, 0.01}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->failed);
  EXPECT_LT(*diff->cases[0].relative_delta, 0.0);
}

TEST(BenchDiffTest, NoiseFloorSuppressesMicroRegressions) {
  // Baseline 1ms, current 10ms: a 10x blowup, but below the 5ms floor —
  // timer noise at smoke scale, not signal.
  const Json baseline = MakeReport("smoke", {{"micro/AP", 0.001, 0.001}});
  const Json current = MakeReport("smoke", {{"micro/AP", 0.01, 0.01}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->failed);
  ASSERT_EQ(diff->cases.size(), 1u);
  EXPECT_TRUE(diff->cases[0].below_noise_floor);
  EXPECT_FALSE(diff->cases[0].regressed);

  DiffOptions strict;
  strict.min_seconds = 0.0;  // floor disabled: the blowup counts
  diff = DiffReports(baseline, current, strict);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->failed);
}

TEST(BenchDiffTest, MedianMetricSelectable) {
  // min regressed, median did not: --metric median must pass.
  const Json baseline = MakeReport("smoke", {{"fig7/AP", 0.1, 0.3}});
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.2, 0.3}});
  DiffOptions options;
  options.metric = "median";
  Result<DiffReport> diff = DiffReports(baseline, current, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->failed);
  EXPECT_EQ(*diff->cases[0].relative_delta, 0.0);

  options.metric = "min";
  diff = DiffReports(baseline, current, options);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->failed);
}

TEST(BenchDiffTest, UnknownMetricRejected) {
  const Json report = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  DiffOptions options;
  options.metric = "p99";
  Result<DiffReport> diff = DiffReports(report, report, options);
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenchDiffTest, MissingCasesReportedButPassByDefault) {
  const Json baseline =
      MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}, {"fig7/G", 0.2, 0.2}});
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->failed);
  EXPECT_EQ(diff->missing_in_current, 1);

  DiffOptions strict;
  strict.fail_on_missing = true;
  diff = DiffReports(baseline, current, strict);
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->failed);
  EXPECT_EQ(diff->regressions, 1);
}

TEST(BenchDiffTest, NewCasesAppendedAndNeverFail) {
  const Json baseline = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  const Json current =
      MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}, {"fig9/AP", 9.0, 9.0}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->failed);
  EXPECT_EQ(diff->new_in_current, 1);
  ASSERT_EQ(diff->cases.size(), 2u);
  EXPECT_EQ(diff->cases[1].name, "fig9/AP");
  EXPECT_FALSE(diff->cases[1].baseline_seconds.has_value());
  EXPECT_FALSE(diff->cases[1].relative_delta.has_value());
}

TEST(BenchDiffTest, SuiteMismatchRejected) {
  const Json baseline = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  const Json current = MakeReport("paper", {{"fig7/AP", 0.1, 0.1}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kInvalidArgument);
}

// Stamps an environment block carrying a StageStats schema version onto a
// report (version < 0 writes an environment with no version key).
Json WithStageVersion(Json report, int version) {
  Json env = Json::Object();
  if (version >= 0) env.Set("stage_stats_schema_version", version);
  report.Set("environment", std::move(env));
  return report;
}

TEST(BenchDiffTest, StageStatsVersionMismatchRejected) {
  const Json baseline =
      WithStageVersion(MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}}), 1);
  const Json current =
      WithStageVersion(MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}}), 2);
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(diff.status().message().find("stage_stats_schema_version"),
            std::string::npos);
}

TEST(BenchDiffTest, StageStatsV2ToV3UpgradeDiffsWithNote) {
  // The v2 -> v3 StageStats bump is purely additive (patches counter +
  // applybatch stage), so a v2 baseline diffs against a v3 current run
  // cleanly — but never silently: the report carries a note naming both
  // versions, and PrintDiffReport surfaces it.
  const Json baseline =
      WithStageVersion(MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}}), 2);
  const Json current =
      WithStageVersion(MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}}), 3);
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_FALSE(diff->failed);
  EXPECT_NE(diff->stage_schema_note.find("2"), std::string::npos);
  EXPECT_NE(diff->stage_schema_note.find("3"), std::string::npos);
  std::ostringstream out;
  PrintDiffReport(*diff, DiffOptions{}, out);
  EXPECT_NE(out.str().find(diff->stage_schema_note), std::string::npos);

  // The grace is directional and exact: v3 baseline vs v2 current (a
  // downgrade) and any other pair still hard-fail.
  EXPECT_FALSE(DiffReports(current, baseline, DiffOptions{}).ok());
  EXPECT_FALSE(DiffReports(WithStageVersion(baseline, 1),
                           WithStageVersion(baseline, 3), DiffOptions{})
                   .ok());
  // Same-version runs carry no note.
  Result<DiffReport> same = DiffReports(current, current, DiffOptions{});
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(same->stage_schema_note.empty());
}

TEST(BenchDiffTest, MatchingOrAbsentStageStatsVersionsPass) {
  const Json plain = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  // Both stamped with the same version.
  EXPECT_TRUE(DiffReports(WithStageVersion(plain, 2), WithStageVersion(plain, 2),
                          DiffOptions{})
                  .ok());
  // Neither report carries an environment (reports predating the key).
  EXPECT_TRUE(DiffReports(plain, plain, DiffOptions{}).ok());
  // Only one side carries the version: tolerated, not comparable-checked.
  EXPECT_TRUE(
      DiffReports(WithStageVersion(plain, 1), plain, DiffOptions{}).ok());
  EXPECT_TRUE(DiffReports(WithStageVersion(plain, -1),
                          WithStageVersion(plain, 2), DiffOptions{})
                  .ok());
}

TEST(BenchDiffTest, SchemaVersionMismatchRejected) {
  Json baseline = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  baseline.Set("schema_version", 999);
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kInvalidArgument);
}

TEST(BenchDiffTest, NonObjectReportRejected) {
  const Json current = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  Result<DiffReport> diff =
      DiffReports(Json::Array(), current, DiffOptions{});
  EXPECT_FALSE(diff.ok());
}

TEST(BenchDiffTest, TextEntryPointParsesAndDiffs) {
  const std::string baseline =
      MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}}).Dump();
  const std::string current =
      MakeReport("smoke", {{"fig7/AP", 0.5, 0.5}}).Dump();
  Result<DiffReport> diff =
      DiffReportTexts(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->failed);
}

TEST(BenchDiffTest, TextEntryPointRejectsGarbage) {
  const std::string good = MakeReport("smoke", {}).Dump();
  Result<DiffReport> diff = DiffReportTexts("not json", good, DiffOptions{});
  EXPECT_FALSE(diff.ok());
  EXPECT_EQ(diff.status().code(), StatusCode::kCorruption);
  diff = DiffReportTexts(good, "{broken", DiffOptions{});
  EXPECT_FALSE(diff.ok());
}

TEST(BenchDiffTest, PrintedReportNamesEveryVerdict) {
  const Json baseline = MakeReport(
      "smoke", {{"slow/case", 0.1, 0.1},
                {"ok/case", 0.1, 0.1},
                {"noise/case", 0.001, 0.001},
                {"gone/case", 0.1, 0.1}});
  const Json current = MakeReport(
      "smoke", {{"slow/case", 0.9, 0.9},
                {"ok/case", 0.1, 0.1},
                {"noise/case", 0.005, 0.005},
                {"fresh/case", 0.2, 0.2}});
  Result<DiffReport> diff = DiffReports(baseline, current, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  std::ostringstream out;
  PrintDiffReport(*diff, DiffOptions{}, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("REGRESSED"), std::string::npos);
  EXPECT_NE(text.find("ok (noise floor)"), std::string::npos);
  EXPECT_NE(text.find("missing"), std::string::npos);
  EXPECT_NE(text.find("new"), std::string::npos);
  EXPECT_NE(text.find("FAIL"), std::string::npos);
  EXPECT_NE(text.find("1 regression(s), 1 missing, 1 new"),
            std::string::npos);
}

TEST(BenchDiffTest, PassingReportPrintsPass) {
  const Json report = MakeReport("smoke", {{"fig7/AP", 0.1, 0.1}});
  Result<DiffReport> diff = DiffReports(report, report, DiffOptions{});
  ASSERT_TRUE(diff.ok());
  std::ostringstream out;
  PrintDiffReport(*diff, DiffOptions{}, out);
  EXPECT_NE(out.str().find("PASS"), std::string::npos);
  EXPECT_EQ(out.str().find("FAIL"), std::string::npos);
}

}  // namespace
}  // namespace corekit::bench_diff
