// Positive control for the compile-fail battery: a correctly annotated
// class that MUST build cleanly under -Werror=thread-safety.  If this
// target fails, the battery's harness (flags, include paths, wrapper
// attributes) is broken, and the negative fixtures' failures prove
// nothing about the analysis.
#include "corekit/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() COREKIT_EXCLUDES(mutex_) {
    const corekit::MutexLock lock(mutex_);
    ++value_;
  }

  int Value() COREKIT_EXCLUDES(mutex_) {
    const corekit::MutexLock lock(mutex_);
    return value_;
  }

  void WaitForPositive() COREKIT_EXCLUDES(mutex_) {
    const corekit::MutexLock lock(mutex_);
    while (value_ <= 0) cv_.Wait(mutex_);
  }

 private:
  corekit::Mutex mutex_;
  corekit::CondVar cv_;
  int value_ COREKIT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.Increment();
  return counter.Value() == 1 ? 0 : 1;
}
