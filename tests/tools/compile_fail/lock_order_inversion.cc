// Compile-fail fixture: re-acquiring a mutex that is already held — the
// one lock-order defect Clang's analysis diagnoses directly.  Expected
// diagnostic:
//
//   acquiring mutex 'mu' that is already held
//
// Clang does not implement the acquired_before/acquired_after
// attributes, so cross-mutex ordering cannot be compile-fail-tested
// here; that half of the discipline lives in corekit_lint's
// lock-discipline acquisition-graph cycle check.  The self-deadlock
// below is the analysis-visible member of the family.
#include "corekit/util/thread_annotations.h"

namespace {

corekit::Mutex mu;
int value COREKIT_GUARDED_BY(mu) = 0;

int DoubleAcquire() {
  mu.Lock();
  mu.Lock();  // BAD: already held; deadlocks at runtime.
  const int result = value;
  mu.Unlock();
  mu.Unlock();
  return result;
}

}  // namespace

int main() { return DoubleAcquire(); }
