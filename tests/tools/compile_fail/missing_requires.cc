// Compile-fail fixture: calling a COREKIT_REQUIRES function without
// holding the required mutex.  Expected diagnostic:
//
//   calling function 'Tick' requires holding mutex 'mutex_'
//
// This is the contract violation the REQUIRES annotations on internal
// helpers (CoreEngine::EvictForAdmission-style callees) exist to catch.
#include "corekit/util/thread_annotations.h"

namespace {

class Registry {
 public:
  void Tick() COREKIT_REQUIRES(mutex_) { ++tick_; }

  // Correct caller: locks, then ticks — also the genuine use of mutex_
  // that keeps unrelated diagnostics out of the fixture.
  void TickLocked() COREKIT_EXCLUDES(mutex_) {
    const corekit::MutexLock lock(mutex_);
    Tick();
  }

  void Poke() { Tick(); }  // BAD: caller does not hold mutex_.

 private:
  corekit::Mutex mutex_;
  long tick_ COREKIT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Registry registry;
  registry.Poke();
  return 0;
}
