// Compile-fail fixture: reading a COREKIT_GUARDED_BY member without the
// guarding mutex held.  Expected diagnostic:
//
//   reading variable 'value_' requires holding mutex 'mutex_'
//
// The most common real-world slip this battery guards against — a
// "quick read" of shared state outside the critical section.
#include "corekit/util/thread_annotations.h"

namespace {

class Counter {
 public:
  // Correct sibling: keeps the fixture free of unrelated diagnostics
  // (e.g. -Wunused-private-field on mutex_), so the asserted
  // thread-safety error is the only thing wrong with this TU.
  void Increment() COREKIT_EXCLUDES(mutex_) {
    const corekit::MutexLock lock(mutex_);
    ++value_;
  }

  int Value() { return value_; }  // BAD: no lock held.

 private:
  corekit::Mutex mutex_;
  int value_ COREKIT_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.Value();
}
