#include "corekit/viz/svg_fingerprint.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

std::size_t CountOccurrences(const std::string& text,
                             const std::string& needle) {
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST(SvgFingerprintTest, Fig2RendersAllVerticesAndEdges) {
  const Graph g = corekit::testing::Fig2Graph();
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  const std::string svg = RenderCoreFingerprintSvg(g, onion);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 12u);
  EXPECT_EQ(CountOccurrences(svg, "<line"), 19u);
}

TEST(SvgFingerprintTest, SubsamplingCapsElements) {
  const Graph g = GenerateBarabasiAlbert(2000, 4, 5);
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  SvgFingerprintOptions options;
  options.max_vertices = 300;
  options.max_edges = 500;
  const std::string svg = RenderCoreFingerprintSvg(g, onion, options);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 300u);
  EXPECT_LE(CountOccurrences(svg, "<line"), 500u);
}

TEST(SvgFingerprintTest, DeterministicGivenSeed) {
  const Graph g = GenerateWattsStrogatz(200, 3, 0.1, 9);
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  EXPECT_EQ(RenderCoreFingerprintSvg(g, onion),
            RenderCoreFingerprintSvg(g, onion));
}

TEST(SvgFingerprintTest, ColorsSpanCorenessRange) {
  // A graph with kmax > 0 must use more than one fill color.
  const Graph g = corekit::testing::Fig2Graph();
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  const std::string svg = RenderCoreFingerprintSvg(g, onion);
  // Coreness 3 (center) renders red-ish, coreness 2 blue-ish: at least
  // two distinct fill attributes.
  const std::size_t first = svg.find("fill=\"#");
  ASSERT_NE(first, std::string::npos);
  const std::string first_color = svg.substr(first + 7, 6);
  bool found_other = false;
  std::size_t pos = first + 1;
  while ((pos = svg.find("fill=\"#", pos)) != std::string::npos) {
    if (svg.substr(pos + 7, 6) != first_color) {
      found_other = true;
      break;
    }
    ++pos;
  }
  EXPECT_TRUE(found_other);
}

TEST(SvgFingerprintTest, WriteToFile) {
  const Graph g = corekit::testing::Fig2Graph();
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  const std::string path = ::testing::TempDir() + "/corekit_fingerprint.svg";
  ASSERT_TRUE(WriteCoreFingerprintSvg(g, onion, path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), RenderCoreFingerprintSvg(g, onion));
}

TEST(SvgFingerprintTest, EmptyGraphStillValidSvg) {
  const Graph g;
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  const std::string svg = RenderCoreFingerprintSvg(g, onion);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_EQ(CountOccurrences(svg, "<circle"), 0u);
}

}  // namespace
}  // namespace corekit
