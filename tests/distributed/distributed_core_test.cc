#include "corekit/distributed/distributed_core.h"

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(CappedHIndexTest, Basics) {
  EXPECT_EQ(CappedHIndex({}, 5), 0u);
  EXPECT_EQ(CappedHIndex({1, 1, 1}, 5), 1u);
  EXPECT_EQ(CappedHIndex({3, 3, 3}, 5), 3u);
  EXPECT_EQ(CappedHIndex({5, 4, 3, 2, 1}, 5), 3u);  // classic h-index
  EXPECT_EQ(CappedHIndex({10, 10, 10}, 2), 2u);     // cap binds
  EXPECT_EQ(CappedHIndex({0, 0, 0}, 3), 0u);
  EXPECT_EQ(CappedHIndex({7}, 0), 0u);
}

TEST(DistributedCoreTest, EmptyAndEdgeless) {
  EXPECT_TRUE(ComputeCoreDecompositionDistributed(Graph()).converged);
  const auto result =
      ComputeCoreDecompositionDistributed(GraphBuilder::FromEdges(4, {}));
  EXPECT_TRUE(result.converged);
  for (const VertexId c : result.coreness) EXPECT_EQ(c, 0u);
}

TEST(DistributedCoreTest, CliqueConvergesInOneRound) {
  GraphBuilder builder(6);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(u, v);
  }
  const auto result =
      ComputeCoreDecompositionDistributed(builder.Build());
  EXPECT_TRUE(result.converged);
  for (const VertexId c : result.coreness) EXPECT_EQ(c, 5u);
  // Degrees are already the fixpoint: one compute round, zero messages.
  EXPECT_EQ(result.rounds, 1u);
  EXPECT_EQ(result.messages, 0u);
}

TEST(DistributedCoreTest, PathNeedsPropagation) {
  // On a path, the degree-1 endpoints drag interior estimates from 2 down
  // to 1 hop by hop: rounds grow with the path length.
  const Graph path = GraphBuilder::FromEdges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  const auto result = ComputeCoreDecompositionDistributed(path);
  EXPECT_TRUE(result.converged);
  for (const VertexId c : result.coreness) EXPECT_EQ(c, 1u);
  EXPECT_GE(result.rounds, 3u);
  EXPECT_GT(result.messages, 0u);
}

TEST(DistributedCoreTest, RoundCapReturnsPartialEstimates) {
  const Graph path = GraphBuilder::FromEdges(
      8, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}});
  const auto capped = ComputeCoreDecompositionDistributed(path, 1);
  EXPECT_FALSE(capped.converged);
  EXPECT_EQ(capped.rounds, 1u);
  // Estimates are valid upper bounds at every prefix of the run.
  const CoreDecomposition exact = ComputeCoreDecomposition(path);
  for (VertexId v = 0; v < path.NumVertices(); ++v) {
    EXPECT_GE(capped.coreness[v], exact.coreness[v]);
  }
}

class DistributedZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(DistributedZooTest, ConvergesToExactCoreness) {
  const Graph& graph = GetParam().graph;
  const auto distributed = ComputeCoreDecompositionDistributed(graph);
  EXPECT_TRUE(distributed.converged);
  EXPECT_EQ(distributed.coreness, ComputeCoreDecomposition(graph).coreness)
      << GetParam().name;
}

TEST_P(DistributedZooTest, RoundsBoundedByVertices) {
  // The estimate of some vertex strictly decreases every round (else the
  // protocol stops), and each vertex decreases at most deg times; the
  // trivial bound n+1 rounds must never be exceeded on these graphs.
  const Graph& graph = GetParam().graph;
  const auto result = ComputeCoreDecompositionDistributed(graph);
  EXPECT_LE(result.rounds, graph.NumVertices() + 1) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, DistributedZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

}  // namespace
}  // namespace corekit
