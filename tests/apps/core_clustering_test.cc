#include "corekit/apps/core_clustering.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "corekit/core/naive_oracle.h"
#include "corekit/gen/lfr_like.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(PartitionModularityTest, SingleClusterIsZero) {
  const Graph g = corekit::testing::Fig2Graph();
  EXPECT_DOUBLE_EQ(
      PartitionModularity(g, std::vector<VertexId>(12, 0), 1), 0.0);
}

TEST(PartitionModularityTest, MatchesTwoBlockMetric) {
  // Splitting Fig2 into {3-core set, rest} must reproduce the two-block
  // modularity the Metric::kModularity path computes.
  const Graph g = corekit::testing::Fig2Graph();
  std::vector<VertexId> cluster(12, 1);
  std::vector<bool> mask(12, false);
  for (const int pid : {1, 2, 3, 4, 9, 10, 11, 12}) {
    cluster[corekit::testing::V(pid)] = 0;
    mask[corekit::testing::V(pid)] = true;
  }
  const PrimaryValues pv = NaivePrimaryValues(g, mask);
  const GraphGlobals globals{g.NumVertices(), g.NumEdges()};
  EXPECT_NEAR(PartitionModularity(g, cluster, 2),
              EvaluateMetric(Metric::kModularity, pv, globals), 1e-12);
}

TEST(PartitionModularityTest, KnownTwoTriangleValue) {
  // Two triangles joined by one edge; the natural split has
  // Q = 2*(3/7 - (7/14)^2) = 0.357142...
  GraphBuilder builder(6);
  builder.AddEdge(0, 1);
  builder.AddEdge(1, 2);
  builder.AddEdge(2, 0);
  builder.AddEdge(3, 4);
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 3);
  builder.AddEdge(0, 3);
  const Graph g = builder.Build();
  const std::vector<VertexId> cluster{0, 0, 0, 1, 1, 1};
  EXPECT_NEAR(PartitionModularity(g, cluster, 2),
              2.0 * (3.0 / 7.0 - 0.25), 1e-12);
}

TEST(CoreClusteringTest, EveryVertexAssignedAndLabelsDense) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    if (graph.NumVertices() == 0) continue;
    const CoreClustering clustering = ClusterByCores(graph);
    std::vector<bool> used(clustering.num_clusters, false);
    for (const VertexId c : clustering.cluster) {
      ASSERT_LT(c, clustering.num_clusters) << name;
      used[c] = true;
    }
    for (VertexId c = 0; c < clustering.num_clusters; ++c) {
      EXPECT_TRUE(used[c]) << name << " label " << c;
    }
  }
}

TEST(CoreClusteringTest, Deterministic) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 4);
  const CoreClustering a = ClusterByCores(g);
  const CoreClustering b = ClusterByCores(g);
  EXPECT_EQ(a.cluster, b.cluster);
  EXPECT_EQ(a.rounds, b.rounds);
}

TEST(CoreClusteringTest, Fig2SeparatesTheTwoCliqueCommunities) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreClustering clustering = ClusterByCores(g);
  using corekit::testing::V;
  EXPECT_GE(clustering.num_clusters, 2u);
  // Each K4 holds together...
  EXPECT_EQ(clustering.cluster[V(1)], clustering.cluster[V(2)]);
  EXPECT_EQ(clustering.cluster[V(1)], clustering.cluster[V(4)]);
  EXPECT_EQ(clustering.cluster[V(9)], clustering.cluster[V(10)]);
  EXPECT_EQ(clustering.cluster[V(9)], clustering.cluster[V(12)]);
  // ...and the two K4s are separated.
  EXPECT_NE(clustering.cluster[V(1)], clustering.cluster[V(9)]);
  EXPECT_GT(clustering.modularity, 0.2);
}

TEST(CoreClusteringTest, DisconnectedComponentsNeverMerge) {
  GraphBuilder builder(7);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(u, v);
  }
  builder.AddEdge(4, 5);
  builder.AddEdge(5, 6);
  const Graph g = builder.Build();
  const CoreClustering clustering = ClusterByCores(g);
  EXPECT_NE(clustering.cluster[0], clustering.cluster[4]);
  EXPECT_EQ(clustering.cluster[0], clustering.cluster[3]);
}

TEST(CoreClusteringTest, IsolatedVerticesKeepOwnCluster) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}});
  const CoreClustering clustering = ClusterByCores(g);
  EXPECT_NE(clustering.cluster[2], clustering.cluster[3]);
  EXPECT_NE(clustering.cluster[2], clustering.cluster[0]);
}

TEST(CoreClusteringTest, RecoversPlantedCommunitiesOnLfr) {
  LfrLikeParams params;
  params.num_vertices = 1200;
  params.mu = 0.08;
  params.seed = 21;
  const LfrLikeResult lfr = GenerateLfrLike(params);
  const CoreClustering clustering = ClusterByCores(lfr.graph);

  // Modularity of the produced clustering should be solidly positive on
  // a strongly modular graph.
  EXPECT_GT(clustering.modularity, 0.3);

  // And clusters should align with planted communities: pairs of
  // adjacent vertices agree on same-cluster vs same-community.
  EdgeId agree = 0;
  EdgeId total = 0;
  for (const auto& [u, v] : lfr.graph.ToEdgeList()) {
    ++total;
    const bool same_cluster =
        clustering.cluster[u] == clustering.cluster[v];
    const bool same_community = lfr.community[u] == lfr.community[v];
    agree += same_cluster == same_community ? 1u : 0u;
  }
  EXPECT_GT(static_cast<double>(agree), 0.7 * static_cast<double>(total));
}

TEST(CoreClusteringTest, ModularityFieldMatchesRecomputation) {
  const Graph g = GenerateWattsStrogatz(300, 4, 0.1, 5);
  const CoreClustering clustering = ClusterByCores(g);
  EXPECT_DOUBLE_EQ(clustering.modularity,
                   PartitionModularity(g, clustering.cluster,
                                       clustering.num_clusters));
}

TEST(CoreClusteringTest, RoundCapRespected) {
  const Graph g = GenerateErdosRenyi(200, 600, 3);
  const CoreClustering clustering = ClusterByCores(g, 2);
  EXPECT_LE(clustering.rounds, 2u);
}

}  // namespace
}  // namespace corekit
