#include "corekit/apps/community_search.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

TEST(CommunitySearchTest, Fig2AverageDegreeCommunities) {
  const Graph g = Fig2Graph();
  const CommunitySearcher searcher(g, Metric::kAverageDegree);
  // Under average degree the whole graph (2-core, ad ~3.17) beats any K4.
  const CommunitySearchResult result = searcher.Search(V(1));
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.k, 2u);
  EXPECT_EQ(result.members.size(), 12u);
  EXPECT_NEAR(result.score, 2.0 * 19 / 12, 1e-12);
}

TEST(CommunitySearchTest, Fig2ClusteringCoefficientPrefersK4) {
  const Graph g = Fig2Graph();
  const CommunitySearcher searcher(g, Metric::kClusteringCoefficient);
  const CommunitySearchResult result = searcher.Search(V(1));
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.k, 3u);
  EXPECT_EQ(result.members,
            (std::vector<VertexId>{V(1), V(2), V(3), V(4)}));
  EXPECT_DOUBLE_EQ(result.score, 1.0);
  // A shell vertex can only reach 2-core communities.
  const CommunitySearchResult shell = searcher.Search(V(5));
  ASSERT_TRUE(shell.found);
  EXPECT_EQ(shell.k, 2u);
}

TEST(CommunitySearchTest, MinKConstraint) {
  const Graph g = Fig2Graph();
  const CommunitySearcher searcher(g, Metric::kAverageDegree);
  // Forcing k >= 3 returns the K4 even though the 2-core scores higher.
  const CommunitySearchResult result = searcher.SearchWithMinK(V(1), 3);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.k, 3u);
  EXPECT_EQ(result.members.size(), 4u);
  // Infeasible for a shell vertex.
  EXPECT_FALSE(searcher.SearchWithMinK(V(5), 3).found);
}

TEST(CommunitySearchTest, InvalidAndIsolatedQueries) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}});
  const CommunitySearcher searcher(g, Metric::kAverageDegree);
  EXPECT_FALSE(searcher.Search(99).found);
  EXPECT_FALSE(searcher.Search(3).found);  // isolated
  EXPECT_TRUE(searcher.Search(0).found);
}

TEST(CommunitySearchTest, ResultAlwaysContainsQueryAndIsACore) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    if (graph.NumEdges() == 0) continue;
    const CommunitySearcher searcher(graph, Metric::kInternalDensity);
    for (VertexId q = 0; q < graph.NumVertices(); q += 11) {
      const CommunitySearchResult result = searcher.Search(q);
      if (!result.found) {
        EXPECT_EQ(searcher.cores().coreness[q], 0u) << name;
        continue;
      }
      EXPECT_TRUE(std::binary_search(result.members.begin(),
                                     result.members.end(), q))
          << name;
      // Every member musters >= k neighbors inside the community.
      std::vector<bool> in(graph.NumVertices(), false);
      for (const VertexId v : result.members) in[v] = true;
      for (const VertexId v : result.members) {
        VertexId inside = 0;
        for (const VertexId u : graph.Neighbors(v)) inside += in[u] ? 1u : 0u;
        EXPECT_GE(inside, result.k) << name << " q=" << q << " v=" << v;
      }
    }
  }
}

}  // namespace
}  // namespace corekit
