#include "corekit/apps/size_constrained_core.h"

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

// Checks the answer's contract: contains the query vertex, induces
// minimum degree >= k, and is connected.
void ValidateAnswer(const Graph& graph, const SckResult& result,
                    VertexId query, VertexId k) {
  ASSERT_TRUE(result.found);
  std::vector<bool> mask(graph.NumVertices(), false);
  bool has_query = false;
  for (const VertexId v : result.vertices) {
    mask[v] = true;
    has_query |= (v == query);
  }
  EXPECT_TRUE(has_query);
  for (const VertexId v : result.vertices) {
    VertexId inside = 0;
    for (const VertexId u : graph.Neighbors(v)) inside += mask[u] ? 1u : 0u;
    EXPECT_GE(inside, k) << "vertex " << v;
  }
}

TEST(SizeConstrainedCoreTest, QueryBelowCorenessFails) {
  const Graph g = Fig2Graph();
  const SizeConstrainedCoreSolver solver(g);
  // v5 has coreness 2; a 3-core containing it cannot exist.
  const SckResult result = solver.Solve(V(5), 3, 4);
  EXPECT_FALSE(result.found);
}

TEST(SizeConstrainedCoreTest, ExactCoreSizeQuery) {
  const Graph g = Fig2Graph();
  const SizeConstrainedCoreSolver solver(g);
  // v1's 3-core is a K4: asking for a 3-core of size 4 returns it.
  const SckResult result = solver.Solve(V(1), 3, 4);
  ValidateAnswer(g, result, V(1), 3);
  EXPECT_EQ(result.vertices, (std::vector<VertexId>{V(1), V(2), V(3), V(4)}));
}

TEST(SizeConstrainedCoreTest, WholeGraphQuery) {
  const Graph g = Fig2Graph();
  const SizeConstrainedCoreSolver solver(g);
  const SckResult result = solver.Solve(V(6), 2, 12);
  ValidateAnswer(g, result, V(6), 2);
  EXPECT_EQ(result.vertices.size(), 12u);
}

TEST(SizeConstrainedCoreTest, PeelsDownTowardTarget) {
  // A K8: asking for a 3-core of size 5 must peel three vertices away.
  GraphBuilder builder(8);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) builder.AddEdge(u, v);
  }
  const Graph g = builder.Build();
  const SizeConstrainedCoreSolver solver(g);
  const SckResult result = solver.Solve(0, 3, 5);
  ValidateAnswer(g, result, 0, 3);
  EXPECT_EQ(result.vertices.size(), 5u);
}

TEST(SizeConstrainedCoreTest, OversizedRequestFails) {
  const Graph g = Fig2Graph();
  const SizeConstrainedCoreSolver solver(g);
  // No 2-core with 100 vertices exists.
  EXPECT_FALSE(solver.Solve(V(1), 2, 100).found);
}

TEST(SizeConstrainedCoreTest, InvalidQueryVertex) {
  const Graph g = Fig2Graph();
  const SizeConstrainedCoreSolver solver(g);
  EXPECT_FALSE(solver.Solve(999, 1, 4).found);
}

TEST(SizeConstrainedCoreTest, HitCriterion) {
  SckResult result;
  result.found = true;
  result.vertices.assign(97, 0);
  EXPECT_TRUE(SizeConstrainedCoreSolver::IsHit(result, 100, 0.05));
  result.vertices.assign(94, 0);
  EXPECT_FALSE(SizeConstrainedCoreSolver::IsHit(result, 100, 0.05));
  EXPECT_FALSE(SizeConstrainedCoreSolver::IsHit(SckResult{}, 100, 0.05));
}

TEST(SizeConstrainedCoreTest, AnswersAreValidOnGeneratedGraph) {
  // Table IX's setting: many random queries on a community-structured
  // graph; every returned answer must satisfy the k-core contract.
  PlantedPartitionParams params;
  params.num_vertices = 300;
  params.num_communities = 3;
  params.p_in = 0.15;
  params.p_out = 0.01;
  params.seed = 5;
  const Graph g = GeneratePlantedPartition(params).graph;
  const SizeConstrainedCoreSolver solver(g);

  int found = 0;
  for (VertexId q = 0; q < g.NumVertices(); q += 17) {
    for (const VertexId k : {3u, 5u, 8u}) {
      for (const VertexId h : {20u, 50u, 90u}) {
        const SckResult result = solver.Solve(q, k, h);
        if (!result.found) continue;
        ++found;
        ValidateAnswer(g, result, q, k);
        // Never smaller than h... peeling stops at or above h unless the
        // component split; allow any size but require containment
        // correctness (checked above).
      }
    }
  }
  EXPECT_GT(found, 10);
}

}  // namespace
}  // namespace corekit
