#include "corekit/apps/spread_simulation.h"

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(SpreadSimulationTest, ZeroProbabilityInfectsOnlySeeds) {
  const Graph g = corekit::testing::Fig2Graph();
  SirParams params;
  params.infect_prob = 0.0;
  params.trials = 5;
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(g, {0, 3}, params), 2.0);
}

TEST(SpreadSimulationTest, CertainTransmissionCoversComponent) {
  // Two components: outbreak from one covers exactly that component.
  const Graph g =
      GraphBuilder::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}, {4, 5}});
  SirParams params;
  params.infect_prob = 1.0;
  params.trials = 3;
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(g, {0}, params), 3.0);
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(g, {3}, params), 3.0);
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(g, {0, 3}, params), 6.0);
}

TEST(SpreadSimulationTest, DuplicateSeedsCountedOnce) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  SirParams params;
  params.infect_prob = 0.0;
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(g, {0, 0, 0}, params), 1.0);
}

TEST(SpreadSimulationTest, DeterministicGivenSeed) {
  const Graph g = GenerateBarabasiAlbert(200, 3, 4);
  SirParams params;
  params.infect_prob = 0.2;
  params.trials = 20;
  params.seed = 99;
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(g, {0}, params),
                   ExpectedOutbreakSize(g, {0}, params));
}

TEST(SpreadSimulationTest, MaxStepsCapsCascade) {
  // A long path with certain transmission: capping steps truncates it.
  EdgeList edges;
  for (VertexId v = 0; v + 1 < 50; ++v) edges.emplace_back(v, v + 1);
  const Graph path = GraphBuilder::FromEdges(50, edges);
  SirParams params;
  params.infect_prob = 1.0;
  params.trials = 1;
  params.max_steps = 5;
  // Seed + 5 steps of one-hop growth = 6 infected.
  EXPECT_DOUBLE_EQ(ExpectedOutbreakSize(path, {0}, params), 6.0);
}

TEST(SpreadSimulationTest, HigherBetaSpreadsAtLeastAsFarOnAverage) {
  const Graph g = GenerateWattsStrogatz(300, 4, 0.1, 6);
  SirParams low;
  low.infect_prob = 0.05;
  low.trials = 200;
  SirParams high = low;
  high.infect_prob = 0.4;
  EXPECT_LT(ExpectedOutbreakSize(g, {0}, low),
            ExpectedOutbreakSize(g, {0}, high));
}

TEST(SeedSelectionTest, TopDegree) {
  // Star plus pendant chain: center has max degree.
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {4, 5}});
  const auto top = TopDegreeVertices(g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);  // degree 4
  EXPECT_EQ(top[1], 4u);  // degree 2
}

TEST(SeedSelectionTest, TopCorenessDiffersFromTopDegree) {
  // A high-degree star center has coreness 1; a K4 member has coreness 3.
  GraphBuilder builder(12);
  for (VertexId leaf = 1; leaf <= 7; ++leaf) builder.AddEdge(0, leaf);
  for (VertexId u = 8; u < 12; ++u) {
    for (VertexId v = u + 1; v < 12; ++v) builder.AddEdge(u, v);
  }
  const Graph g = builder.Build();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const auto by_degree = TopDegreeVertices(g, 1);
  const auto by_coreness = TopCorenessVertices(g, cores, 1);
  EXPECT_EQ(by_degree[0], 0u);
  EXPECT_EQ(by_coreness[0], 8u);
}

TEST(SeedSelectionTest, CountClampedToVertexCount) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}});
  EXPECT_EQ(TopDegreeVertices(g, 100).size(), 3u);
}

TEST(SpreadSimulationTest, AverageSingleSeedIsMeanOfSeeds) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {2, 3}});
  SirParams params;
  params.infect_prob = 1.0;
  params.trials = 2;
  // Every single seed infects exactly its 2-vertex component.
  EXPECT_DOUBLE_EQ(AverageSingleSeedOutbreak(g, {0, 1, 2, 3}, params), 2.0);
}

}  // namespace
}  // namespace corekit
