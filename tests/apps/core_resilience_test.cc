#include "corekit/apps/core_resilience.h"

#include <gtest/gtest.h>

#include "corekit/gen/generators.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(CoreResilienceTest, EmptyGraph) {
  const ResilienceCurve curve =
      ComputeResilienceCurve(Graph(), RemovalStrategy::kRandom, 4);
  EXPECT_TRUE(curve.points.empty());
}

TEST(CoreResilienceTest, CurveShapeBasics) {
  const Graph g = corekit::testing::Fig2Graph();
  const ResilienceCurve curve =
      ComputeResilienceCurve(g, RemovalStrategy::kRandom, 4, 2, 7);
  ASSERT_EQ(curve.points.size(), 5u);  // intact + 4 batches
  // Intact point: full graph statistics.
  EXPECT_DOUBLE_EQ(curve.points.front().removed_fraction, 0.0);
  EXPECT_EQ(curve.points.front().kmax, 3u);
  EXPECT_EQ(curve.points.front().inner_core_size, 8u);
  EXPECT_EQ(curve.points.front().reference_core_size, 12u);
  EXPECT_EQ(curve.points.front().largest_component, 12u);
  // Final point: everything removed.
  EXPECT_DOUBLE_EQ(curve.points.back().removed_fraction, 1.0);
  EXPECT_EQ(curve.points.back().largest_component, 0u);
  // Removed fraction is strictly increasing.
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GT(curve.points[i].removed_fraction,
              curve.points[i - 1].removed_fraction);
  }
}

TEST(CoreResilienceTest, ReferenceKDefaultsToHalfKmax) {
  const Graph g = GenerateOnion({2000, 8, 32, 3});
  const ResilienceCurve curve =
      ComputeResilienceCurve(g, RemovalStrategy::kRandom, 2);
  EXPECT_GE(curve.reference_k, 16u);
}

TEST(CoreResilienceTest, StrategyNames) {
  EXPECT_STREQ(RemovalStrategyName(RemovalStrategy::kRandom), "random");
  EXPECT_STREQ(RemovalStrategyName(RemovalStrategy::kHighestDegreeFirst),
               "degree-targeted");
  EXPECT_STREQ(RemovalStrategyName(RemovalStrategy::kHighestCorenessFirst),
               "coreness-targeted");
}

TEST(CoreResilienceTest, TargetedAttackCollapsesInnerCoreFaster) {
  // The [44] effect: removing top-coreness vertices guts the inner core
  // at small removal fractions, while random removal degrades gradually.
  OnionParams params;
  params.num_vertices = 3000;
  params.num_layers = 10;
  params.target_kmax = 30;
  params.seed = 5;
  const Graph g = GenerateOnion(params);

  const ResilienceCurve random =
      ComputeResilienceCurve(g, RemovalStrategy::kRandom, 10, 15, 11);
  const ResilienceCurve targeted = ComputeResilienceCurve(
      g, RemovalStrategy::kHighestCorenessFirst, 10, 15, 11);
  ASSERT_EQ(random.points.size(), targeted.points.size());

  // After removing 20% of vertices (point index 2), the targeted attack
  // must have destroyed far more of the reference core.
  const auto& random_point = random.points[2];
  const auto& targeted_point = targeted.points[2];
  EXPECT_LT(targeted_point.reference_core_size,
            random_point.reference_core_size / 2 + 1);
  EXPECT_LE(targeted_point.kmax, random_point.kmax);
}

TEST(CoreResilienceTest, RandomCurveIsDeterministicPerSeed) {
  const Graph g = GenerateErdosRenyi(300, 900, 2);
  const ResilienceCurve a =
      ComputeResilienceCurve(g, RemovalStrategy::kRandom, 5, 0, 42);
  const ResilienceCurve b =
      ComputeResilienceCurve(g, RemovalStrategy::kRandom, 5, 0, 42);
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    EXPECT_EQ(a.points[i].kmax, b.points[i].kmax);
    EXPECT_EQ(a.points[i].largest_component, b.points[i].largest_component);
  }
}

TEST(CoreResilienceTest, KmaxNeverIncreasesAlongDegreeTargetedCurve) {
  // Removing vertices can only shrink cores; kmax is non-increasing when
  // the highest-degree vertices go first.
  const Graph g = GenerateBarabasiAlbert(800, 4, 9);
  const ResilienceCurve curve = ComputeResilienceCurve(
      g, RemovalStrategy::kHighestDegreeFirst, 8);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_LE(curve.points[i].kmax, curve.points[i - 1].kmax);
  }
}

}  // namespace
}  // namespace corekit
