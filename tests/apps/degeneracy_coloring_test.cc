#include "corekit/apps/degeneracy_coloring.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

GraphColoring ColorOf(const Graph& g) {
  return ColorBySmallestLast(g, ComputeCoreDecomposition(g));
}

TEST(DegeneracyColoringTest, EmptyAndEdgeless) {
  EXPECT_EQ(ColorOf(Graph()).num_colors, 0u);
  const GraphColoring coloring = ColorOf(GraphBuilder::FromEdges(4, {}));
  EXPECT_EQ(coloring.num_colors, 1u);
  for (const VertexId c : coloring.color) EXPECT_EQ(c, 0u);
}

TEST(DegeneracyColoringTest, CliqueNeedsSizeColors) {
  GraphBuilder builder(6);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = u + 1; v < 6; ++v) builder.AddEdge(u, v);
  }
  const Graph g = builder.Build();
  const GraphColoring coloring = ColorOf(g);
  EXPECT_EQ(coloring.num_colors, 6u);
  EXPECT_TRUE(IsProperColoring(g, coloring.color));
}

TEST(DegeneracyColoringTest, BipartiteGetsTwoColors) {
  // Even cycle: degeneracy 2 bounds colors at 3, but smallest-last on a
  // cycle achieves the optimum 2... or 3 depending on order; assert the
  // guarantee, not the optimum.
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const GraphColoring coloring = ColorOf(g);
  EXPECT_TRUE(IsProperColoring(g, coloring.color));
  EXPECT_LE(coloring.num_colors, 3u);  // kmax + 1
}

TEST(DegeneracyColoringTest, StarBeatsDeltaPlusOne) {
  // A star has Δ = n-1 but degeneracy 1: smallest-last uses 2 colors.
  GraphBuilder builder(50);
  for (VertexId leaf = 1; leaf < 50; ++leaf) builder.AddEdge(0, leaf);
  const Graph g = builder.Build();
  const GraphColoring coloring = ColorOf(g);
  EXPECT_EQ(coloring.num_colors, 2u);
  EXPECT_TRUE(IsProperColoring(g, coloring.color));
}

TEST(DegeneracyColoringTest, Fig2UsesAtMostFourColors) {
  const Graph g = corekit::testing::Fig2Graph();
  const GraphColoring coloring = ColorOf(g);
  EXPECT_TRUE(IsProperColoring(g, coloring.color));
  EXPECT_LE(coloring.num_colors, 4u);  // kmax = 3
  EXPECT_GE(coloring.num_colors, 4u);  // contains K4
}

TEST(DegeneracyColoringTest, ZooSatisfiesDegeneracyBound) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const GraphColoring coloring = ColorBySmallestLast(graph, cores);
    EXPECT_TRUE(IsProperColoring(graph, coloring.color)) << name;
    if (graph.NumVertices() > 0) {
      EXPECT_LE(coloring.num_colors, cores.kmax + 1) << name;
    }
  }
}

TEST(IsProperColoringTest, DetectsMonochromaticEdge) {
  const Graph g = GraphBuilder::FromEdges(2, {{0, 1}});
  EXPECT_FALSE(IsProperColoring(g, {0, 0}));
  EXPECT_TRUE(IsProperColoring(g, {0, 1}));
}

}  // namespace
}  // namespace corekit
