#include "corekit/apps/max_flow.h"

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(MaxFlowTest, SingleArc) {
  MaxFlowNetwork net(2);
  net.AddArc(0, 1, 7);
  EXPECT_EQ(net.Solve(0, 1), 7);
}

TEST(MaxFlowTest, SeriesArcsBottleneck) {
  MaxFlowNetwork net(3);
  net.AddArc(0, 1, 10);
  net.AddArc(1, 2, 4);
  EXPECT_EQ(net.Solve(0, 2), 4);
}

TEST(MaxFlowTest, ParallelPathsAdd) {
  MaxFlowNetwork net(4);
  net.AddArc(0, 1, 3);
  net.AddArc(1, 3, 3);
  net.AddArc(0, 2, 5);
  net.AddArc(2, 3, 5);
  EXPECT_EQ(net.Solve(0, 3), 8);
}

TEST(MaxFlowTest, DisconnectedSinkGivesZero) {
  MaxFlowNetwork net(3);
  net.AddArc(0, 1, 5);
  EXPECT_EQ(net.Solve(0, 2), 0);
}

TEST(MaxFlowTest, ClassicCLRSNetwork) {
  // The textbook network with max flow 23.
  MaxFlowNetwork net(6);
  net.AddArc(0, 1, 16);
  net.AddArc(0, 2, 13);
  net.AddArc(1, 2, 10);
  net.AddArc(2, 1, 4);
  net.AddArc(1, 3, 12);
  net.AddArc(3, 2, 9);
  net.AddArc(2, 4, 14);
  net.AddArc(4, 3, 7);
  net.AddArc(3, 5, 20);
  net.AddArc(4, 5, 4);
  EXPECT_EQ(net.Solve(0, 5), 23);
}

TEST(MaxFlowTest, RequiresAugmentingThroughResidual) {
  // Flow must cancel along the cross arc to reach the optimum of 2.
  MaxFlowNetwork net(4);
  net.AddArc(0, 1, 1);
  net.AddArc(0, 2, 1);
  net.AddArc(1, 2, 1);
  net.AddArc(1, 3, 1);
  net.AddArc(2, 3, 1);
  EXPECT_EQ(net.Solve(0, 3), 2);
}

TEST(MaxFlowTest, MinCutSidesPartitionNetwork) {
  MaxFlowNetwork net(4);
  net.AddArc(0, 1, 100);
  net.AddArc(1, 2, 1);  // the bottleneck
  net.AddArc(2, 3, 100);
  EXPECT_EQ(net.Solve(0, 3), 1);
  EXPECT_TRUE(net.InSourceSide(0));
  EXPECT_TRUE(net.InSourceSide(1));
  EXPECT_FALSE(net.InSourceSide(2));
  EXPECT_FALSE(net.InSourceSide(3));
}

TEST(MaxFlowTest, ZeroCapacityArcCarriesNothing) {
  MaxFlowNetwork net(2);
  net.AddArc(0, 1, 0);
  EXPECT_EQ(net.Solve(0, 1), 0);
}

}  // namespace
}  // namespace corekit
