#include "corekit/apps/max_clique.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/graph_builder.h"
#include "corekit/util/random.h"
#include "test_util.h"

namespace corekit {
namespace {

// Exponential brute force over all vertex subsets (n <= 20), used as the
// oracle.
std::size_t BruteForceMaxCliqueSize(const Graph& graph) {
  const VertexId n = graph.NumVertices();
  std::size_t best = 0;
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> subset;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) subset.push_back(v);
    }
    if (subset.size() <= best) continue;
    if (IsClique(graph, subset)) best = subset.size();
  }
  return best;
}

TEST(MaxCliqueTest, EmptyGraph) {
  EXPECT_TRUE(FindMaximumClique(Graph()).empty());
}

TEST(MaxCliqueTest, EdgelessGraphGivesSingleVertex) {
  const auto clique = FindMaximumClique(GraphBuilder::FromEdges(4, {}));
  EXPECT_EQ(clique.size(), 1u);
}

TEST(MaxCliqueTest, TriangleInPath) {
  const Graph g =
      GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}});
  const auto clique = FindMaximumClique(g);
  EXPECT_EQ(clique, (std::vector<VertexId>{0, 1, 2}));
}

TEST(MaxCliqueTest, CompleteGraph) {
  GraphBuilder builder(8);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) builder.AddEdge(u, v);
  }
  const auto clique = FindMaximumClique(builder.Build());
  EXPECT_EQ(clique.size(), 8u);
}

TEST(MaxCliqueTest, Fig2MaxCliqueIsK4) {
  const auto clique = FindMaximumClique(corekit::testing::Fig2Graph());
  EXPECT_EQ(clique.size(), 4u);
  EXPECT_TRUE(IsClique(corekit::testing::Fig2Graph(), clique));
}

TEST(MaxCliqueTest, BipartiteGraphHasCliqueTwo) {
  // K3,3 has no triangle.
  GraphBuilder builder(6);
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId v = 3; v < 6; ++v) builder.AddEdge(u, v);
  }
  EXPECT_EQ(FindMaximumClique(builder.Build()).size(), 2u);
}

TEST(MaxCliqueTest, PlantedCliqueFound) {
  // Sparse random graph with a hidden K7 planted on random vertices.
  Rng rng(99);
  const VertexId n = 60;
  GraphBuilder builder(n);
  for (int i = 0; i < 150; ++i) {
    builder.AddEdge(static_cast<VertexId>(rng.NextBounded(n)),
                    static_cast<VertexId>(rng.NextBounded(n)));
  }
  std::vector<VertexId> ids(n);
  for (VertexId v = 0; v < n; ++v) ids[v] = v;
  rng.Shuffle(ids);
  std::vector<VertexId> planted(ids.begin(), ids.begin() + 7);
  for (std::size_t i = 0; i < planted.size(); ++i) {
    for (std::size_t j = i + 1; j < planted.size(); ++j) {
      builder.AddEdge(planted[i], planted[j]);
    }
  }
  const Graph g = builder.Build();
  const auto clique = FindMaximumClique(g);
  EXPECT_GE(clique.size(), 7u);
  EXPECT_TRUE(IsClique(g, clique));
}

TEST(MaxCliqueTest, MatchesBruteForceOnRandomSmallGraphs) {
  Rng rng(1234);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId n = 8 + static_cast<VertexId>(rng.NextBounded(9));  // 8-16
    GraphBuilder builder(n);
    const double p = 0.2 + rng.NextDouble() * 0.5;
    for (VertexId u = 0; u < n; ++u) {
      for (VertexId v = u + 1; v < n; ++v) {
        if (rng.NextBool(p)) builder.AddEdge(u, v);
      }
    }
    const Graph g = builder.Build();
    const auto clique = FindMaximumClique(g);
    EXPECT_TRUE(IsClique(g, clique)) << "trial " << trial;
    EXPECT_EQ(clique.size(), BruteForceMaxCliqueSize(g)) << "trial " << trial;
  }
}

TEST(IsCliqueTest, Basics) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_TRUE(IsClique(g, {}));
  EXPECT_TRUE(IsClique(g, {3}));
  EXPECT_TRUE(IsClique(g, {0, 1, 2}));
  EXPECT_FALSE(IsClique(g, {0, 1, 3}));
}

}  // namespace
}  // namespace corekit
