#include "corekit/apps/anomaly_detection.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

MirrorPatternResult Detect(const Graph& g) {
  return DetectMirrorAnomalies(g, ComputeCoreDecomposition(g));
}

TEST(MirrorAnomalyTest, EmptyGraph) {
  const MirrorPatternResult result = Detect(Graph());
  EXPECT_TRUE(result.score.empty());
  EXPECT_TRUE(result.ranking.empty());
}

TEST(MirrorAnomalyTest, RegularGraphHasNoAnomalies) {
  // In a clique, degree is a deterministic function of coreness: every
  // residual is zero and the correlation degenerates (single x value).
  GraphBuilder builder(8);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) builder.AddEdge(u, v);
  }
  const MirrorPatternResult result = Detect(builder.Build());
  for (const double s : result.score) EXPECT_NEAR(s, 0.0, 1e-12);
}

TEST(MirrorAnomalyTest, LonerStarTopsTheRanking) {
  // A community-structured graph plus one "bought-followers" hub: degree
  // 400 but coreness 1.  CoreScope's signature anomaly.
  PlantedPartitionParams params;
  params.num_vertices = 1000;
  params.num_communities = 10;
  params.p_in = 0.2;
  params.p_out = 0.002;
  params.seed = 5;
  const Graph base = GeneratePlantedPartition(params).graph;

  const VertexId hub = 1000;
  const VertexId leaves = 400;
  GraphBuilder builder(1001 + leaves);
  builder.AddEdges(base.ToEdgeList());
  for (VertexId leaf = 0; leaf < leaves; ++leaf) {
    builder.AddEdge(hub, 1001 + leaf);
  }
  builder.AddEdge(hub, 0);  // one link into the real graph
  const Graph g = builder.Build();

  const MirrorPatternResult result = Detect(g);
  EXPECT_EQ(result.ranking.front(), hub);
  EXPECT_GT(result.score[hub], 2.0);  // ~e^2 off the fitted degree
}

TEST(MirrorAnomalyTest, MirrorCorrelationHighOnCleanGraphs) {
  // Heavy-tailed social-like graph (R-MAT: coreness varies, unlike
  // Barabási–Albert whose coreness is uniformly the attachment count):
  // degree and coreness track each other.
  RmatParams params;
  params.scale = 12;
  params.num_edges = 40000;
  params.seed = 7;
  const Graph g = GenerateRmat(params);
  const MirrorPatternResult result = Detect(g);
  EXPECT_GT(result.correlation, 0.5);
  EXPECT_GT(result.beta, 0.0);  // degree grows with coreness
}

TEST(MirrorAnomalyTest, RankingSortedByScore) {
  const Graph g = GenerateWattsStrogatz(300, 4, 0.3, 3);
  const MirrorPatternResult result = Detect(g);
  for (std::size_t i = 1; i < result.ranking.size(); ++i) {
    EXPECT_GE(result.score[result.ranking[i - 1]],
              result.score[result.ranking[i]]);
  }
}

}  // namespace
}  // namespace corekit
