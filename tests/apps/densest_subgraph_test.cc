#include "corekit/apps/densest_subgraph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

TEST(InducedAverageDegreeTest, Basics) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {2, 3}});
  EXPECT_DOUBLE_EQ(InducedAverageDegree(g, {0, 1, 2}), 2.0);  // triangle
  EXPECT_DOUBLE_EQ(InducedAverageDegree(g, {0, 3}), 0.0);
  EXPECT_DOUBLE_EQ(InducedAverageDegree(g, {}), 0.0);
}

TEST(ExactDensestTest, CliquePlusPendant) {
  // K4 with a pendant: densest is the K4 with average degree 3.
  const Graph g = GraphBuilder::FromEdges(
      5, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {3, 4}});
  const DensestSubgraphResult exact = ExactDensestSubgraph(g);
  EXPECT_DOUBLE_EQ(exact.average_degree, 3.0);
  EXPECT_EQ(exact.vertices, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(ExactDensestTest, WholeGraphWhenUniform) {
  // A cycle: every proper subgraph is sparser than the full cycle.
  const Graph g = GraphBuilder::FromEdges(
      5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  const DensestSubgraphResult exact = ExactDensestSubgraph(g);
  EXPECT_DOUBLE_EQ(exact.average_degree, 2.0);
  EXPECT_EQ(exact.vertices.size(), 5u);
}

TEST(ExactDensestTest, EdgelessGraph) {
  const Graph g = GraphBuilder::FromEdges(3, {});
  const DensestSubgraphResult exact = ExactDensestSubgraph(g);
  EXPECT_DOUBLE_EQ(exact.average_degree, 0.0);
}

TEST(ExactDensestTest, PrefersDenserOfTwoBlocks) {
  // K5 (avg degree 4) and K3 (avg degree 2) disconnected.
  GraphBuilder builder(8);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(u, v);
  }
  builder.AddEdge(5, 6);
  builder.AddEdge(6, 7);
  builder.AddEdge(7, 5);
  const DensestSubgraphResult exact = ExactDensestSubgraph(builder.Build());
  EXPECT_DOUBLE_EQ(exact.average_degree, 4.0);
  EXPECT_EQ(exact.vertices, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(OptDTest, Fig2ReturnsWholeGraph) {
  // Average degrees: K4 cores 3, whole-graph 2-core ~3.17.
  const DensestSubgraphResult result = OptDDensestSubgraph(Fig2Graph());
  EXPECT_NEAR(result.average_degree, 2.0 * 19 / 12, 1e-12);
  EXPECT_EQ(result.vertices.size(), 12u);
}

TEST(OptDTest, ReportedDensityMatchesReturnedVertices) {
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    if (graph.NumVertices() == 0) continue;
    const DensestSubgraphResult result = OptDDensestSubgraph(graph);
    EXPECT_NEAR(result.average_degree,
                InducedAverageDegree(graph, result.vertices), 1e-9)
        << name;
  }
}

TEST(CoreAppTest, ReturnsKmaxCoreSet) {
  const DensestSubgraphResult result = CoreAppDensestSubgraph(Fig2Graph());
  EXPECT_EQ(result.vertices.size(), 8u);  // the two K4s
  EXPECT_DOUBLE_EQ(result.average_degree, 3.0);
}

// Table VIII's headline shape: Opt-D's density is at least CoreApp's, and
// both are within a factor 2 of the exact optimum.
class DensestZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(DensestZooTest, OptDDominatesCoreAppAndIsHalfApprox) {
  const Graph& graph = GetParam().graph;
  if (graph.NumVertices() == 0 || graph.NumEdges() == 0) return;
  const DensestSubgraphResult opt_d = OptDDensestSubgraph(graph);
  const DensestSubgraphResult core_app = CoreAppDensestSubgraph(graph);
  const DensestSubgraphResult exact = ExactDensestSubgraph(graph);

  EXPECT_GE(opt_d.average_degree, core_app.average_degree - 1e-9)
      << GetParam().name;
  EXPECT_LE(opt_d.average_degree, exact.average_degree + 1e-9)
      << GetParam().name;
  EXPECT_GE(opt_d.average_degree, exact.average_degree / 2.0 - 1e-9)
      << GetParam().name;
  EXPECT_GE(core_app.average_degree, exact.average_degree / 2.0 - 1e-9)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, DensestZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace corekit
