// Unit tests for the benchmark harness layer (bench/harness/harness.h):
// suite filtering, warmup/repeat aggregation, counter and stage capture,
// report assembly with merge-by-name, environment capture — plus two
// satellites that live naturally next to it: determinism of the dataset
// registry (bench/datasets.h) and the loud-failure contract of
// EngineStageSeconds (bench/runtime_common.h).

#include "harness.h"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/corekit.h"
#include "datasets.h"
#include "runtime_common.h"

namespace corekit::bench {
namespace {

// Scoped override of an environment variable (the dataset registry and
// the environment capture read env per call).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) old_ = old;
    ::setenv(name, value, 1);
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      ::setenv(name_.c_str(), old_->c_str(), 1);
    } else {
      ::unsetenv(name_.c_str());
    }
  }

 private:
  std::string name_;
  std::optional<std::string> old_;
};

TEST(BenchHarnessTest, SuitesPlusSmokeTagsOnlySmallStandIns) {
  EXPECT_EQ(SuitesPlusSmoke("paper", "AP"),
            (std::vector<std::string>{"paper", "smoke"}));
  EXPECT_EQ(SuitesPlusSmoke("paper", "G"),
            (std::vector<std::string>{"paper", "smoke"}));
  EXPECT_EQ(SuitesPlusSmoke("paper", "LJ"),
            (std::vector<std::string>{"paper"}));
  EXPECT_EQ(SuitesPlusSmoke("ext", "FS"), (std::vector<std::string>{"ext"}));
}

TEST(BenchHarnessTest, SuiteFilterSkipsUntaggedCases) {
  BenchConfig config;
  config.suite = "smoke";
  BenchRunner runner(config);
  int invocations = 0;
  const CaseResult* filtered =
      runner.Case({"t/paper_only", {"paper"}},
                  [&](CaseRecorder&) { ++invocations; });
  EXPECT_EQ(filtered, nullptr);
  EXPECT_EQ(invocations, 0);
  EXPECT_FALSE(runner.ShouldRun({"t/paper_only", {"paper"}}));

  const CaseResult* run = runner.Case({"t/tagged", {"paper", "smoke"}},
                                      [&](CaseRecorder&) { ++invocations; });
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(invocations, 1);
  EXPECT_EQ(runner.results().size(), 1u);
}

TEST(BenchHarnessTest, EmptySuiteRunsEverything) {
  BenchRunner runner(BenchConfig{});
  EXPECT_TRUE(runner.ShouldRun({"t/any", {"paper"}}));
  EXPECT_TRUE(runner.ShouldRun({"t/untagged", {}}));
}

TEST(BenchHarnessTest, WarmupRunsUntimedAndRepeatsAggregate) {
  BenchConfig config;
  config.repeats = 3;
  config.warmup = 2;
  BenchRunner runner(config);
  runner.set_current_unit("unit_under_test");

  int invocations = 0;
  const double planted[] = {0.0, 0.0, 0.5, 0.3, 0.4};  // 2 warmup + 3 timed
  const CaseResult* result =
      runner.Case({"t/agg", {"paper"}}, [&](CaseRecorder& rec) {
        rec.SetSeconds(planted[invocations]);
        ++invocations;
      });
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(invocations, 5);  // warmup runs invoke the body too
  EXPECT_EQ(result->unit, "unit_under_test");
  EXPECT_EQ(result->warmup, 2);
  EXPECT_EQ(result->repeats, 3);
  ASSERT_EQ(result->samples, (std::vector<double>{0.5, 0.3, 0.4}));
  EXPECT_EQ(result->seconds_min, 0.3);
  EXPECT_EQ(result->seconds_median, 0.4);
  EXPECT_GT(result->rss_peak_bytes, 0u);
}

TEST(BenchHarnessTest, WallClockIsTheDefaultSample) {
  BenchRunner runner(BenchConfig{});
  const CaseResult* result =
      runner.Case({"t/wall", {"paper"}}, [](CaseRecorder&) {
        // No SetSeconds: the harness falls back to body wall time.
      });
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->samples.size(), 1u);
  EXPECT_GE(result->samples[0], 0.0);
  EXPECT_EQ(result->seconds_min, result->samples[0]);
}

TEST(BenchHarnessTest, CountersOverwriteByKeyAndKeepOrder) {
  BenchRunner runner(BenchConfig{});
  const CaseResult* result =
      runner.Case({"t/counters", {"paper"}}, [](CaseRecorder& rec) {
        rec.Counter("m", 100);
        rec.Counter("kmax", 7);
        rec.Counter("m", 200);  // re-recording overwrites in place
      });
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->counters.size(), 2u);
  EXPECT_EQ(result->counters[0].first, "m");
  EXPECT_EQ(result->counters[0].second, 200);
  EXPECT_EQ(result->counters[1].first, "kmax");
  EXPECT_EQ(result->counters[1].second, 7);
}

TEST(BenchHarnessTest, EngineStagesCapturesStageRecords) {
  BenchRunner runner(BenchConfig{});
  const CaseResult* result =
      runner.Case({"t/stages", {"paper"}}, [](CaseRecorder& rec) {
        const Graph graph = GenerateErdosRenyi(80, 240, 3);
        CoreEngine engine(graph);
        (void)engine.Ordered();
        rec.EngineStages(engine);
      });
  ASSERT_NE(result, nullptr);
  ASSERT_EQ(result->stages.size(), 2u);  // decompose + order
  EXPECT_EQ(result->stages[0].name, "decompose");
  EXPECT_EQ(result->stages[1].name, "order");
  EXPECT_EQ(result->stages[1].builds, 1u);
}

TEST(BenchHarnessTest, CasePointersStayStableAcrossManyCases) {
  BenchRunner runner(BenchConfig{});
  std::vector<const CaseResult*> pointers;
  for (int i = 0; i < 100; ++i) {
    pointers.push_back(runner.Case(
        {"t/stable" + std::to_string(i), {"paper"}}, [](CaseRecorder&) {}));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(pointers[static_cast<std::size_t>(i)]->name,
              "t/stable" + std::to_string(i));
  }
}

TEST(BenchHarnessTest, EnvironmentCapturesAllComparabilityKnobs) {
  ScopedEnv scale("COREKIT_BENCH_SCALE", "0.5");
  ScopedEnv filter("COREKIT_BENCH_DATASETS", "AP,G");
  ScopedEnv sha("COREKIT_GIT_SHA", "cafe123");
  const Json env = CaptureEnvironmentJson();
  EXPECT_GE(env.NumberOr("cpu_count", -1), 1);
  EXPECT_GE(env.NumberOr("threads", -1), 1);
  EXPECT_EQ(env.NumberOr("bench_scale", -1), 0.5);
  EXPECT_GT(env.NumberOr("bench_budget", -1), 0);
  EXPECT_EQ(env.StringOr("datasets_filter", ""), "AP,G");
  EXPECT_EQ(env.StringOr("git_sha", ""), "cafe123");  // env overrides build
  EXPECT_NE(env.StringOr("build_type", ""), "");
  EXPECT_EQ(env.NumberOr("stage_stats_schema_version", -1),
            kStageStatsSchemaVersion);
}

TEST(BenchHarnessTest, BenchThreadsPrecedence) {
  // Flag override beats the env var beats hardware concurrency; the
  // effective count lands in the environment capture.
  {
    ScopedEnv env_threads("COREKIT_BENCH_THREADS", "3");
    EXPECT_EQ(BenchThreads(), 3u);
    SetBenchThreads(5);
    EXPECT_EQ(BenchThreads(), 5u);
    EXPECT_EQ(CaptureEnvironmentJson().NumberOr("threads", -1), 5);
    SetBenchThreads(0);  // back to env/hardware default
    EXPECT_EQ(BenchThreads(), 3u);
  }
  // Garbage and unset env both fall back to hardware concurrency (>= 1).
  {
    ScopedEnv env_threads("COREKIT_BENCH_THREADS", "banana");
    EXPECT_GE(BenchThreads(), 1u);
  }
  EXPECT_GE(BenchThreads(), 1u);
}

TEST(BenchHarnessTest, ReportDocumentShape) {
  BenchRunner runner(BenchConfig{});
  runner.set_current_unit("shape_unit");
  (void)runner.Case({"t/shape", {"paper", "smoke"}}, [](CaseRecorder& rec) {
    rec.SetSeconds(0.25);
    rec.Counter("m", 10);
  });
  const Json report = BenchReportJson("smoke", runner.results(), nullptr);
  EXPECT_EQ(report.NumberOr("schema_version", -1), kBenchSchemaVersion);
  EXPECT_EQ(report.StringOr("suite", ""), "smoke");
  ASSERT_NE(report.Find("environment"), nullptr);
  const Json* cases = report.Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_EQ(cases->items().size(), 1u);
  const Json& c = cases->items()[0];
  EXPECT_EQ(c.StringOr("name", ""), "t/shape");
  EXPECT_EQ(c.StringOr("unit", ""), "shape_unit");
  EXPECT_EQ(c.NumberOr("seconds_min", -1), 0.25);
  EXPECT_EQ(c.NumberOr("seconds_median", -1), 0.25);
  EXPECT_EQ(c.Find("suites")->items().size(), 2u);
  EXPECT_EQ(c.Find("counters")->NumberOr("m", -1), 10);
  ASSERT_NE(c.Find("stages"), nullptr);
  EXPECT_TRUE(c.Find("stages")->is_array());
}

TEST(BenchHarnessTest, ReportMergesPreviousCasesByName) {
  // First run: two cases.
  BenchRunner first(BenchConfig{});
  (void)first.Case({"t/old_only", {"paper"}},
                   [](CaseRecorder& rec) { rec.SetSeconds(1.0); });
  (void)first.Case({"t/shared", {"paper"}},
                   [](CaseRecorder& rec) { rec.SetSeconds(2.0); });
  const Json previous = BenchReportJson("paper", first.results(), nullptr);

  // Second run: overwrites t/shared, adds t/new.
  BenchRunner second(BenchConfig{});
  (void)second.Case({"t/shared", {"paper"}},
                    [](CaseRecorder& rec) { rec.SetSeconds(3.0); });
  (void)second.Case({"t/new", {"paper"}},
                    [](CaseRecorder& rec) { rec.SetSeconds(4.0); });
  const Json merged = BenchReportJson("paper", second.results(), &previous);

  const auto& cases = merged.Find("cases")->items();
  ASSERT_EQ(cases.size(), 3u);
  EXPECT_EQ(cases[0].StringOr("name", ""), "t/old_only");
  EXPECT_EQ(cases[0].NumberOr("seconds_min", -1), 1.0);  // carried over
  EXPECT_EQ(cases[1].StringOr("name", ""), "t/shared");
  EXPECT_EQ(cases[1].NumberOr("seconds_min", -1), 3.0);  // overwritten
  EXPECT_EQ(cases[2].StringOr("name", ""), "t/new");
  EXPECT_EQ(cases[2].NumberOr("seconds_min", -1), 4.0);  // appended
}

TEST(BenchHarnessTest, ReportIgnoresPreviousOfDifferentSuite) {
  BenchRunner first(BenchConfig{});
  (void)first.Case({"t/smoke_case", {"smoke"}},
                   [](CaseRecorder& rec) { rec.SetSeconds(1.0); });
  const Json previous = BenchReportJson("smoke", first.results(), nullptr);

  BenchRunner second(BenchConfig{});
  (void)second.Case({"t/paper_case", {"paper"}},
                    [](CaseRecorder& rec) { rec.SetSeconds(2.0); });
  const Json merged = BenchReportJson("paper", second.results(), &previous);
  ASSERT_EQ(merged.Find("cases")->items().size(), 1u);
  EXPECT_EQ(merged.Find("cases")->items()[0].StringOr("name", ""),
            "t/paper_case");
}

TEST(BenchHarnessTest, PeakRssIsMonotonicallyReported) {
  const std::uint64_t before = PeakRssBytes();
  EXPECT_GT(before, 0u);
  EXPECT_GE(PeakRssBytes(), before);
}

// --- Dataset registry determinism (bench/datasets.h) ------------------------

// FNV-1a over the sorted degree sequence: cheap structural fingerprint.
std::uint64_t DegreeSequenceHash(const Graph& graph) {
  std::vector<VertexId> degrees(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    degrees[v] = graph.Degree(v);
  }
  std::sort(degrees.begin(), degrees.end());
  std::uint64_t hash = 1469598103934665603ull;
  for (const VertexId d : degrees) {
    hash ^= d;
    hash *= 1099511628211ull;
  }
  return hash;
}

TEST(BenchDatasetsTest, RegistryHasTheTenTableIIIStandIns) {
  const auto& datasets = AllDatasets();
  ASSERT_EQ(datasets.size(), 10u);
  EXPECT_EQ(datasets.front().short_name, "AP");
  EXPECT_EQ(datasets.back().short_name, "FS");
}

TEST(BenchDatasetsTest, EveryStandInIsDeterministicAtFixedScale) {
  // Two builds with the same seed and scale must agree bit-for-bit on the
  // structure the benches report: (n, m, kmax) and the degree sequence.
  // Non-determinism here would make BENCH baselines incomparable.
  ScopedEnv scale("COREKIT_BENCH_SCALE", "0.05");
  for (const BenchDataset& dataset : AllDatasets()) {
    SCOPED_TRACE(dataset.short_name);
    const Graph one = dataset.make();
    const Graph two = dataset.make();
    ASSERT_EQ(one.NumVertices(), two.NumVertices());
    ASSERT_EQ(one.NumEdges(), two.NumEdges());
    EXPECT_GT(one.NumEdges(), 0u);
    EXPECT_EQ(DegreeSequenceHash(one), DegreeSequenceHash(two));
    EXPECT_EQ(ComputeCoreDecomposition(one).kmax,
              ComputeCoreDecomposition(two).kmax);
  }
}

TEST(BenchDatasetsTest, DatasetFilterSelectsRequestedSubset) {
  ScopedEnv filter("COREKIT_BENCH_DATASETS", "G,HJ");
  const auto active = ActiveDatasets();
  ASSERT_EQ(active.size(), 2u);
  EXPECT_EQ(active[0].short_name, "G");
  EXPECT_EQ(active[1].short_name, "HJ");
}

TEST(BenchDatasetsTest, UnmatchedFilterFallsBackToAll) {
  ScopedEnv filter("COREKIT_BENCH_DATASETS", "NOPE");
  EXPECT_EQ(ActiveDatasets().size(), AllDatasets().size());
}

TEST(BenchDatasetsTest, BenchScaleClampsToDocumentedRange) {
  {
    ScopedEnv scale("COREKIT_BENCH_SCALE", "0.0001");
    EXPECT_EQ(BenchScale(), 0.05);
  }
  {
    ScopedEnv scale("COREKIT_BENCH_SCALE", "1e9");
    EXPECT_EQ(BenchScale(), 100.0);
  }
  {
    ScopedEnv scale("COREKIT_BENCH_SCALE", "2.5");
    EXPECT_EQ(BenchScale(), 2.5);
  }
}

// --- EngineStageSeconds contract (bench/runtime_common.h) -------------------

TEST(EngineStageSecondsTest, ReturnsRecordedStageTime) {
  const Graph graph = GenerateErdosRenyi(100, 400, 5);
  CoreEngine engine(graph);
  (void)engine.Ordered();
  (void)engine.BestCoreSet(Metric::kAverageDegree);
  EXPECT_GE(EngineStageSeconds(engine, "decompose"), 0.0);
  EXPECT_GE(EngineStageSeconds(engine, "order"), 0.0);
  EXPECT_GE(EngineStageSeconds(
                engine, CoreEngine::CoreSetStageName(Metric::kAverageDegree)),
            0.0);
}

TEST(EngineStageSecondsDeathTest, UnknownStageDiesLoudly) {
  // A misspelled or not-yet-built stage must never silently read as 0.0
  // in a published benchmark table.
  const Graph graph = GenerateErdosRenyi(50, 100, 5);
  CoreEngine engine(graph);
  (void)engine.Cores();
  EXPECT_DEATH((void)EngineStageSeconds(engine, "decompse"),
               "never recorded");
  // Correctly spelled but never built is just as wrong.
  EXPECT_DEATH((void)EngineStageSeconds(engine, "forest"), "never recorded");
}

}  // namespace
}  // namespace corekit::bench
