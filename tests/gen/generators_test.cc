#include "corekit/gen/generators.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/connected_components.h"
#include "corekit/graph/graph_stats.h"

namespace corekit {
namespace {

// ---------------------------------------------------------------------
// Erdős–Rényi
// ---------------------------------------------------------------------

TEST(ErdosRenyiTest, ExactEdgeCount) {
  const Graph g = GenerateErdosRenyi(100, 250, 1);
  EXPECT_EQ(g.NumVertices(), 100u);
  EXPECT_EQ(g.NumEdges(), 250u);
}

TEST(ErdosRenyiTest, Deterministic) {
  const Graph a = GenerateErdosRenyi(80, 200, 42);
  const Graph b = GenerateErdosRenyi(80, 200, 42);
  EXPECT_TRUE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
  EXPECT_TRUE(std::ranges::equal(a.Offsets(), b.Offsets()));
}

TEST(ErdosRenyiTest, SeedChangesGraph) {
  const Graph a = GenerateErdosRenyi(80, 200, 1);
  const Graph b = GenerateErdosRenyi(80, 200, 2);
  EXPECT_FALSE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
}

TEST(ErdosRenyiTest, CompleteGraphRequest) {
  const Graph g = GenerateErdosRenyi(12, 66, 7);  // K12
  EXPECT_EQ(g.NumEdges(), 66u);
  for (VertexId v = 0; v < 12; ++v) EXPECT_EQ(g.Degree(v), 11u);
}

TEST(ErdosRenyiTest, DenseButNotCompleteExactCount) {
  // Exercises the Floyd-sampling branch (m > max/3).
  const Graph g = GenerateErdosRenyi(20, 150, 5);  // max = 190
  EXPECT_EQ(g.NumEdges(), 150u);
}

TEST(ErdosRenyiDeathTest, TooManyEdgesAborts) {
  EXPECT_DEATH({ GenerateErdosRenyi(5, 11, 1); }, "Check failed");
}

// ---------------------------------------------------------------------
// Barabási–Albert
// ---------------------------------------------------------------------

TEST(BarabasiAlbertTest, SizeAndMinimumDegree) {
  const Graph g = GenerateBarabasiAlbert(500, 4, 3);
  EXPECT_EQ(g.NumVertices(), 500u);
  // Every non-seed vertex attaches with >= 4 edges (dedup can only merge
  // the pair (v,t) once since targets are distinct).
  for (VertexId v = 5; v < 500; ++v) EXPECT_GE(g.Degree(v), 4u);
}

TEST(BarabasiAlbertTest, Deterministic) {
  const Graph a = GenerateBarabasiAlbert(300, 3, 11);
  const Graph b = GenerateBarabasiAlbert(300, 3, 11);
  EXPECT_TRUE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
}

TEST(BarabasiAlbertTest, HeavyTail) {
  const Graph g = GenerateBarabasiAlbert(2000, 3, 5);
  VertexId max_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (~6).
  EXPECT_GT(max_degree, 40u);
}

TEST(BarabasiAlbertTest, Connected) {
  const Graph g = GenerateBarabasiAlbert(400, 2, 21);
  EXPECT_EQ(ConnectedComponents(g).num_components, 1u);
}

// ---------------------------------------------------------------------
// R-MAT
// ---------------------------------------------------------------------

TEST(RmatTest, VertexCountIsPowerOfScale) {
  RmatParams params;
  params.scale = 8;
  params.num_edges = 1000;
  const Graph g = GenerateRmat(params);
  EXPECT_EQ(g.NumVertices(), 256u);
  // Duplicates/self-loops shrink the simple-edge count, but not by much.
  EXPECT_GT(g.NumEdges(), 500u);
  EXPECT_LE(g.NumEdges(), 1000u);
}

TEST(RmatTest, Deterministic) {
  RmatParams params;
  params.scale = 9;
  params.num_edges = 3000;
  params.seed = 77;
  const Graph a = GenerateRmat(params);
  const Graph b = GenerateRmat(params);
  EXPECT_TRUE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
}

TEST(RmatTest, SkewProducesHeavierTailThanUniform) {
  RmatParams skew;
  skew.scale = 10;
  skew.num_edges = 8000;
  skew.seed = 3;
  RmatParams flat = skew;
  flat.a = flat.b = flat.c = 0.25;
  VertexId skew_max = 0;
  VertexId flat_max = 0;
  const Graph gs = GenerateRmat(skew);
  const Graph gf = GenerateRmat(flat);
  for (VertexId v = 0; v < gs.NumVertices(); ++v) {
    skew_max = std::max(skew_max, gs.Degree(v));
  }
  for (VertexId v = 0; v < gf.NumVertices(); ++v) {
    flat_max = std::max(flat_max, gf.Degree(v));
  }
  EXPECT_GT(skew_max, flat_max);
}

// ---------------------------------------------------------------------
// Watts–Strogatz
// ---------------------------------------------------------------------

TEST(WattsStrogatzTest, ZeroRewireIsRingLattice) {
  const Graph g = GenerateWattsStrogatz(20, 3, 0.0, 1);
  EXPECT_EQ(g.NumEdges(), 60u);
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.Degree(v), 6u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(0, 3));
  EXPECT_TRUE(g.HasEdge(0, 17));  // wrap-around
  EXPECT_FALSE(g.HasEdge(0, 4));
}

TEST(WattsStrogatzTest, RewiringChangesLattice) {
  const Graph lattice = GenerateWattsStrogatz(100, 4, 0.0, 2);
  const Graph rewired = GenerateWattsStrogatz(100, 4, 0.5, 2);
  EXPECT_FALSE(std::ranges::equal(lattice.NeighborArray(), rewired.NeighborArray()));
  // Edge count can only shrink via collisions, never grow.
  EXPECT_LE(rewired.NumEdges(), lattice.NumEdges());
  EXPECT_GT(rewired.NumEdges(), lattice.NumEdges() / 2);
}

TEST(WattsStrogatzTest, Deterministic) {
  const Graph a = GenerateWattsStrogatz(64, 3, 0.3, 5);
  const Graph b = GenerateWattsStrogatz(64, 3, 0.3, 5);
  EXPECT_TRUE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
}

// ---------------------------------------------------------------------
// Planted partition
// ---------------------------------------------------------------------

TEST(PlantedPartitionTest, CommunitySizesBalanced) {
  PlantedPartitionParams params;
  params.num_vertices = 103;
  params.num_communities = 4;
  params.seed = 9;
  const auto result = GeneratePlantedPartition(params);
  std::vector<int> sizes(4, 0);
  for (const VertexId c : result.community) ++sizes[c];
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes.front(), 25);
  EXPECT_EQ(sizes.back(), 26);
}

TEST(PlantedPartitionTest, IntraDenserThanInter) {
  PlantedPartitionParams params;
  params.num_vertices = 400;
  params.num_communities = 4;
  params.p_in = 0.3;
  params.p_out = 0.01;
  params.seed = 13;
  const auto result = GeneratePlantedPartition(params);
  EdgeId intra = 0;
  EdgeId inter = 0;
  for (const auto& [u, v] : result.graph.ToEdgeList()) {
    if (result.community[u] == result.community[v]) {
      ++intra;
    } else {
      ++inter;
    }
  }
  // Expected intra ~ 4 * C(100,2) * 0.3 = 5940; inter ~ 6*100*100*0.01 = 600.
  EXPECT_GT(intra, inter * 4);
  EXPECT_NEAR(static_cast<double>(intra), 5940.0, 5940.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(inter), 600.0, 600.0 * 0.4);
}

TEST(PlantedPartitionTest, Deterministic) {
  PlantedPartitionParams params;
  params.seed = 33;
  const auto a = GeneratePlantedPartition(params);
  const auto b = GeneratePlantedPartition(params);
  EXPECT_TRUE(std::ranges::equal(a.graph.NeighborArray(), b.graph.NeighborArray()));
  EXPECT_EQ(a.community, b.community);
}

TEST(PlantedPartitionTest, ExtremeProbabilities) {
  PlantedPartitionParams params;
  params.num_vertices = 30;
  params.num_communities = 3;
  params.p_in = 1.0;
  params.p_out = 0.0;
  params.seed = 2;
  const auto result = GeneratePlantedPartition(params);
  // Three disjoint K10s.
  EXPECT_EQ(result.graph.NumEdges(), 3u * 45u);
  EXPECT_EQ(ConnectedComponents(result.graph).num_components, 3u);
}

// ---------------------------------------------------------------------
// Onion
// ---------------------------------------------------------------------

TEST(OnionTest, ReachesTargetKmax) {
  OnionParams params;
  params.num_vertices = 2000;
  params.num_layers = 8;
  params.target_kmax = 32;
  params.seed = 4;
  const Graph g = GenerateOnion(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  // Construction guarantees coreness >= layer target, so kmax >= target.
  EXPECT_GE(cores.kmax, 32u);
  // And it should not wildly overshoot (each vertex draws at most its
  // layer's degree toward the inside).
  EXPECT_LE(cores.kmax, 96u);
}

TEST(OnionTest, HierarchyIsDeep) {
  OnionParams params;
  params.num_vertices = 3000;
  params.num_layers = 10;
  params.target_kmax = 40;
  params.seed = 6;
  const Graph g = GenerateOnion(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  // Count non-empty shells: a deep onion has many distinct coreness
  // levels, which is what Figures 5/6 sweep over.
  const auto shells = cores.ShellSizes();
  int non_empty = 0;
  for (const VertexId size : shells) non_empty += size > 0 ? 1 : 0;
  EXPECT_GE(non_empty, 10);
}

TEST(OnionTest, Deterministic) {
  OnionParams params;
  params.seed = 12;
  const Graph a = GenerateOnion(params);
  const Graph b = GenerateOnion(params);
  EXPECT_TRUE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
}

TEST(OnionDeathTest, InnermostLayerTooSmallAborts) {
  OnionParams params;
  params.num_vertices = 64;
  params.num_layers = 8;   // 8 vertices per layer
  params.target_kmax = 32;  // needs > 32 vertices in the innermost layer
  EXPECT_DEATH({ GenerateOnion(params); }, "innermost onion layer");
}

}  // namespace
}  // namespace corekit
