#include "corekit/gen/hyperbolic.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/triangle_scoring.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/graph/connected_components.h"

namespace corekit {
namespace {

TEST(HyperbolicTest, Deterministic) {
  HyperbolicParams params;
  params.num_vertices = 500;
  params.seed = 3;
  const Graph a = GenerateHyperbolic(params);
  const Graph b = GenerateHyperbolic(params);
  EXPECT_TRUE(std::ranges::equal(a.NeighborArray(), b.NeighborArray()));
}

TEST(HyperbolicTest, HeavyTailAndDeepHierarchy) {
  HyperbolicParams params;
  params.num_vertices = 3000;
  params.alpha = 0.75;
  params.seed = 11;
  const Graph g = GenerateHyperbolic(params);
  ASSERT_GT(g.NumEdges(), 3000u);

  VertexId max_degree = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    max_degree = std::max(max_degree, g.Degree(v));
  }
  // Hubs far above the mean.
  EXPECT_GT(static_cast<double>(max_degree), 8.0 * g.AverageDegree());

  // A real hierarchy: many non-empty shells, not the flat BA profile.
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  EXPECT_GE(cores.kmax, 8u);
  int non_empty = 0;
  for (const VertexId size : cores.ShellSizes()) {
    non_empty += size > 0 ? 1 : 0;
  }
  EXPECT_GE(non_empty, 8);
}

TEST(HyperbolicTest, HighClustering) {
  HyperbolicParams params;
  params.num_vertices = 1500;
  params.seed = 5;
  const Graph g = GenerateHyperbolic(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const double triangles = static_cast<double>(CountTriangles(ordered));
  const double triplets = static_cast<double>(CountTriplets(g));
  ASSERT_GT(triplets, 0.0);
  // Hyperbolic geometry forces strong transitivity (~0.2 here, vs
  // ER's d/n ~ 0.01 at the same density).
  EXPECT_GT(3.0 * triangles / triplets, 0.15);
}

TEST(HyperbolicTest, RadiusOffsetControlsDensity) {
  HyperbolicParams sparse;
  sparse.num_vertices = 800;
  sparse.seed = 9;
  sparse.radius_offset = 1.0;
  HyperbolicParams dense = sparse;
  dense.radius_offset = -1.5;
  EXPECT_GT(GenerateHyperbolic(dense).NumEdges(),
            GenerateHyperbolic(sparse).NumEdges());
}

TEST(HyperbolicDeathTest, AlphaMustExceedHalf) {
  HyperbolicParams params;
  params.alpha = 0.4;
  EXPECT_DEATH({ GenerateHyperbolic(params); }, "Check failed");
}

}  // namespace
}  // namespace corekit
