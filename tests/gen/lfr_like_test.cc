#include "corekit/gen/lfr_like.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/graph/connected_components.h"

namespace corekit {
namespace {

TEST(LfrLikeTest, Deterministic) {
  LfrLikeParams params;
  params.seed = 42;
  const LfrLikeResult a = GenerateLfrLike(params);
  const LfrLikeResult b = GenerateLfrLike(params);
  EXPECT_TRUE(std::ranges::equal(a.graph.NeighborArray(), b.graph.NeighborArray()));
  EXPECT_EQ(a.community, b.community);
}

TEST(LfrLikeTest, CommunitySizesWithinBounds) {
  LfrLikeParams params;
  params.num_vertices = 2000;
  params.min_community = 25;
  params.max_community = 120;
  params.seed = 3;
  const LfrLikeResult result = GenerateLfrLike(params);
  std::vector<VertexId> sizes(result.num_communities, 0);
  for (const VertexId c : result.community) {
    ASSERT_LT(c, result.num_communities);
    ++sizes[c];
  }
  for (const VertexId size : sizes) {
    EXPECT_GE(size, params.min_community);
    // The remainder-merge can push one community past the cap, but never
    // beyond cap + min.
    EXPECT_LE(size, params.max_community + params.min_community);
  }
}

TEST(LfrLikeTest, DegreesRoughlyWithinConfiguredRange) {
  LfrLikeParams params;
  params.num_vertices = 3000;
  params.min_degree = 6;
  params.max_degree = 40;
  params.mu = 0.15;
  params.seed = 7;
  const LfrLikeResult result = GenerateLfrLike(params);
  // Stub matching drops loops/duplicates/odd stubs, so degrees can dip a
  // little below min; the bulk must be in range and none above max.
  VertexId below = 0;
  for (VertexId v = 0; v < result.graph.NumVertices(); ++v) {
    const VertexId d = result.graph.Degree(v);
    EXPECT_LE(d, params.max_degree);
    below += d + 2 < params.min_degree ? 1u : 0u;
  }
  EXPECT_LT(below, result.graph.NumVertices() / 10);
}

TEST(LfrLikeTest, MixingParameterControlsInterEdges) {
  LfrLikeParams params;
  params.num_vertices = 3000;
  params.seed = 11;
  params.mu = 0.1;
  const LfrLikeResult low = GenerateLfrLike(params);
  params.mu = 0.5;
  const LfrLikeResult high = GenerateLfrLike(params);

  auto inter_fraction = [](const LfrLikeResult& r) {
    EdgeId inter = 0;
    EdgeId total = 0;
    for (const auto& [u, v] : r.graph.ToEdgeList()) {
      ++total;
      inter += r.community[u] != r.community[v] ? 1u : 0u;
    }
    return static_cast<double>(inter) / static_cast<double>(total);
  };
  const double low_mix = inter_fraction(low);
  const double high_mix = inter_fraction(high);
  EXPECT_NEAR(low_mix, 0.1, 0.06);
  EXPECT_NEAR(high_mix, 0.5, 0.12);
  EXPECT_LT(low_mix, high_mix);
}

TEST(LfrLikeTest, LowMixingYieldsHighModularityStructure) {
  LfrLikeParams params;
  params.num_vertices = 1500;
  params.mu = 0.05;
  params.seed = 9;
  const LfrLikeResult result = GenerateLfrLike(params);
  // With 5% mixing the planted partition is strongly modular; use the
  // ground-truth labels directly.
  EdgeId intra = 0;
  for (const auto& [u, v] : result.graph.ToEdgeList()) {
    intra += result.community[u] == result.community[v] ? 1u : 0u;
  }
  EXPECT_GT(static_cast<double>(intra),
            0.85 * static_cast<double>(result.graph.NumEdges()));
}

TEST(LfrLikeDeathTest, InvalidParamsAbort) {
  LfrLikeParams params;
  params.min_degree = 10;
  params.max_degree = 5;
  EXPECT_DEATH({ GenerateLfrLike(params); }, "Check failed");
}

}  // namespace
}  // namespace corekit
