// Differential tests for the parallel OrderedGraph build
// (corekit/parallel/parallel_ordering.h): the parallel two bin sorts and
// tag scan must be bitwise identical to the serial Algorithm 1
// constructor on every graph — same rank order, same shell boundaries,
// same rank-sorted adjacency, same Table II tags.

#include "corekit/parallel/parallel_ordering.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/vertex_ordering.h"
#include "corekit/gen/generators.h"
#include "corekit/graph/graph.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/util/thread_pool.h"

namespace corekit {
namespace {

void ExpectOrderingIdentical(const Graph& graph) {
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph serial(graph, cores);
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    ThreadPool pool(threads);
    const OrderedGraph parallel(graph, cores, pool);

    // Rank order and shell boundaries.
    ASSERT_EQ(parallel.NumVertices(), serial.NumVertices());
    ASSERT_EQ(parallel.kmax(), serial.kmax());
    const auto serial_order = serial.VerticesByRank();
    const auto parallel_order = parallel.VerticesByRank();
    ASSERT_EQ(parallel_order.size(), serial_order.size());
    for (std::size_t i = 0; i < serial_order.size(); ++i) {
      ASSERT_EQ(parallel_order[i], serial_order[i]) << "rank " << i;
    }
    for (VertexId k = 0; k <= serial.kmax(); ++k) {
      ASSERT_EQ(parallel.ShellBegin(k), serial.ShellBegin(k)) << "k=" << k;
      ASSERT_EQ(parallel.ShellEnd(k), serial.ShellEnd(k)) << "k=" << k;
    }

    // Rank-sorted adjacency and the Table II tags.
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      const auto serial_neighbors = serial.Neighbors(v);
      const auto parallel_neighbors = parallel.Neighbors(v);
      ASSERT_EQ(parallel_neighbors.size(), serial_neighbors.size()) << v;
      for (std::size_t i = 0; i < serial_neighbors.size(); ++i) {
        ASSERT_EQ(parallel_neighbors[i], serial_neighbors[i])
            << "v=" << v << " slot=" << i;
      }
      ASSERT_EQ(parallel.TagSame(v), serial.TagSame(v)) << v;
      ASSERT_EQ(parallel.TagPlus(v), serial.TagPlus(v)) << v;
      ASSERT_EQ(parallel.TagHigh(v), serial.TagHigh(v)) << v;

      // The rank arrays behind the intersection kernels.
      ASSERT_EQ(parallel.RankOf(v), serial.RankOf(v)) << v;
      const auto serial_ranks = serial.NeighborRanks(v);
      const auto parallel_ranks = parallel.NeighborRanks(v);
      ASSERT_EQ(parallel_ranks.size(), serial_ranks.size()) << v;
      for (std::size_t i = 0; i < serial_ranks.size(); ++i) {
        ASSERT_EQ(parallel_ranks[i], serial_ranks[i])
            << "v=" << v << " slot=" << i;
      }
    }
  }
}

TEST(ParallelOrderingTest, EmptyGraph) {
  ExpectOrderingIdentical(GraphBuilder::FromEdges(0, {}));
}

TEST(ParallelOrderingTest, IsolatedVertices) {
  ExpectOrderingIdentical(GraphBuilder::FromEdges(7, {}));
}

TEST(ParallelOrderingTest, TriangleWithTail) {
  ExpectOrderingIdentical(
      GraphBuilder::FromEdges(5, {{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}}));
}

TEST(ParallelOrderingTest, GeneratedZooIsBitwiseIdentical) {
  struct ZooEntry {
    std::string name;
    Graph graph;
  };
  std::vector<ZooEntry> zoo;
  zoo.push_back({"er_sparse", GenerateErdosRenyi(300, 600, 3)});
  zoo.push_back({"er_dense", GenerateErdosRenyi(200, 3000, 5)});
  zoo.push_back({"ba", GenerateBarabasiAlbert(400, 6, 9)});
  zoo.push_back({"ws", GenerateWattsStrogatz(256, 4, 0.1, 2)});
  {
    RmatParams params;
    params.scale = 9;
    params.num_edges = 4000;
    params.seed = 77;
    zoo.push_back({"rmat", GenerateRmat(params)});
  }
  {
    OnionParams params;
    params.num_vertices = 300;
    params.target_kmax = 12;
    params.seed = 4;
    zoo.push_back({"onion", GenerateOnion(params)});
  }
  for (const ZooEntry& entry : zoo) {
    SCOPED_TRACE(entry.name);
    ExpectOrderingIdentical(entry.graph);
  }
}

TEST(ParallelOrderingTest, BuildOrderedGraphParallelHelper) {
  const Graph graph = GenerateErdosRenyi(150, 700, 31);
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph serial(graph, cores);
  const OrderedGraph parallel = BuildOrderedGraphParallel(graph, cores, 4);
  const auto serial_order = serial.VerticesByRank();
  const auto parallel_order = parallel.VerticesByRank();
  ASSERT_EQ(parallel_order.size(), serial_order.size());
  for (std::size_t i = 0; i < serial_order.size(); ++i) {
    ASSERT_EQ(parallel_order[i], serial_order[i]);
  }
}

}  // namespace
}  // namespace corekit
