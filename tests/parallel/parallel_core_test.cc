#include "corekit/parallel/parallel_core.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

TEST(ParallelCoreTest, EmptyAndEdgeless) {
  EXPECT_TRUE(ComputeCoreDecompositionParallel(Graph()).coreness.empty());
  const auto result =
      ComputeCoreDecompositionParallel(GraphBuilder::FromEdges(5, {}), 4);
  EXPECT_EQ(result.kmax, 0u);
  EXPECT_EQ(result.peel_order.size(), 5u);
}

TEST(ParallelCoreTest, Fig2MatchesSequential) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition sequential = ComputeCoreDecomposition(g);
  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    const CoreDecomposition parallel =
        ComputeCoreDecompositionParallel(g, threads);
    EXPECT_EQ(parallel.coreness, sequential.coreness)
        << threads << " threads";
    EXPECT_EQ(parallel.kmax, sequential.kmax);
  }
}

TEST(ParallelCoreTest, PeelOrderIsPermutationGroupedByLevel) {
  const Graph g = GenerateBarabasiAlbert(500, 4, 3);
  const CoreDecomposition result = ComputeCoreDecompositionParallel(g, 4);
  ASSERT_EQ(result.peel_order.size(), g.NumVertices());
  std::vector<VertexId> sorted = result.peel_order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_EQ(sorted[v], v);
  // Levels never decrease along the peel order.
  for (std::size_t i = 1; i < result.peel_order.size(); ++i) {
    EXPECT_LE(result.coreness[result.peel_order[i - 1]],
              result.coreness[result.peel_order[i]]);
  }
}

TEST(ParallelCoreTest, PeelOrderIsDegeneracyOrdering) {
  const Graph g = GenerateWattsStrogatz(300, 4, 0.2, 8);
  const CoreDecomposition result = ComputeCoreDecompositionParallel(g, 4);
  std::vector<VertexId> position(g.NumVertices());
  for (VertexId i = 0; i < g.NumVertices(); ++i) {
    position[result.peel_order[i]] = i;
  }
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    VertexId later = 0;
    for (const VertexId u : g.Neighbors(v)) {
      later += position[u] > position[v] ? 1u : 0u;
    }
    EXPECT_LE(later, result.kmax) << "vertex " << v;
  }
}

class ParallelZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(ParallelZooTest, MatchesSequentialAcrossThreadCounts) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition sequential = ComputeCoreDecomposition(graph);
  for (const std::uint32_t threads : {1u, 3u, 8u}) {
    const CoreDecomposition parallel =
        ComputeCoreDecompositionParallel(graph, threads);
    EXPECT_EQ(parallel.coreness, sequential.coreness)
        << GetParam().name << " threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ParallelZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

TEST(ParallelCoreTest, LargeSkewedGraphStressRun) {
  RmatParams params;
  params.scale = 13;
  params.num_edges = 60000;
  params.seed = 5;
  const Graph g = GenerateRmat(params);
  const CoreDecomposition sequential = ComputeCoreDecomposition(g);
  const CoreDecomposition parallel = ComputeCoreDecompositionParallel(g, 8);
  EXPECT_EQ(parallel.coreness, sequential.coreness);
}

}  // namespace
}  // namespace corekit
