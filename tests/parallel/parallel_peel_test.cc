// Differential suite for the frontier-based parallel peel
// (parallel/frontier_peel.h, frontier_truss.h): bitwise equality against
// the serial oracles over the generator zoo and a set of adversarial
// shapes, across thread counts and frontier chunk sizes.

#include "corekit/parallel/frontier_peel.h"

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/analysis/invariant_audit.h"
#include "corekit/core/onion_layers.h"
#include "corekit/engine/core_engine.h"
#include "corekit/gen/lfr_like.h"
#include "corekit/parallel/frontier_truss.h"
#include "corekit/truss/truss_decomposition.h"
#include "test_util.h"

namespace corekit {
namespace {

constexpr std::uint32_t kThreadCounts[] = {1, 2, 3, 8};
constexpr std::size_t kChunkSizes[] = {1, 7, 2048};

// Adversarial shapes the generator zoo does not cover: extreme degree
// skew (star), maximal round counts (path), kmax plateaus (clique
// chain), degenerate sizes, and the near-uniform-coreness regime of the
// AP/D-style datasets (ring lattices: every vertex peels in one giant
// frontier).
std::vector<corekit::testing::NamedGraph> AdversarialZoo() {
  std::vector<corekit::testing::NamedGraph> zoo;
  zoo.push_back({"empty_graph", Graph()});
  zoo.push_back({"single_vertex", GraphBuilder::FromEdges(1, {})});
  {
    GraphBuilder star(64);
    for (VertexId leaf = 1; leaf < 64; ++leaf) star.AddEdge(0, leaf);
    zoo.push_back({"star", star.Build()});
  }
  {
    GraphBuilder path(100);
    for (VertexId v = 0; v + 1 < 100; ++v) path.AddEdge(v, v + 1);
    zoo.push_back({"path", path.Build()});
  }
  {
    // Cliques of growing size, bridged in a chain: K4 - K5 - ... - K8.
    GraphBuilder builder(4 + 5 + 6 + 7 + 8);
    VertexId base = 0;
    VertexId previous_last = 0;
    for (const VertexId size : {4u, 5u, 6u, 7u, 8u}) {
      for (VertexId i = 0; i < size; ++i) {
        for (VertexId j = i + 1; j < size; ++j) {
          builder.AddEdge(base + i, base + j);
        }
      }
      if (base > 0) builder.AddEdge(previous_last, base);
      previous_last = base + size - 1;
      base += size;
    }
    zoo.push_back({"clique_chain", builder.Build()});
  }
  // Near-uniform coreness (the AP dataset regime): a ring lattice peels
  // as one frontier per level with almost every vertex in the last one.
  zoo.push_back({"ring_lattice", GenerateWattsStrogatz(128, 6, 0.0, 21)});
  {
    LfrLikeParams lfr;
    lfr.num_vertices = 200;
    lfr.min_degree = 3;
    lfr.max_degree = 20;
    lfr.min_community = 20;
    lfr.max_community = 60;
    lfr.seed = 22;
    zoo.push_back({"lfr", GenerateLfrLike(lfr).graph});
  }
  return zoo;
}

std::vector<corekit::testing::NamedGraph> FullZoo() {
  std::vector<corekit::testing::NamedGraph> zoo =
      corekit::testing::SmallGraphZoo();
  std::vector<corekit::testing::NamedGraph> extra = AdversarialZoo();
  zoo.insert(zoo.end(), std::make_move_iterator(extra.begin()),
             std::make_move_iterator(extra.end()));
  return zoo;
}

class FrontierPeelZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(FrontierPeelZooTest, CorenessBitwiseEqualAcrossThreadsAndChunks) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition sequential = ComputeCoreDecomposition(graph);
  for (const std::uint32_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (const std::size_t chunk : kChunkSizes) {
      const CoreDecomposition frontier =
          ComputeCoreDecompositionFrontier(graph, pool, {.chunk = chunk});
      EXPECT_EQ(frontier.coreness, sequential.coreness)
          << GetParam().name << " threads=" << threads << " chunk=" << chunk;
      EXPECT_EQ(frontier.kmax, sequential.kmax)
          << GetParam().name << " threads=" << threads << " chunk=" << chunk;
    }
  }
}

TEST_P(FrontierPeelZooTest, EntireResultDeterministicAcrossSchedules) {
  const Graph& graph = GetParam().graph;
  // One-thread run = the reference; every other {threads, chunk}
  // configuration must reproduce it bit for bit — peel_order and round
  // indices included, not just coreness.
  ThreadPool serial_pool(1);
  const FrontierPeelResult reference = ComputeFrontierPeel(graph, serial_pool);
  for (const std::uint32_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    for (const std::size_t chunk : kChunkSizes) {
      const FrontierPeelResult run =
          ComputeFrontierPeel(graph, pool, {.chunk = chunk});
      EXPECT_EQ(run.cores.coreness, reference.cores.coreness);
      EXPECT_EQ(run.cores.peel_order, reference.cores.peel_order)
          << GetParam().name << " threads=" << threads << " chunk=" << chunk;
      EXPECT_EQ(run.layer, reference.layer);
      EXPECT_EQ(run.num_rounds, reference.num_rounds);
    }
  }
}

TEST_P(FrontierPeelZooTest, OutputPassesFirstPrinciplesAudit) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition frontier =
      ComputeCoreDecompositionFrontier(graph, 4);
  const AuditResult audit = AuditCoreDecomposition(graph, frontier);
  EXPECT_TRUE(audit.ok()) << GetParam().name << ": " << audit.Summary();
}

TEST_P(FrontierPeelZooTest, RoundIndicesAreTheOnionLayers) {
  const Graph& graph = GetParam().graph;
  ThreadPool pool(3);
  const FrontierPeelResult run = ComputeFrontierPeel(graph, pool);
  const OnionDecomposition onion = ComputeOnionDecomposition(graph);
  EXPECT_EQ(run.layer, onion.layer) << GetParam().name;
  EXPECT_EQ(run.num_rounds, onion.num_layers);
  EXPECT_EQ(run.cores.coreness, onion.coreness);
}

TEST_P(FrontierPeelZooTest, PeelOrderGroupedByLevelAndSortedWithinRounds) {
  const Graph& graph = GetParam().graph;
  ThreadPool pool(8);
  const FrontierPeelResult run = ComputeFrontierPeel(graph, pool);
  const VertexId n = graph.NumVertices();
  ASSERT_EQ(run.cores.peel_order.size(), n);
  std::vector<VertexId> sorted = run.cores.peel_order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < n; ++v) ASSERT_EQ(sorted[v], v);
  for (std::size_t i = 1; i < run.cores.peel_order.size(); ++i) {
    const VertexId prev = run.cores.peel_order[i - 1];
    const VertexId cur = run.cores.peel_order[i];
    // Levels never decrease along the order; rounds partition it into
    // consecutive segments, ascending by id inside each segment.
    EXPECT_LE(run.cores.coreness[prev], run.cores.coreness[cur]);
    EXPECT_LE(run.layer[prev], run.layer[cur]);
    if (run.layer[prev] == run.layer[cur]) {
      EXPECT_LT(prev, cur);
    }
  }
}

TEST_P(FrontierPeelZooTest, TrussBitwiseEqualAcrossThreads) {
  const Graph& graph = GetParam().graph;
  const TrussDecomposition sequential = ComputeTrussDecomposition(graph);
  for (const std::uint32_t threads : kThreadCounts) {
    ThreadPool pool(threads);
    const TrussDecomposition frontier =
        ComputeTrussDecompositionFrontier(graph, pool, {.chunk = 7});
    EXPECT_EQ(frontier.edges, sequential.edges);
    EXPECT_EQ(frontier.truss, sequential.truss)
        << GetParam().name << " threads=" << threads;
    EXPECT_EQ(frontier.tmax, sequential.tmax) << GetParam().name;
  }
}

TEST_P(FrontierPeelZooTest, ParallelSupportsMatchSerialCounting) {
  const Graph& graph = GetParam().graph;
  const std::vector<EdgeId> slot_edge = MapSlotsToEdges(graph);
  const std::vector<VertexId> serial = ComputeEdgeSupports(graph, slot_edge);
  ThreadPool pool(3);
  EXPECT_EQ(ComputeEdgeSupportsParallel(graph, slot_edge, pool, {.chunk = 5}),
            serial)
      << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, FrontierPeelZooTest, ::testing::ValuesIn(FullZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

TEST(FrontierPeelTest, LargeSkewedGraphStressRun) {
  RmatParams params;
  params.scale = 13;
  params.num_edges = 60000;
  params.seed = 5;
  const Graph g = GenerateRmat(params);
  const CoreDecomposition sequential = ComputeCoreDecomposition(g);
  ThreadPool pool(8);
  const CoreDecomposition frontier = ComputeCoreDecompositionFrontier(g, pool);
  EXPECT_EQ(frontier.coreness, sequential.coreness);
  EXPECT_EQ(frontier.kmax, sequential.kmax);
}

TEST(FrontierPeelTest, TrussMatchesNaiveOracle) {
  const Graph g = GenerateErdosRenyi(40, 200, 31);
  const TrussDecomposition frontier = ComputeTrussDecompositionFrontier(g, 4);
  EXPECT_EQ(frontier.truss, NaiveTrussNumbers(g));
}

// The tentpole's composition requirement: an engine whose baseline
// decomposition came from the frontier peel must still agree with a cold
// serial engine after ApplyBatch churn (the DecompositionFromCoreness
// guided peel runs on top of frontier-produced coreness).
TEST(FrontierPeelTest, ComposesWithApplyBatchMutablePath) {
  const Graph graph = GenerateBarabasiAlbert(300, 4, 33);
  CoreEngineOptions options;
  options.parallel_peel = true;
  options.num_threads = 4;
  CoreEngine engine{Graph(graph), options};
  // Warm decomposition via the frontier peel.
  (void)engine.Cores();

  EdgeList edges = graph.ToEdgeList();
  const EdgeList deletes(edges.begin(), edges.begin() + 40);
  EdgeList inserts;
  for (VertexId v = 0; v + 7 < 300; v += 7) {
    inserts.push_back({v, v + 7});
  }
  const CoreEngine::BatchResult batch = engine.ApplyBatch(inserts, deletes);
  EXPECT_EQ(batch.deleted, 40u);
  EXPECT_GT(batch.inserted, 0u);

  CoreEngine cold{Graph(engine.graph())};
  EXPECT_EQ(engine.Cores().coreness, cold.Cores().coreness);
  EXPECT_EQ(engine.Cores().kmax, cold.Cores().kmax);
  const AuditResult audit =
      AuditCoreDecomposition(engine.graph(), engine.Cores());
  EXPECT_TRUE(audit.ok()) << audit.Summary();
}

}  // namespace
}  // namespace corekit
