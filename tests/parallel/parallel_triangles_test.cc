#include "corekit/parallel/parallel_triangles.h"

#include <gtest/gtest.h>

#include "corekit/core/triangle_scoring.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(ParallelTrianglesTest, Fig2) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  EXPECT_EQ(CountTrianglesParallel(ordered, 4), 10u);
}

TEST(ParallelTrianglesTest, MatchesSequentialAcrossZooAndThreads) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);
    const std::uint64_t expected = CountTriangles(ordered);
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      EXPECT_EQ(CountTrianglesParallel(ordered, threads), expected)
          << name << " threads=" << threads;
    }
  }
}

TEST(ParallelTrianglesTest, LargeGraphStress) {
  RmatParams params;
  params.scale = 14;
  params.num_edges = 200000;
  params.seed = 31;
  const Graph g = GenerateRmat(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  EXPECT_EQ(CountTrianglesParallel(ordered, 8), CountTriangles(ordered));
}

TEST(ParallelTrianglesTest, PerVertexMatchesSequentialKernel) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);
    TriangleScratch scratch(graph.NumVertices(), 0);
    std::vector<std::uint64_t> expected(graph.NumVertices(), 0);
    std::uint64_t total = 0;
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      expected[v] = CountTrianglesAtVertex(ordered, v, scratch);
      total += expected[v];
    }
    for (const std::uint32_t threads : {1u, 2u, 8u}) {
      const std::vector<std::uint64_t> counts =
          CountTrianglesPerVertex(ordered, threads);
      EXPECT_EQ(counts, expected) << name << " threads=" << threads;
      std::uint64_t sum = 0;
      for (const std::uint64_t c : counts) sum += c;
      EXPECT_EQ(sum, total) << name;
    }
  }
}

TEST(ParallelTrianglesTest, PerVertexSumsToGlobalCountOnLargeGraph) {
  RmatParams params;
  params.scale = 12;
  params.num_edges = 60000;
  params.seed = 13;
  const Graph g = GenerateRmat(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const std::vector<std::uint64_t> counts = CountTrianglesPerVertex(ordered, 8);
  std::uint64_t sum = 0;
  for (const std::uint64_t c : counts) sum += c;
  EXPECT_EQ(sum, CountTriangles(ordered));
}

}  // namespace
}  // namespace corekit
