// End-to-end integration tests: full pipelines from generation / file IO
// through decomposition, ordering, forest, scoring and applications.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/corekit.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(IntegrationTest, FileToScoresPipeline) {
  // Generate, save, reload, and verify that the best-k answers survive the
  // round trip unchanged.
  const Graph original = GenerateBarabasiAlbert(300, 3, 71);
  const std::string path = ::testing::TempDir() + "/integration_pipeline.bin";
  ASSERT_TRUE(WriteBinaryGraph(original, path).ok());
  const auto reloaded = ReadBinaryGraph(path);
  ASSERT_TRUE(reloaded.ok());

  for (const Metric metric : kAllMetrics) {
    const CoreDecomposition cores_a = ComputeCoreDecomposition(original);
    const CoreDecomposition cores_b = ComputeCoreDecomposition(*reloaded);
    const OrderedGraph ordered_a(original, cores_a);
    const OrderedGraph ordered_b(*reloaded, cores_b);
    const CoreSetProfile a = FindBestCoreSet(ordered_a, metric);
    const CoreSetProfile b = FindBestCoreSet(ordered_b, metric);
    EXPECT_EQ(a.best_k, b.best_k) << MetricShortName(metric);
    EXPECT_EQ(a.scores, b.scores) << MetricShortName(metric);
  }
}

TEST(IntegrationTest, PlantedCommunitiesScoreHighOnDensityMetrics) {
  // Dense planted communities embedded in a sparse ring: the best k-core
  // set under average degree must be the dense communities, not the whole
  // graph.
  PlantedPartitionParams params;
  params.num_vertices = 500;
  params.num_communities = 5;
  params.p_in = 0.5;
  params.p_out = 0.002;
  params.seed = 3;
  const auto planted = GeneratePlantedPartition(params);
  GraphBuilder builder(1000);
  for (const auto& [u, v] : planted.graph.ToEdgeList()) builder.AddEdge(u, v);
  for (VertexId v = 500; v < 1000; ++v) {
    builder.AddEdge(v, v + 1 == 1000 ? 500 : v + 1);  // sparse ring
    builder.AddEdge(v, v - 500 + (v % 17));  // light attachment downward
  }
  const Graph g = builder.Build();

  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreSetProfile profile =
      FindBestCoreSet(ordered, Metric::kAverageDegree);
  // The dense blocks have internal average degree ~ 0.5 * 100 = 50; the
  // whole graph is much sparser, so the best k is well above 1.
  EXPECT_GT(profile.best_k, 5u);
  // And the winning core set is much smaller than the graph.
  EXPECT_LT(profile.primaries[profile.best_k].num_vertices,
            g.NumVertices());
}

TEST(IntegrationTest, BestSingleCoreBeatsOrMatchesBestCoreSet) {
  // The best single core's score is >= the best core set's score for
  // monotone per-subgraph metrics like average degree (a set is a
  // disjoint union; its average degree is a weighted mediant of its
  // components').
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    if (graph.NumVertices() == 0) continue;
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);
    const CoreForest forest(graph, cores);
    const CoreSetProfile set_profile =
        FindBestCoreSet(ordered, Metric::kAverageDegree);
    const SingleCoreProfile single_profile =
        FindBestSingleCore(ordered, forest, Metric::kAverageDegree);
    EXPECT_GE(single_profile.best_score, set_profile.best_score - 1e-9)
        << name;
  }
}

TEST(IntegrationTest, OptDIsBestAverageDegreeCore) {
  // Opt-D (application layer) must agree with the core-library profile.
  const Graph g = GenerateRmat({/*scale=*/9, /*num_edges=*/4000, 0.57, 0.19,
                                0.19, /*seed=*/13});
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreForest forest(g, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, Metric::kAverageDegree);
  const DensestSubgraphResult opt_d = OptDDensestSubgraph(g);
  EXPECT_NEAR(opt_d.average_degree, profile.best_score, 1e-9);
}

TEST(IntegrationTest, SubgraphExtractionAgreesWithProfilePrimaries) {
  // Extracting the winning core set as a standalone graph reproduces the
  // profile's primary values.
  const Graph g = GenerateWattsStrogatz(400, 5, 0.1, 31);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreSetProfile profile =
      FindBestCoreSet(ordered, Metric::kInternalDensity);
  const VertexId k = profile.best_k;
  const InducedSubgraph sub =
      ExtractInducedSubgraph(g, CoreSetMask(cores, k));
  EXPECT_EQ(sub.graph.NumVertices(), profile.primaries[k].num_vertices);
  EXPECT_EQ(sub.graph.NumEdges(), profile.primaries[k].InternalEdges());
}

TEST(IntegrationTest, TrivialKChoicesAreOftenSuboptimal) {
  // Section V-A's qualitative claim: k = average degree or k = kmax is
  // usually not the best k.  On an onion graph the profile varies enough
  // that the best k differs from the naive picks for at least one metric.
  OnionParams params;
  params.num_vertices = 2000;
  params.num_layers = 8;
  params.target_kmax = 24;
  params.seed = 8;
  const Graph g = GenerateOnion(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);

  const auto davg = static_cast<VertexId>(g.AverageDegree());
  int differs_from_davg = 0;
  for (const Metric metric :
       {Metric::kAverageDegree, Metric::kModularity, Metric::kCutRatio}) {
    const CoreSetProfile profile = FindBestCoreSet(ordered, metric);
    differs_from_davg += (profile.best_k != davg) ? 1 : 0;
  }
  EXPECT_GE(differs_from_davg, 1);
}

TEST(IntegrationTest, SnapFormatInteropWithExternalTools) {
  // Write in SNAP format, reload, and confirm the decomposition is
  // isomorphic (same sorted coreness multiset).
  const Graph g = GenerateErdosRenyi(250, 900, 55);
  const std::string path = ::testing::TempDir() + "/interop.snap.txt";
  ASSERT_TRUE(WriteSnapEdgeList(g, path).ok());
  const auto reloaded = ReadSnapEdgeList(path);
  ASSERT_TRUE(reloaded.ok());
  auto a = ComputeCoreDecomposition(g).coreness;
  auto b = ComputeCoreDecomposition(*reloaded).coreness;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  // Isolated vertices are dropped by the relabeling read; compare the
  // non-isolated suffix.
  a.erase(a.begin(),
          std::find_if(a.begin(), a.end(), [](VertexId c) { return c > 0; }));
  b.erase(b.begin(),
          std::find_if(b.begin(), b.end(), [](VertexId c) { return c > 0; }));
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace corekit
