#include "corekit/util/thread_pool.h"

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTotal = 100000;
  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pool.ParallelFor(kTotal, 64, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SerialPoolWorks) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no synchronization needed: serial path
  pool.ParallelFor(1000, 10, [&sum](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 1000u * 999 / 2);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&called](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(997, 13, [&total](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 997);
}

TEST(ThreadPoolTest, ChunkBoundariesAreDisjointAndOrderedWithin) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.ParallelFor(12345, 100,
                   [&sum](std::size_t begin, std::size_t end) {
                     ASSERT_LT(begin, end);
                     ASSERT_LE(end, 12345u);
                     sum.fetch_add((end - begin), std::memory_order_relaxed);
                   });
  EXPECT_EQ(sum.load(), 12345u);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

// num_threads == 1 degenerates to serial: every chunk runs on the calling
// thread (the documented contract that makes `sum += i` in
// SerialPoolWorks race-free).
TEST(ThreadPoolTest, SerialPoolRunsEntirelyOnCallingThread) {
  ThreadPool pool(1);
  const std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  pool.ParallelFor(100, 7, [&](std::size_t, std::size_t) {
    seen.insert(std::this_thread::get_id());
  });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
}

// total <= chunk is a single chunk; the fast path keeps it on the caller
// even for a multi-threaded pool.
TEST(ThreadPoolTest, ChunkLargerThanTotalRunsOnCallerAsOneChunk) {
  ThreadPool pool(4);
  const std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  std::thread::id where;
  pool.ParallelFor(10, 64, [&](std::size_t begin, std::size_t end) {
    ++calls;
    where = std::this_thread::get_id();
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(where, caller);
}

// ParallelFor from several threads at once (the shared-CoreEngine serving
// path): calls serialize on the entry mutex and each job still covers its
// range exactly once.
TEST(ThreadPoolTest, ConcurrentCallersEachCoverTheirRangeExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCallers = 8;
  constexpr std::size_t kTotal = 20000;
  std::vector<std::uint64_t> sums(kCallers, 0);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&pool, &sums, c] {
      std::atomic<std::uint64_t> sum{0};
      pool.ParallelFor(kTotal, 128,
                       [&sum](std::size_t begin, std::size_t end) {
                         for (std::size_t i = begin; i < end; ++i) {
                           sum.fetch_add(i, std::memory_order_relaxed);
                         }
                       });
      sums[c] = sum.load();
    });
  }
  for (std::thread& caller : callers) caller.join();
  for (std::size_t c = 0; c < kCallers; ++c) {
    EXPECT_EQ(sums[c], kTotal * (kTotal - 1) / 2) << "caller " << c;
  }
}

#ifndef NDEBUG
// ParallelFor is not reentrant: a nested call from inside a job would
// self-deadlock on the entry hand-off.  Debug builds trip a DCHECK (the
// thread-local "draining this pool" marker) instead of hanging; NDEBUG
// builds compile the check out, so the death test only exists in debug.
TEST(ThreadPoolDeathTest, NestedParallelForTripsDcheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(4, 1, [&pool](std::size_t, std::size_t) {
          pool.ParallelFor(2, 1, [](std::size_t, std::size_t) {});
        });
      },
      "tls_draining_pool");
}

// The serial path (single-threaded pool) must enforce the same contract:
// whether nesting deadlocks depends on the thread count, so debug builds
// reject it everywhere.
TEST(ThreadPoolDeathTest, NestedSerialParallelForTripsDcheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.ParallelFor(4, 1, [&pool](std::size_t, std::size_t) {
          pool.ParallelFor(2, 1, [](std::size_t, std::size_t) {});
        });
      },
      "tls_draining_pool");
}
#endif  // NDEBUG

}  // namespace
}  // namespace corekit
