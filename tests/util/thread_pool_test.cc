#include "corekit/util/thread_pool.h"

#include <atomic>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kTotal = 100000;
  std::vector<std::atomic<int>> hits(kTotal);
  for (auto& h : hits) h.store(0, std::memory_order_relaxed);
  pool.ParallelFor(kTotal, 64, [&hits](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPoolTest, SerialPoolWorks) {
  ThreadPool pool(1);
  std::size_t sum = 0;  // no synchronization needed: serial path
  pool.ParallelFor(1000, 10, [&sum](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum, 1000u * 999 / 2);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  ThreadPool pool(4);
  bool called = false;
  pool.ParallelFor(0, 16, [&called](std::size_t, std::size_t) {
    called = true;
  });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ReusableAcrossManyJobs) {
  ThreadPool pool(8);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 200; ++job) {
    pool.ParallelFor(997, 13, [&total](std::size_t begin, std::size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 997);
}

TEST(ThreadPoolTest, ChunkBoundariesAreDisjointAndOrderedWithin) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> sum{0};
  pool.ParallelFor(12345, 100,
                   [&sum](std::size_t begin, std::size_t end) {
                     ASSERT_LT(begin, end);
                     ASSERT_LE(end, 12345u);
                     sum.fetch_add((end - begin), std::memory_order_relaxed);
                   });
  EXPECT_EQ(sum.load(), 12345u);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.num_threads(), 1u);
}

#ifndef NDEBUG
// ParallelFor is not reentrant: a nested call from inside a job would
// deadlock (the outer call holds the pool).  Debug builds trip a DCHECK
// instead of hanging; NDEBUG builds compile the check out, so the death
// test only exists in debug.
TEST(ThreadPoolDeathTest, NestedParallelForTripsDcheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(2);
        pool.ParallelFor(4, 1, [&pool](std::size_t, std::size_t) {
          pool.ParallelFor(2, 1, [](std::size_t, std::size_t) {});
        });
      },
      "in_flight_");
}

// The serial path (single-threaded pool) must enforce the same contract:
// whether nesting deadlocks depends on the thread count, so debug builds
// reject it everywhere.
TEST(ThreadPoolDeathTest, NestedSerialParallelForTripsDcheck) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool pool(1);
        pool.ParallelFor(4, 1, [&pool](std::size_t, std::size_t) {
          pool.ParallelFor(2, 1, [](std::size_t, std::size_t) {});
        });
      },
      "in_flight_");
}
#endif  // NDEBUG

}  // namespace
}  // namespace corekit
