#include "corekit/util/logging.h"

#include <gtest/gtest.h>

#include "corekit/util/status.h"

namespace corekit {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  COREKIT_CHECK(true);
  COREKIT_CHECK_EQ(1, 1);
  COREKIT_CHECK_NE(1, 2);
  COREKIT_CHECK_LT(1, 2);
  COREKIT_CHECK_LE(2, 2);
  COREKIT_CHECK_GT(3, 2);
  COREKIT_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ COREKIT_CHECK(false) << "extra context"; }, "Check failed");
}

TEST(CheckDeathTest, FailingCheckEqShowsOperands) {
  const int a = 3;
  const int b = 4;
  EXPECT_DEATH({ COREKIT_CHECK_EQ(a, b); }, "3 vs. 4");
}

TEST(CheckDeathTest, StreamedContextAppears) {
  EXPECT_DEATH({ COREKIT_CHECK(1 == 2) << "ctx" << 99; }, "ctx99");
}

TEST(CheckDeathTest, MessageNamesTheFailedCondition) {
  // The stringized condition itself must appear, so a bare CHECK without
  // streamed context still identifies the invariant.
  const int n = 1;
  EXPECT_DEATH({ COREKIT_CHECK(n < 0); }, "Check failed: n < 0");
}

TEST(CheckDeathTest, CheckOpMessageShowsExpressionAndOperands) {
  const int lhs = 10;
  const int rhs = 7;
  EXPECT_DEATH({ COREKIT_CHECK_LE(lhs, rhs); },
               "Check failed: lhs <= rhs \\(10 vs. 7\\)");
}

TEST(CheckDeathTest, CheckOpStreamsStringOperands) {
  const std::string got = "beta";
  const std::string want = "alpha";
  EXPECT_DEATH({ COREKIT_CHECK_EQ(got, want); }, "beta vs. alpha");
}

#ifndef NDEBUG
TEST(DCheckDeathTest, FailingDCheckAbortsInDebug) {
  EXPECT_DEATH({ COREKIT_DCHECK(false); }, "Check failed: false");
}

TEST(DCheckDeathTest, DCheckOpShowsOperandsInDebug) {
  const int a = 5;
  const int b = 6;
  EXPECT_DEATH({ COREKIT_DCHECK_EQ(a, b); }, "5 vs. 6");
}
#else
TEST(DCheckTest, FailingDCheckIsNoopInRelease) {
  // NDEBUG DCHECK compiles the condition but must neither evaluate nor
  // abort on it.
  bool evaluated = false;
  auto fail = [&evaluated] {
    evaluated = true;
    return false;
  };
  COREKIT_DCHECK(fail());
  COREKIT_DCHECK_EQ(1, 2);
  EXPECT_FALSE(evaluated);
}
#endif

TEST(CheckOkTest, PassingCheckOkIsSilent) {
  COREKIT_CHECK_OK(Status::OK());
  COREKIT_CHECK_OK(Status()) << "never rendered";
}

TEST(CheckOkDeathTest, FailingCheckOkShowsCodeAndMessage) {
  EXPECT_DEATH({ COREKIT_CHECK_OK(Status::IoError("disk gone")); },
               "Check failed: .* is OK \\(IoError: disk gone\\)");
}

TEST(CheckOkDeathTest, StreamedContextAppears) {
  const Status status = Status::InvalidArgument("k = -1");
  EXPECT_DEATH({ COREKIT_CHECK_OK(status) << "while parsing query"; },
               "InvalidArgument: k = -1.*while parsing query");
}

TEST(CheckOkDeathTest, EvaluatesTheExpressionExactlyOnce) {
  int calls = 0;
  auto make = [&calls] {
    ++calls;
    return Status::OK();
  };
  COREKIT_CHECK_OK(make());
  EXPECT_EQ(calls, 1);
}

TEST(LogTest, SeverityFilterSuppressesInfo) {
  const LogSeverity before = GetMinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  COREKIT_LOG(INFO) << "should be dropped silently";
  COREKIT_LOG(WARNING) << "also dropped";
  SetMinLogSeverity(before);
}

TEST(CheckTest, CheckUsableInExpressionContext) {
  // The voidified ternary must be a valid expression, e.g. in a comma
  // position or a lambda body returning void.
  auto f = [](bool ok) { COREKIT_CHECK(ok); };
  f(true);
}

}  // namespace
}  // namespace corekit
