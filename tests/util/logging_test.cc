#include "corekit/util/logging.h"

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  COREKIT_CHECK(true);
  COREKIT_CHECK_EQ(1, 1);
  COREKIT_CHECK_NE(1, 2);
  COREKIT_CHECK_LT(1, 2);
  COREKIT_CHECK_LE(2, 2);
  COREKIT_CHECK_GT(3, 2);
  COREKIT_CHECK_GE(3, 3);
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH({ COREKIT_CHECK(false) << "extra context"; }, "Check failed");
}

TEST(CheckDeathTest, FailingCheckEqShowsOperands) {
  const int a = 3;
  const int b = 4;
  EXPECT_DEATH({ COREKIT_CHECK_EQ(a, b); }, "3 vs. 4");
}

TEST(CheckDeathTest, StreamedContextAppears) {
  EXPECT_DEATH({ COREKIT_CHECK(1 == 2) << "ctx" << 99; }, "ctx99");
}

TEST(LogTest, SeverityFilterSuppressesInfo) {
  const LogSeverity before = GetMinLogSeverity();
  SetMinLogSeverity(LogSeverity::kError);
  COREKIT_LOG(INFO) << "should be dropped silently";
  COREKIT_LOG(WARNING) << "also dropped";
  SetMinLogSeverity(before);
}

TEST(CheckTest, CheckUsableInExpressionContext) {
  // The voidified ternary must be a valid expression, e.g. in a comma
  // position or a lambda body returning void.
  auto f = [](bool ok) { COREKIT_CHECK(ok); };
  f(true);
}

}  // namespace
}  // namespace corekit
