#include "corekit/util/status.h"

#include <string>

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

TEST(ResultDeathTest, ValueOnErrorAborts) {
  Result<int> r(Status::Internal("boom"));
  EXPECT_DEATH({ (void)r.value(); }, "Result::value");
}

TEST(ResultDeathTest, OkStatusWithoutValueAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; }, "without a value");
}

TEST(ReturnIfErrorTest, PropagatesError) {
  auto fails = [] { return Status::Corruption("bad"); };
  auto wrapper = [&]() -> Status {
    COREKIT_RETURN_IF_ERROR(fails());
    return Status::OK();
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kCorruption);
}

TEST(ReturnIfErrorTest, PassesThroughOk) {
  auto succeeds = [] { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    COREKIT_RETURN_IF_ERROR(succeeds());
    return Status::Unimplemented("reached the end");
  };
  EXPECT_EQ(wrapper().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace corekit
