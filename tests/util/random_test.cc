#include "corekit/util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(SplitMix64Test, DeterministicStream) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(equal, 3);
}

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversAllResidues) {
  Rng rng(5);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BoundedIsRoughlyUniform) {
  Rng rng(31);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBounded(kBuckets)];
  for (const int c : counts) {
    // Expected 10000 per bucket; allow +-5%.
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.05);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(8);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const std::int64_t x = rng.NextInt(-3, 3);
    EXPECT_GE(x, -3);
    EXPECT_LE(x, 3);
    saw_lo |= (x == -3);
    saw_hi |= (x == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(55);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(RngTest, NextBoolMatchesProbability) {
  Rng rng(77);
  int heads = 0;
  for (int i = 0; i < 100000; ++i) heads += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(heads / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(10);
  Rng b = a.Split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(equal, 3);
}

TEST(SeedFromStringTest, StableAndDistinct) {
  EXPECT_EQ(SeedFromString("dblp"), SeedFromString("dblp"));
  EXPECT_NE(SeedFromString("dblp"), SeedFromString("orkut"));
  EXPECT_NE(SeedFromString(""), SeedFromString("a"));
}

}  // namespace
}  // namespace corekit
