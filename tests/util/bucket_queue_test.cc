#include "corekit/util/bucket_queue.h"

#include <algorithm>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/util/random.h"

namespace corekit {
namespace {

TEST(BucketQueueTest, StartsEmpty) {
  BucketQueue<int> q(10);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(BucketQueueTest, PopMaxReturnsHighestKey) {
  BucketQueue<int> q(10);
  q.Push(3, 30);
  q.Push(7, 70);
  q.Push(5, 50);
  auto [k1, v1] = q.PopMax();
  EXPECT_EQ(k1, 7u);
  EXPECT_EQ(v1, 70);
  auto [k2, v2] = q.PopMax();
  EXPECT_EQ(k2, 5u);
  EXPECT_EQ(v2, 50);
  auto [k3, v3] = q.PopMax();
  EXPECT_EQ(k3, 3u);
  EXPECT_EQ(v3, 30);
  EXPECT_TRUE(q.empty());
}

TEST(BucketQueueTest, LifoWithinBucket) {
  BucketQueue<int> q(4);
  q.Push(2, 1);
  q.Push(2, 2);
  q.Push(2, 3);
  EXPECT_EQ(q.PopMax().second, 3);
  EXPECT_EQ(q.PopMax().second, 2);
  EXPECT_EQ(q.PopMax().second, 1);
}

TEST(BucketQueueTest, PushAfterPopRaisesCursor) {
  BucketQueue<int> q(10);
  q.Push(2, 20);
  EXPECT_EQ(q.PopMax().first, 2u);
  q.Push(9, 90);  // cursor must jump back up
  q.Push(1, 10);
  EXPECT_EQ(q.PopMax().first, 9u);
  EXPECT_EQ(q.PopMax().first, 1u);
}

TEST(BucketQueueTest, DuplicateValuesAllowed) {
  BucketQueue<int> q(3);
  q.Push(1, 42);
  q.Push(2, 42);
  EXPECT_EQ(q.PopMax().second, 42);
  EXPECT_EQ(q.PopMax().second, 42);
}

TEST(BucketQueueTest, ClearEmptiesQueue) {
  BucketQueue<int> q(5);
  q.Push(4, 1);
  q.Push(2, 2);
  q.Clear();
  EXPECT_TRUE(q.empty());
  q.Push(0, 3);
  EXPECT_EQ(q.PopMax().first, 0u);
}

TEST(BucketQueueTest, ZeroMaxKeyWorks) {
  BucketQueue<int> q(0);
  q.Push(0, 5);
  EXPECT_EQ(q.PopMax(), (std::pair<std::uint32_t, int>{0, 5}));
}

TEST(BucketQueueDeathTest, PopOnEmptyAborts) {
  BucketQueue<int> q(3);
  EXPECT_DEATH({ q.PopMax(); }, "Check failed");
}

// Randomized differential test against a reference multiset ordering.
TEST(BucketQueueTest, MatchesReferenceOnRandomWorkload) {
  Rng rng(2024);
  BucketQueue<int> q(63);
  std::vector<std::pair<std::uint32_t, int>> reference;  // (key, value)
  int next_value = 0;
  for (int step = 0; step < 5000; ++step) {
    if (reference.empty() || rng.NextBool(0.6)) {
      const auto key = static_cast<std::uint32_t>(rng.NextBounded(64));
      q.Push(key, next_value);
      reference.emplace_back(key, next_value);
      ++next_value;
    } else {
      const auto [key, value] = q.PopMax();
      // Reference: max key; among equals, the most recently pushed.
      auto it = std::max_element(
          reference.begin(), reference.end(),
          [](const auto& a, const auto& b) { return a.first < b.first; });
      // Find the last element with the max key (LIFO within bucket).
      const std::uint32_t max_key = it->first;
      auto last = reference.end();
      for (auto i = reference.begin(); i != reference.end(); ++i) {
        if (i->first == max_key) last = i;
      }
      EXPECT_EQ(key, max_key);
      EXPECT_EQ(value, last->second);
      reference.erase(last);
    }
  }
  EXPECT_EQ(q.size(), reference.size());
}

}  // namespace
}  // namespace corekit
