#include "corekit/util/json.h"

#include <cmath>
#include <string>

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(JsonTest, DefaultIsNull) {
  const Json value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.Dump(), "null");
}

TEST(JsonTest, ScalarConstructionAndDump) {
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-7).Dump(), "-7");
  EXPECT_EQ(Json(2.5).Dump(), "2.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
  EXPECT_EQ(Json(std::string("hi")).Dump(), "\"hi\"");
}

TEST(JsonTest, IntegralDoublesPrintWithoutFraction) {
  EXPECT_EQ(Json(3.0).Dump(), "3");
  EXPECT_EQ(Json(0.0).Dump(), "0");
  EXPECT_EQ(Json(std::uint64_t{1234567}).Dump(), "1234567");
}

TEST(JsonTest, NonFiniteNumbersDumpAsNull) {
  EXPECT_EQ(Json(std::nan("")).Dump(), "null");
  EXPECT_EQ(Json(HUGE_VAL).Dump(), "null");
}

TEST(JsonTest, DoublesRoundTripThroughDump) {
  for (const double value : {0.1, 1.0 / 3.0, 1e-300, 6.02214076e23}) {
    const Json dumped(value);
    Result<Json> parsed = Json::Parse(dumped.Dump());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->number_value(), value);
  }
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  Json object = Json::Object();
  object.Set("zebra", 1);
  object.Set("apple", 2);
  object.Set("mango", 3);
  EXPECT_EQ(object.Dump(), "{\"zebra\":1,\"apple\":2,\"mango\":3}");
}

TEST(JsonTest, SetOverwritesInPlace) {
  Json object = Json::Object();
  object.Set("a", 1);
  object.Set("b", 2);
  object.Set("a", 9);
  EXPECT_EQ(object.Dump(), "{\"a\":9,\"b\":2}");
  ASSERT_EQ(object.members().size(), 2u);
}

TEST(JsonTest, FindReturnsValueOrNull) {
  Json object = Json::Object();
  object.Set("present", "yes");
  ASSERT_NE(object.Find("present"), nullptr);
  EXPECT_EQ(object.Find("present")->string_value(), "yes");
  EXPECT_EQ(object.Find("absent"), nullptr);
  // Find on a non-object is a graceful nullptr, not a CHECK.
  EXPECT_EQ(Json(1).Find("anything"), nullptr);
}

TEST(JsonTest, NumberOrAndStringOrFallbacks) {
  Json object = Json::Object();
  object.Set("n", 4.5);
  object.Set("s", "text");
  EXPECT_EQ(object.NumberOr("n", -1), 4.5);
  EXPECT_EQ(object.NumberOr("missing", -1), -1);
  EXPECT_EQ(object.NumberOr("s", -1), -1);  // wrong type -> fallback
  EXPECT_EQ(object.StringOr("s", "?"), "text");
  EXPECT_EQ(object.StringOr("missing", "?"), "?");
  EXPECT_EQ(object.StringOr("n", "?"), "?");
}

TEST(JsonTest, ArrayAppendAndDump) {
  Json array = Json::Array();
  array.Append(1);
  array.Append("two");
  array.Append(Json());
  EXPECT_EQ(array.Dump(), "[1,\"two\",null]");
  EXPECT_EQ(array.items().size(), 3u);
}

TEST(JsonTest, StringEscapesDump) {
  EXPECT_EQ(Json("a\"b\\c\nd\te\r").Dump(),
            "\"a\\\"b\\\\c\\nd\\te\\r\"");
  EXPECT_EQ(Json(std::string("\x01")).Dump(), "\"\\u0001\"");
}

TEST(JsonTest, ParseScalars) {
  EXPECT_TRUE(Json::Parse("null")->is_null());
  EXPECT_TRUE(Json::Parse("true")->bool_value());
  EXPECT_FALSE(Json::Parse("false")->bool_value());
  EXPECT_EQ(Json::Parse("-12.5e2")->number_value(), -1250.0);
  EXPECT_EQ(Json::Parse("\"ok\"")->string_value(), "ok");
}

TEST(JsonTest, ParseWhitespaceAndNesting) {
  Result<Json> doc = Json::Parse("  { \"a\" : [ 1 , { \"b\" : [] } ] }  ");
  ASSERT_TRUE(doc.ok());
  const Json* a = doc->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 2u);
  EXPECT_EQ(a->items()[0].number_value(), 1.0);
  EXPECT_TRUE(a->items()[1].Find("b")->is_array());
}

TEST(JsonTest, ParseStringEscapes) {
  EXPECT_EQ(Json::Parse("\"a\\nb\\tc\\\"d\\\\e\\/f\"")->string_value(),
            "a\nb\tc\"d\\e/f");
  // \u00e9 is é (U+00E9 -> two UTF-8 bytes).
  EXPECT_EQ(Json::Parse("\"caf\\u00e9\"")->string_value(), "caf\xc3\xa9");
  // Surrogate pair for U+1F600.
  EXPECT_EQ(Json::Parse("\"\\ud83d\\ude00\"")->string_value(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "{1:2}", "tru", "nul",
        "\"unterminated", "\"bad\\q\"", "\"\\u12g4\"", "\"\\ud800\"",
        "01", "1.", "1e", "-", "[1] trailing", "{\"a\":1,}"}) {
    Result<Json> doc = Json::Parse(bad);
    EXPECT_FALSE(doc.ok()) << "input: " << bad;
    EXPECT_EQ(doc.status().code(), StatusCode::kCorruption)
        << "input: " << bad;
  }
}

TEST(JsonTest, ParseRejectsRawControlCharacterInString) {
  EXPECT_FALSE(Json::Parse("\"a\nb\"").ok());
}

TEST(JsonTest, ParseRejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
  std::string shallow(30, '[');
  shallow += std::string(30, ']');
  EXPECT_TRUE(Json::Parse(shallow).ok());
}

TEST(JsonTest, DumpParseRoundTripOfCompoundDocument) {
  Json doc = Json::Object();
  doc.Set("schema_version", 1);
  Json cases = Json::Array();
  Json c = Json::Object();
  c.Set("name", "fig7/AP");
  c.Set("seconds_min", 0.00123);
  c.Set("ok", true);
  cases.Append(std::move(c));
  doc.Set("cases", std::move(cases));

  const std::string text = doc.Dump();
  Result<Json> reparsed = Json::Parse(text);
  ASSERT_TRUE(reparsed.ok());
  // Serialization is canonical: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(reparsed->Dump(), text);
  EXPECT_EQ(reparsed->NumberOr("schema_version", -1), 1.0);
  EXPECT_EQ(reparsed->Find("cases")->items()[0].StringOr("name", ""),
            "fig7/AP");
}

TEST(JsonTest, JsonFormatNumberMatchesDump) {
  EXPECT_EQ(JsonFormatNumber(5.0), "5");
  EXPECT_EQ(JsonFormatNumber(0.25), "0.25");
  EXPECT_EQ(JsonFormatNumber(std::nan("")), "null");
}

TEST(JsonTest, JsonQuoteEscapes) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
}

}  // namespace
}  // namespace corekit
