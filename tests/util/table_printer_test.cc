#include "corekit/util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace corekit {
namespace {

TEST(TablePrinterTest, HeaderOnly) {
  TablePrinter t({"a", "bb"});
  std::ostringstream os;
  t.Print(os);
  EXPECT_EQ(os.str(), "| a | bb |\n|---|----|\n");
}

TEST(TablePrinterTest, ColumnsPadToWidestCell) {
  TablePrinter t({"name", "n"});
  t.AddRow({"x", "123456"});
  std::ostringstream os;
  t.Print(os);
  const std::string expected =
      "| name | n      |\n"
      "|------|--------|\n"
      "| x    | 123456 |\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TablePrinterDeathTest, RowArityMismatchAborts) {
  TablePrinter t({"a", "b"});
  EXPECT_DEATH({ t.AddRow({"only one"}); }, "Check failed");
}

TEST(TablePrinterTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(TablePrinter::FormatDouble(3.17, 4), "3.17");
  EXPECT_EQ(TablePrinter::FormatDouble(2.0, 4), "2");
  EXPECT_EQ(TablePrinter::FormatDouble(0.999998, 6), "0.999998");
  EXPECT_EQ(TablePrinter::FormatDouble(-1.5, 2), "-1.5");
  EXPECT_EQ(TablePrinter::FormatDouble(0.0, 3), "0");
}

TEST(TablePrinterTest, FormatSecondsPicksUnit) {
  EXPECT_EQ(TablePrinter::FormatSeconds(0.000001), "1us");
  EXPECT_EQ(TablePrinter::FormatSeconds(0.000812), "812us");
  EXPECT_EQ(TablePrinter::FormatSeconds(0.00342), "3.42ms");
  EXPECT_EQ(TablePrinter::FormatSeconds(1.27), "1.27s");
  EXPECT_EQ(TablePrinter::FormatSeconds(105.0), "105.00s");
}

}  // namespace
}  // namespace corekit
