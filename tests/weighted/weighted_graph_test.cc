#include "corekit/weighted/weighted_graph.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

TEST(WeightedGraphTest, EmptyGraph) {
  WeightedGraph g;
  EXPECT_EQ(g.NumVertices(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(WeightedGraphBuilderTest, BasicConstruction) {
  WeightedGraphBuilder builder(3);
  builder.AddEdge(0, 1, 2.5);
  builder.AddEdge(1, 2, 1.5);
  const WeightedGraph g = builder.Build();
  EXPECT_EQ(g.NumVertices(), 3u);
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 4.0);
  EXPECT_DOUBLE_EQ(g.Strength(0), 2.5);
  EXPECT_DOUBLE_EQ(g.Strength(1), 4.0);
  EXPECT_DOUBLE_EQ(g.Strength(2), 1.5);
}

TEST(WeightedGraphBuilderTest, DuplicatesSumWeights) {
  WeightedGraphBuilder builder(2);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 0, 2.0);
  builder.AddEdge(0, 1, 0.5);
  const WeightedGraph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.Strength(0), 3.5);
  EXPECT_DOUBLE_EQ(g.Strength(1), 3.5);
}

TEST(WeightedGraphBuilderTest, SelfLoopsDropped) {
  WeightedGraphBuilder builder(2);
  builder.AddEdge(0, 0, 5.0);
  builder.AddEdge(0, 1, 1.0);
  const WeightedGraph g = builder.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.Strength(0), 1.0);
}

TEST(WeightedGraphBuilderDeathTest, NonPositiveWeightAborts) {
  WeightedGraphBuilder builder(2);
  EXPECT_DEATH({ builder.AddEdge(0, 1, 0.0); }, "Check failed");
  EXPECT_DEATH({ builder.AddEdge(0, 1, -1.0); }, "Check failed");
}

TEST(WeightedGraphTest, NeighborsSortedAndWeightsParallel) {
  WeightedGraphBuilder builder(5);
  builder.AddEdge(2, 4, 4.0);
  builder.AddEdge(2, 0, 1.0);
  builder.AddEdge(2, 3, 3.0);
  builder.AddEdge(2, 1, 2.0);
  const WeightedGraph g = builder.Build();
  const auto nbrs = g.Neighbors(2);
  const auto weights = g.Weights(2);
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_TRUE(std::is_sorted(nbrs.begin(), nbrs.end()));
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    // Weights above were chosen as 1,2 for neighbors 0,1 and 3,4 for
    // neighbors 3,4.
    const double expected = nbrs[i] < 2 ? nbrs[i] + 1.0 : nbrs[i];
    EXPECT_DOUBLE_EQ(weights[i], expected);
  }
}

TEST(WeightedGraphTest, SkeletonMatchesStructure) {
  const Graph base = corekit::testing::Fig2Graph();
  const WeightedGraph weighted = RandomlyWeighted(base, 5.0, 42);
  const Graph skeleton = weighted.Skeleton();
  EXPECT_TRUE(std::ranges::equal(skeleton.Offsets(), base.Offsets()));
  EXPECT_TRUE(std::ranges::equal(skeleton.NeighborArray(), base.NeighborArray()));
}

TEST(RandomlyWeightedTest, DeterministicPositiveBounded) {
  const Graph base = corekit::testing::Fig2Graph();
  const WeightedGraph a = RandomlyWeighted(base, 3.0, 7);
  const WeightedGraph b = RandomlyWeighted(base, 3.0, 7);
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    const auto wa = a.Weights(v);
    const auto wb = b.Weights(v);
    ASSERT_EQ(wa.size(), wb.size());
    for (std::size_t i = 0; i < wa.size(); ++i) {
      EXPECT_DOUBLE_EQ(wa[i], wb[i]);
      EXPECT_GT(wa[i], 0.0);
      EXPECT_LE(wa[i], 3.0);
    }
  }
}

}  // namespace
}  // namespace corekit
