#include "corekit/weighted/s_core.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "test_util.h"

namespace corekit {
namespace {

// Integer weights keep every strength computation exact in doubles, so
// the heap-based and recompute-based peels must agree bit for bit.
WeightedGraph IntegerWeighted(const Graph& graph, std::uint64_t seed) {
  Rng rng(seed);
  WeightedGraphBuilder builder(graph.NumVertices());
  for (const auto& [u, v] : graph.ToEdgeList()) {
    builder.AddEdge(u, v, 1.0 + static_cast<double>(rng.NextBounded(9)));
  }
  return builder.Build();
}

TEST(SCoreTest, EmptyGraph) {
  const SCoreDecomposition cores = ComputeSCoreDecomposition(WeightedGraph());
  EXPECT_TRUE(cores.s_value.empty());
  EXPECT_DOUBLE_EQ(cores.smax, 0.0);
}

TEST(SCoreTest, UniformWeightsReduceToScaledCoreness) {
  // With all weights equal to w, the s-core peel is the k-core peel and
  // s_value(v) = w * coreness(v).
  const Graph base = corekit::testing::Fig2Graph();
  WeightedGraphBuilder builder(base.NumVertices());
  for (const auto& [u, v] : base.ToEdgeList()) builder.AddEdge(u, v, 2.0);
  const SCoreDecomposition s_cores =
      ComputeSCoreDecomposition(builder.Build());
  const CoreDecomposition k_cores = ComputeCoreDecomposition(base);
  for (VertexId v = 0; v < base.NumVertices(); ++v) {
    EXPECT_DOUBLE_EQ(s_cores.s_value[v], 2.0 * k_cores.coreness[v]) << v;
  }
}

TEST(SCoreTest, WeightsOverrideTopology) {
  // A triangle with one heavy pendant: the pendant's single edge (weight
  // 10) outweighs the triangle's light edges, so the triangle vertices
  // peel first.
  WeightedGraphBuilder builder(4);
  builder.AddEdge(0, 1, 1.0);
  builder.AddEdge(1, 2, 1.0);
  builder.AddEdge(2, 0, 1.0);
  builder.AddEdge(0, 3, 10.0);
  const SCoreDecomposition cores = ComputeSCoreDecomposition(builder.Build());
  // Peel: v1 or v2 at strength 2, then the other at 1... the running max
  // keeps 2; finally 0 and 3 at strength 10.
  EXPECT_DOUBLE_EQ(cores.s_value[1], 2.0);
  EXPECT_DOUBLE_EQ(cores.s_value[2], 2.0);
  EXPECT_DOUBLE_EQ(cores.s_value[0], 10.0);
  EXPECT_DOUBLE_EQ(cores.s_value[3], 10.0);
  EXPECT_DOUBLE_EQ(cores.smax, 10.0);
}

TEST(SCoreTest, SValuesMonotoneAlongPeelOrder) {
  const WeightedGraph g =
      IntegerWeighted(GenerateBarabasiAlbert(150, 3, 5), 17);
  const SCoreDecomposition cores = ComputeSCoreDecomposition(g);
  for (std::size_t i = 1; i < cores.peel_order.size(); ++i) {
    EXPECT_LE(cores.s_value[cores.peel_order[i - 1]],
              cores.s_value[cores.peel_order[i]]);
  }
}

TEST(SCoreTest, SCoreSetSatisfiesDefinition) {
  // Within {v : s_value(v) >= s}, every vertex keeps strength >= s.
  const WeightedGraph g =
      IntegerWeighted(GenerateErdosRenyi(80, 240, 3), 23);
  const SCoreDecomposition cores = ComputeSCoreDecomposition(g);
  std::vector<double> thresholds = cores.s_value;
  std::sort(thresholds.begin(), thresholds.end());
  thresholds.erase(std::unique(thresholds.begin(), thresholds.end()),
                   thresholds.end());
  for (const double s : thresholds) {
    for (VertexId v = 0; v < g.NumVertices(); ++v) {
      if (cores.s_value[v] < s) continue;
      double strength = 0.0;
      const auto nbrs = g.Neighbors(v);
      const auto weights = g.Weights(v);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        if (cores.s_value[nbrs[i]] >= s) strength += weights[i];
      }
      EXPECT_GE(strength, s) << "s=" << s << " v=" << v;
    }
  }
}

class SCoreZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(SCoreZooTest, HeapPeelMatchesNaivePeel) {
  const WeightedGraph g = IntegerWeighted(GetParam().graph, 77);
  const SCoreDecomposition fast = ComputeSCoreDecomposition(g);
  const SCoreDecomposition naive = NaiveSCoreDecomposition(g);
  EXPECT_EQ(fast.s_value, naive.s_value) << GetParam().name;
  EXPECT_DOUBLE_EQ(fast.smax, naive.smax) << GetParam().name;
}

TEST_P(SCoreZooTest, ProfileMatchesDirectScoring) {
  const Graph& base = GetParam().graph;
  if (base.NumVertices() == 0) return;
  const WeightedGraph g = IntegerWeighted(base, 91);
  const SCoreDecomposition cores = ComputeSCoreDecomposition(g);
  for (const WeightedMetric metric :
       {WeightedMetric::kAverageStrength,
        WeightedMetric::kWeightedConductance,
        WeightedMetric::kWeightedDensity}) {
    const SCoreProfile profile = FindBestSCore(g, cores, metric);
    ASSERT_FALSE(profile.thresholds.empty());
    for (std::size_t i = 0; i < profile.thresholds.size(); ++i) {
      // Direct computation of the s-core set at this threshold.
      const double s = profile.thresholds[i];
      WeightedPrimaryValues direct;
      for (VertexId v = 0; v < g.NumVertices(); ++v) {
        if (cores.s_value[v] < s) continue;
        ++direct.num_vertices;
        const auto nbrs = g.Neighbors(v);
        const auto weights = g.Weights(v);
        for (std::size_t j = 0; j < nbrs.size(); ++j) {
          if (cores.s_value[nbrs[j]] >= s) {
            direct.internal_weight_x2 += weights[j];
          } else {
            direct.boundary_weight += weights[j];
          }
        }
      }
      EXPECT_EQ(profile.primaries[i].num_vertices, direct.num_vertices)
          << GetParam().name << " level " << i;
      EXPECT_NEAR(profile.primaries[i].internal_weight_x2,
                  direct.internal_weight_x2, 1e-6)
          << GetParam().name << " level " << i;
      EXPECT_NEAR(profile.primaries[i].boundary_weight,
                  direct.boundary_weight, 1e-6)
          << GetParam().name << " level " << i;
      EXPECT_NEAR(profile.scores[i], EvaluateWeightedMetric(metric, direct),
                  1e-9)
          << GetParam().name << " level " << i;
    }
    // Best index attains the maximum.
    for (const double score : profile.scores) {
      EXPECT_LE(score, profile.best_score + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SCoreZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

}  // namespace
}  // namespace corekit
