// Differential tests for the sorted-set intersection kernels: the
// scalar merge/gallop path, the AVX2 block-scan path, and the runtime
// dispatcher must all agree bit-for-bit with std::set_intersection on
// every input, including the skew regimes that flip the gallop branch.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/simd/dispatch.h"
#include "corekit/simd/intersect.h"
#include "corekit/util/random.h"

namespace corekit::simd {
namespace {

using U32List = std::vector<std::uint32_t>;

// Oracle: |a ∩ b| via the standard library.
std::size_t OracleCount(const U32List& a, const U32List& b) {
  U32List out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out.size();
}

// Strictly increasing list of `count` values drawn from [0, universe).
U32List RandomSorted(Rng& rng, std::size_t count, std::uint32_t universe) {
  U32List values;
  values.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    values.push_back(static_cast<std::uint32_t>(rng.NextBounded(universe)));
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// Runs every kernel variant on (a, b) and both argument orders, and
// asserts all of them match the oracle.
void ExpectAllKernelsAgree(const U32List& a, const U32List& b) {
  const std::size_t expected = OracleCount(a, b);
  EXPECT_EQ(IntersectCountScalar(a, b), expected);
  EXPECT_EQ(IntersectCountScalar(b, a), expected);
  EXPECT_EQ(IntersectCount(a, b), expected);
  EXPECT_EQ(IntersectCount(b, a), expected);
  if (CpuSupportsAvx2()) {
    EXPECT_EQ(IntersectCountAvx2(a, b), expected);
    EXPECT_EQ(IntersectCountAvx2(b, a), expected);
  }
}

TEST(IntersectTest, EmptyInputs) {
  const U32List empty;
  const U32List some = {1, 2, 3};
  ExpectAllKernelsAgree(empty, empty);
  ExpectAllKernelsAgree(empty, some);
  ExpectAllKernelsAgree(some, empty);
}

TEST(IntersectTest, SingletonAndSmallLists) {
  ExpectAllKernelsAgree({5}, {5});
  ExpectAllKernelsAgree({5}, {6});
  ExpectAllKernelsAgree({0}, {0, 1, 2, 3});
  ExpectAllKernelsAgree({3}, {0, 1, 2, 3});
  ExpectAllKernelsAgree({1, 3, 5, 7}, {2, 4, 6, 8});
  ExpectAllKernelsAgree({1, 2, 3, 4}, {1, 2, 3, 4});
}

TEST(IntersectTest, DisjointRanges) {
  U32List low, high;
  for (std::uint32_t i = 0; i < 100; ++i) low.push_back(i);
  for (std::uint32_t i = 1000; i < 1100; ++i) high.push_back(i);
  ExpectAllKernelsAgree(low, high);
}

TEST(IntersectTest, IdenticalLists) {
  Rng rng(7);
  const U32List a = RandomSorted(rng, 500, 10000);
  ExpectAllKernelsAgree(a, a);
}

TEST(IntersectTest, BoundaryValues) {
  const std::uint32_t max = 0xFFFFFFFFu;
  ExpectAllKernelsAgree({0, max}, {0, 1, max - 1, max});
  ExpectAllKernelsAgree({max}, {max});
  ExpectAllKernelsAgree({max - 7, max - 5, max - 3, max - 1},
                        {max - 8, max - 7, max - 6, max - 5, max - 4, max - 3,
                         max - 2, max - 1, max});
}

// Sizes straddling the 8-lane block boundary of the AVX2 kernel: the
// scalar tail past the last full block must be exercised for every
// remainder 0..7.
TEST(IntersectTest, BlockBoundarySizes) {
  Rng rng(11);
  for (std::size_t b_size = 1; b_size <= 24; ++b_size) {
    for (int trial = 0; trial < 8; ++trial) {
      const U32List a = RandomSorted(rng, 16, 64);
      const U32List b = RandomSorted(rng, b_size, 64);
      ExpectAllKernelsAgree(a, b);
    }
  }
}

// Heavy size skew (ratio >= kGallopRatio) flips both paths into
// galloping search; the answer must not change.
TEST(IntersectTest, GallopRegime) {
  Rng rng(13);
  const U32List large = RandomSorted(rng, 4096, 1u << 20);
  for (const std::size_t small_size : {std::size_t{1}, std::size_t{3},
                                       std::size_t{17}, std::size_t{64}}) {
    ASSERT_GE(large.size() / small_size, kGallopRatio);
    // Half the probes hit (sampled from `large`), half are random.
    U32List small;
    for (std::size_t i = 0; i < small_size; ++i) {
      if (i % 2 == 0 && !large.empty()) {
        small.push_back(large[rng.NextBounded(large.size())]);
      } else {
        small.push_back(static_cast<std::uint32_t>(rng.NextBounded(1u << 20)));
      }
    }
    std::sort(small.begin(), small.end());
    small.erase(std::unique(small.begin(), small.end()), small.end());
    ExpectAllKernelsAgree(small, large);
  }
}

// Probes past the end of the larger list (every probe value above
// large.back()) stress the gallop window clamp.
TEST(IntersectTest, ProbesBeyondEnd) {
  U32List large;
  for (std::uint32_t i = 0; i < 2048; ++i) large.push_back(i);
  const U32List past = {3000, 4000, 5000};
  ExpectAllKernelsAgree(past, large);
  const U32List straddle = {2046, 2047, 2048, 9000};
  ExpectAllKernelsAgree(straddle, large);
}

TEST(IntersectTest, RandomizedDifferential) {
  Rng rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t a_size = rng.NextBounded(300);
    const std::size_t b_size = rng.NextBounded(300);
    // Mix dense (small universe, many collisions) and sparse draws.
    const std::uint32_t universe =
        trial % 2 == 0 ? 256 : (1u << 16);
    const U32List a = RandomSorted(rng, a_size, universe);
    const U32List b = RandomSorted(rng, b_size, universe);
    ExpectAllKernelsAgree(a, b);
  }
}

TEST(IntersectTest, DispatchFollowsTestingOverride) {
  Rng rng(31);
  const U32List a = RandomSorted(rng, 200, 1000);
  const U32List b = RandomSorted(rng, 300, 1000);
  const std::size_t expected = OracleCount(a, b);

  SetIsaForTesting(IsaLevel::kScalar);
  EXPECT_EQ(ActiveIsa(), IsaLevel::kScalar);
  EXPECT_EQ(IntersectCount(a, b), expected);

  if (CpuSupportsAvx2()) {
    SetIsaForTesting(IsaLevel::kAvx2);
    EXPECT_EQ(ActiveIsa(), IsaLevel::kAvx2);
    EXPECT_EQ(IntersectCount(a, b), expected);
  }

  ResetIsaForTesting();
  // After re-detection the level is whatever the machine supports; the
  // count is ISA-independent either way.
  EXPECT_EQ(IntersectCount(a, b), expected);
}

TEST(IntersectTest, IsaNames) {
  EXPECT_STREQ(IsaName(IsaLevel::kScalar), "scalar");
  EXPECT_STREQ(IsaName(IsaLevel::kAvx2), "avx2");
}

TEST(SortedContainsTest, MatchesLinearScan) {
  Rng rng(41);
  const U32List values = RandomSorted(rng, 400, 2000);
  for (std::uint32_t probe = 0; probe < 2000; probe += 7) {
    const bool expected =
        std::find(values.begin(), values.end(), probe) != values.end();
    EXPECT_EQ(SortedContains(values, probe), expected) << probe;
  }
  EXPECT_FALSE(SortedContains({}, 0));
  const U32List max_only = {0xFFFFFFFFu};
  EXPECT_TRUE(SortedContains(max_only, 0xFFFFFFFFu));
}

}  // namespace
}  // namespace corekit::simd
