#include "corekit/dynamic/dynamic_core.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/util/random.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

// The ground truth after any update sequence: full recomputation on the
// snapshot.
void ExpectExact(const DynamicCoreIndex& index, const char* context) {
  const Graph snapshot = index.Snapshot();
  const CoreDecomposition exact = ComputeCoreDecomposition(snapshot);
  EXPECT_EQ(index.CorenessArray(), exact.coreness) << context;
  EXPECT_EQ(index.Kmax(), exact.kmax) << context;
  EXPECT_EQ(index.NumEdges(), snapshot.NumEdges()) << context;
}

TEST(DynamicCoreTest, StartsEmpty) {
  DynamicCoreIndex index(5);
  EXPECT_EQ(index.NumEdges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(index.Coreness(v), 0u);
}

TEST(DynamicCoreTest, BulkLoadMatchesStatic) {
  const Graph g = Fig2Graph();
  const DynamicCoreIndex index(g);
  EXPECT_EQ(index.CorenessArray(), ComputeCoreDecomposition(g).coreness);
  EXPECT_EQ(index.NumEdges(), 19u);
}

TEST(DynamicCoreTest, SingleEdgeLifecycle) {
  DynamicCoreIndex index(3);
  EXPECT_TRUE(index.InsertEdge(0, 1));
  EXPECT_EQ(index.Coreness(0), 1u);
  EXPECT_EQ(index.Coreness(1), 1u);
  EXPECT_EQ(index.Coreness(2), 0u);
  EXPECT_TRUE(index.RemoveEdge(1, 0));  // reversed orientation
  EXPECT_EQ(index.Coreness(0), 0u);
  EXPECT_EQ(index.NumEdges(), 0u);
}

TEST(DynamicCoreTest, DuplicateAndSelfLoopRejected) {
  DynamicCoreIndex index(3);
  EXPECT_TRUE(index.InsertEdge(0, 1));
  EXPECT_FALSE(index.InsertEdge(0, 1));
  EXPECT_FALSE(index.InsertEdge(1, 0));
  EXPECT_FALSE(index.InsertEdge(2, 2));
  EXPECT_FALSE(index.RemoveEdge(0, 2));
  EXPECT_EQ(index.NumEdges(), 1u);
}

TEST(DynamicCoreTest, TriangleFormationPromotes) {
  DynamicCoreIndex index(3);
  index.InsertEdge(0, 1);
  index.InsertEdge(1, 2);
  EXPECT_EQ(index.Coreness(1), 1u);
  index.InsertEdge(2, 0);  // closes the triangle: everyone to coreness 2
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(index.Coreness(v), 2u);
}

TEST(DynamicCoreTest, CliqueBuildUpEdgeByEdge) {
  constexpr VertexId kSize = 6;
  DynamicCoreIndex index(kSize);
  for (VertexId u = 0; u < kSize; ++u) {
    for (VertexId v = u + 1; v < kSize; ++v) {
      ASSERT_TRUE(index.InsertEdge(u, v));
      ExpectExact(index, "clique build-up");
    }
  }
  for (VertexId v = 0; v < kSize; ++v) {
    EXPECT_EQ(index.Coreness(v), kSize - 1);
  }
}

TEST(DynamicCoreTest, DeletionCascades) {
  // Remove one K4 edge from Fig2: the two endpoints drop from 3 to 2,
  // and so do the other two K4 members (they lose their 3-core).
  const Graph g = Fig2Graph();
  DynamicCoreIndex index(g);
  ASSERT_TRUE(index.RemoveEdge(corekit::testing::V(1),
                               corekit::testing::V(2)));
  ExpectExact(index, "fig2 minus one K4 edge");
}

TEST(DynamicCoreTest, InsertionOnlyPromotesTheSubcore) {
  // Two disjoint triangles; adding an edge between them changes nothing
  // (both sides keep coreness 2, the bridge endpoints have only 3
  // neighbors but would need 3 in a 3-core).
  DynamicCoreIndex index(6);
  index.InsertEdge(0, 1);
  index.InsertEdge(1, 2);
  index.InsertEdge(2, 0);
  index.InsertEdge(3, 4);
  index.InsertEdge(4, 5);
  index.InsertEdge(5, 3);
  index.InsertEdge(0, 3);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(index.Coreness(v), 2u);
  ExpectExact(index, "bridged triangles");
}

TEST(DynamicCoreTest, FootprintReported) {
  const Graph g = Fig2Graph();
  DynamicCoreIndex index(g);
  index.RemoveEdge(corekit::testing::V(5), corekit::testing::V(6));
  EXPECT_GT(index.LastUpdateFootprint(), 0u);
}

// Randomized differential sweeps: every update's result must match the
// from-scratch decomposition of the snapshot.
struct SweepParam {
  std::uint64_t seed;
  VertexId n;
  int operations;
  double insert_bias;  // probability an operation is an insertion
};

class DynamicSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DynamicSweepTest, MatchesRecomputationAfterEveryUpdate) {
  const SweepParam param = GetParam();
  Rng rng(param.seed);
  DynamicCoreIndex index(param.n);
  EdgeList present;

  for (int op = 0; op < param.operations; ++op) {
    const bool insert = present.empty() || rng.NextBool(param.insert_bias);
    if (insert) {
      const auto u = static_cast<VertexId>(rng.NextBounded(param.n));
      const auto v = static_cast<VertexId>(rng.NextBounded(param.n));
      if (u == v) continue;
      if (index.InsertEdge(u, v)) present.emplace_back(u, v);
    } else {
      const std::size_t pick = rng.NextBounded(present.size());
      const auto [u, v] = present[pick];
      ASSERT_TRUE(index.RemoveEdge(u, v));
      present[pick] = present.back();
      present.pop_back();
    }
    const Graph snapshot = index.Snapshot();
    const CoreDecomposition exact = ComputeCoreDecomposition(snapshot);
    ASSERT_EQ(index.CorenessArray(), exact.coreness)
        << "op " << op << (insert ? " (insert)" : " (remove)");
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomWorkloads, DynamicSweepTest,
    ::testing::Values(SweepParam{1, 12, 300, 0.7},
                      SweepParam{2, 12, 300, 0.5},
                      SweepParam{3, 25, 400, 0.8},
                      SweepParam{4, 25, 400, 0.55},
                      SweepParam{5, 50, 500, 0.75},
                      SweepParam{6, 50, 500, 0.6},
                      SweepParam{7, 100, 400, 0.9},
                      SweepParam{8, 8, 600, 0.5}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.n);
    });

TEST(DynamicCoreTest, DuplicateInsertLeavesStateUntouched) {
  const Graph g = Fig2Graph();
  DynamicCoreIndex index(g);
  const std::vector<VertexId> coreness_before = index.CorenessArray();
  const EdgeList edges_before = index.Snapshot().ToEdgeList();
  const auto [u, v] = edges_before.front();
  EXPECT_FALSE(index.InsertEdge(u, v));
  EXPECT_FALSE(index.InsertEdge(v, u));
  EXPECT_EQ(index.CorenessArray(), coreness_before);
  EXPECT_EQ(index.Snapshot().ToEdgeList(), edges_before);
  EXPECT_EQ(index.LastCorenessChanged(), 0u);
}

TEST(DynamicCoreTest, SeededCorenessConstructorSkipsThePeel) {
  const Graph g = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  DynamicCoreIndex index(g, cores.coreness);
  EXPECT_EQ(index.CorenessArray(), cores.coreness);
  // Still live: updates cascade correctly from the seeded state.
  ASSERT_TRUE(index.RemoveEdge(corekit::testing::V(1),
                               corekit::testing::V(2)));
  ExpectExact(index, "seeded index after deletion");
}

TEST(DynamicCoreTest, ApplyBatchMatchesSequentialUpdates) {
  const Graph g = Fig2Graph();
  DynamicCoreIndex batched(g);
  DynamicCoreIndex sequential(g);

  const EdgeList inserts = {{corekit::testing::V(1), corekit::testing::V(9)},
                            {corekit::testing::V(4), corekit::testing::V(7)}};
  const EdgeList deletes = {{corekit::testing::V(1), corekit::testing::V(2)}};
  const DynamicBatchStats stats = batched.ApplyBatch(inserts, deletes);
  EXPECT_EQ(stats.inserted, 2u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.rejected, 0u);

  for (const auto& [u, v] : inserts) ASSERT_TRUE(sequential.InsertEdge(u, v));
  for (const auto& [u, v] : deletes) ASSERT_TRUE(sequential.RemoveEdge(u, v));
  EXPECT_EQ(batched.CorenessArray(), sequential.CorenessArray());
  EXPECT_EQ(batched.NumEdges(), sequential.NumEdges());
  ExpectExact(batched, "batched fig2 churn");
}

TEST(DynamicCoreTest, ApplyBatchToleratesAndCountsNoOpUpdates) {
  const Graph g = Fig2Graph();
  DynamicCoreIndex index(g);
  const std::vector<VertexId> coreness_before = index.CorenessArray();
  const VertexId n = index.NumVertices();
  const auto existing = g.ToEdgeList().front();

  const EdgeList inserts = {
      existing,          // duplicate
      {3, 3},            // self-loop
      {n, 0},            // out of range
      {0, n + 5},        // out of range
  };
  const EdgeList deletes = {
      {corekit::testing::V(1), corekit::testing::V(8)},  // absent
      {2, 2},                                             // self-loop
      {n + 1, n + 2},                                     // out of range
  };
  const DynamicBatchStats stats = index.ApplyBatch(inserts, deletes);
  EXPECT_EQ(stats.inserted, 0u);
  EXPECT_EQ(stats.deleted, 0u);
  EXPECT_EQ(stats.rejected, 7u);
  EXPECT_EQ(stats.coreness_changed, 0u);
  EXPECT_EQ(stats.triangle_delta, 0);
  EXPECT_EQ(stats.triplet_delta, 0);
  EXPECT_EQ(index.CorenessArray(), coreness_before);
  EXPECT_EQ(index.NumEdges(), g.NumEdges());
}

// Brute-force counters for the delta checks.
std::uint64_t BruteTriangles(const Graph& graph) {
  std::uint64_t incidences = 0;
  for (const auto& [u, v] : graph.ToEdgeList()) {
    const auto nu = graph.Neighbors(u);
    for (const VertexId w : graph.Neighbors(v)) {
      if (std::binary_search(nu.begin(), nu.end(), w)) ++incidences;
    }
  }
  return incidences / 3;
}

std::uint64_t BruteTriplets(const Graph& graph) {
  std::uint64_t total = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const std::uint64_t d = graph.Degree(v);
    total += d * (d - 1) / 2;
  }
  return total;
}

TEST(DynamicCoreTest, ApplyBatchReportsExactCountDeltas) {
  Rng rng(4242);
  const Graph g = corekit::testing::SmallGraphZoo().begin()->graph;
  DynamicCoreIndex index(g);
  EdgeList present = g.ToEdgeList();
  const VertexId n = index.NumVertices();

  for (int round = 0; round < 8; ++round) {
    const std::uint64_t triangles_before = BruteTriangles(index.Snapshot());
    const std::uint64_t triplets_before = BruteTriplets(index.Snapshot());
    EdgeList inserts;
    EdgeList deletes;
    for (int i = 0; i < 6; ++i) {
      inserts.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                           static_cast<VertexId>(rng.NextBounded(n)));
    }
    for (int i = 0; i < 2 && !present.empty(); ++i) {
      const std::size_t pick = rng.NextBounded(present.size());
      deletes.push_back(present[pick]);
      present[pick] = present.back();
      present.pop_back();
    }
    const DynamicBatchStats stats = index.ApplyBatch(inserts, deletes);
    const Graph snapshot = index.Snapshot();
    EXPECT_EQ(static_cast<std::int64_t>(BruteTriangles(snapshot)),
              static_cast<std::int64_t>(triangles_before) +
                  stats.triangle_delta)
        << "round " << round;
    EXPECT_EQ(static_cast<std::int64_t>(BruteTriplets(snapshot)),
              static_cast<std::int64_t>(triplets_before) +
                  stats.triplet_delta)
        << "round " << round;
    ExpectExact(index, "delta round");
    present = snapshot.ToEdgeList();
  }
}

TEST(DynamicCoreTest, AgreesAfterBuildingZooGraphsIncrementally) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    DynamicCoreIndex index(graph.NumVertices());
    for (const auto& [u, v] : graph.ToEdgeList()) index.InsertEdge(u, v);
    EXPECT_EQ(index.CorenessArray(),
              ComputeCoreDecomposition(graph).coreness)
        << name;
  }
}

TEST(DynamicCoreTest, AgreesAfterDismantlingZooGraphs) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    if (graph.NumEdges() > 2000) continue;  // keep the sweep fast
    DynamicCoreIndex index(graph);
    EdgeList edges = graph.ToEdgeList();
    Rng rng(SeedFromString(name));
    rng.Shuffle(edges);
    // Remove half the edges, checking at intervals.
    for (std::size_t i = 0; i < edges.size() / 2; ++i) {
      ASSERT_TRUE(index.RemoveEdge(edges[i].first, edges[i].second));
      if (i % 50 == 0) {
        EXPECT_EQ(index.CorenessArray(),
                  ComputeCoreDecomposition(index.Snapshot()).coreness)
            << name << " step " << i;
      }
    }
    EXPECT_EQ(index.CorenessArray(),
              ComputeCoreDecomposition(index.Snapshot()).coreness)
        << name;
  }
}

}  // namespace
}  // namespace corekit
