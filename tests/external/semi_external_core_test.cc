#include "corekit/external/semi_external_core.h"

#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/graph/edge_list_io.h"
#include "test_util.h"

namespace corekit {
namespace {

std::string WriteTemp(const Graph& graph, const std::string& name) {
  const std::string path = ::testing::TempDir() + "/corekit_semiext_" + name;
  const Status status = WriteBinaryGraph(graph, path);
  EXPECT_TRUE(status.ok()) << status.ToString();
  return path;
}

TEST(SemiExternalCoreTest, MissingFileIsIoError) {
  const auto result =
      SemiExternalCoreDecomposition("/nonexistent/corekit.bin");
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(SemiExternalCoreTest, GarbageFileIsCorruption) {
  const std::string path = ::testing::TempDir() + "/corekit_semiext_bad";
  std::ofstream(path) << "not a graph";
  const auto result = SemiExternalCoreDecomposition(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(SemiExternalCoreTest, Fig2ExactCoreness) {
  const Graph g = corekit::testing::Fig2Graph();
  const auto result =
      SemiExternalCoreDecomposition(WriteTemp(g, "fig2.bin"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->coreness, ComputeCoreDecomposition(g).coreness);
  EXPECT_EQ(result->kmax, 3u);
  EXPECT_GE(result->passes, 2u);  // degree pass + >=1 refinement
  EXPECT_GT(result->bytes_read, 0u);
}

TEST(SemiExternalCoreTest, EdgelessGraph) {
  const Graph g = GraphBuilder::FromEdges(5, {});
  const auto result =
      SemiExternalCoreDecomposition(WriteTemp(g, "edgeless.bin"));
  ASSERT_TRUE(result.ok());
  for (const VertexId c : result->coreness) EXPECT_EQ(c, 0u);
}

TEST(SemiExternalCoreTest, BytesReadScaleWithPasses) {
  const Graph g = GenerateBarabasiAlbert(400, 3, 11);
  const auto result = SemiExternalCoreDecomposition(WriteTemp(g, "ba.bin"));
  ASSERT_TRUE(result.ok());
  // Every refinement pass streams the full neighbor region.
  const std::uint64_t neighbor_bytes =
      g.NeighborArray().size() * sizeof(VertexId);
  EXPECT_GE(result->bytes_read,
            neighbor_bytes * (result->passes - 1));
}

class SemiExternalZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(SemiExternalZooTest, MatchesInMemoryDecomposition) {
  const Graph& graph = GetParam().graph;
  const auto result = SemiExternalCoreDecomposition(
      WriteTemp(graph, GetParam().name + ".bin"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const CoreDecomposition exact = ComputeCoreDecomposition(graph);
  EXPECT_EQ(result->coreness, exact.coreness) << GetParam().name;
  EXPECT_EQ(result->kmax, exact.kmax) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SemiExternalZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

}  // namespace
}  // namespace corekit
