#include "corekit/core/core_forest.h"

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/naive_oracle.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

CoreForest MakeForest(const Graph& graph) {
  return CoreForest(graph, ComputeCoreDecomposition(graph));
}

TEST(CoreForestTest, Fig4StructureOfTheExampleGraph) {
  // Figure 4: one tree with three nodes.  NS1 (coreness 2) holds the
  // 2-shell {v5, v6, v7, v8}; its two children NS2, NS3 (coreness 3) hold
  // the two K4s.
  const Graph g = Fig2Graph();
  const CoreForest forest = MakeForest(g);
  ASSERT_EQ(forest.NumNodes(), 3u);

  // Descending coreness order: two coreness-3 nodes first, then the
  // coreness-2 root.
  EXPECT_EQ(forest.node(0).coreness, 3u);
  EXPECT_EQ(forest.node(1).coreness, 3u);
  EXPECT_EQ(forest.node(2).coreness, 2u);
  EXPECT_EQ(forest.node(2).parent, CoreForest::kNoNode);
  EXPECT_EQ(forest.node(0).parent, 2u);
  EXPECT_EQ(forest.node(1).parent, 2u);
  ASSERT_EQ(forest.node(2).children.size(), 2u);

  // NS1's own vertices are exactly the 2-shell.
  std::vector<VertexId> shell = forest.node(2).vertices;
  std::sort(shell.begin(), shell.end());
  EXPECT_EQ(shell, (std::vector<VertexId>{V(5), V(6), V(7), V(8)}));

  // The two K4s, in some order.
  std::vector<VertexId> a = forest.node(0).vertices;
  std::vector<VertexId> b = forest.node(1).vertices;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  const std::vector<VertexId> k4a{V(1), V(2), V(3), V(4)};
  const std::vector<VertexId> k4b{V(9), V(10), V(11), V(12)};
  EXPECT_TRUE((a == k4a && b == k4b) || (a == k4b && b == k4a));

  // |S1| = |NS1| + |S2| + |S3| (the size identity stated for Figure 4).
  EXPECT_EQ(forest.CoreSize(2), 12u);
  EXPECT_EQ(forest.CoreSize(0), 4u);
  EXPECT_EQ(forest.CoreSize(1), 4u);
}

TEST(CoreForestTest, NodeOfVertexPointsToOwnShellNode) {
  const Graph g = Fig2Graph();
  const CoreForest forest = MakeForest(g);
  EXPECT_EQ(forest.NodeOfVertex(V(5)), 2u);
  EXPECT_EQ(forest.NodeOfVertex(V(1)), forest.NodeOfVertex(V(2)));
  EXPECT_NE(forest.NodeOfVertex(V(1)), forest.NodeOfVertex(V(9)));
}

TEST(CoreForestTest, IsolatedVerticesAreCorenessZeroRoots) {
  const Graph g = GraphBuilder::FromEdges(4, {{0, 1}});
  const CoreForest forest = MakeForest(g);
  // Nodes: one coreness-1 node {0,1}, and coreness-0 nodes for 2 and 3.
  ASSERT_EQ(forest.NumNodes(), 3u);
  EXPECT_EQ(forest.node(0).coreness, 1u);
  EXPECT_EQ(forest.node(1).coreness, 0u);
  EXPECT_EQ(forest.node(2).coreness, 0u);
  EXPECT_EQ(forest.node(0).parent, CoreForest::kNoNode);
}

TEST(CoreForestTest, EmptyRootIsCompressedAway) {
  // A triangle: every vertex has coreness 2, so no coreness-0 or -1 node
  // may exist (Definition 6).
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  const CoreForest forest = MakeForest(g);
  ASSERT_EQ(forest.NumNodes(), 1u);
  EXPECT_EQ(forest.node(0).coreness, 2u);
  EXPECT_EQ(forest.node(0).parent, CoreForest::kNoNode);
  EXPECT_EQ(forest.CoreSize(0), 3u);
}

TEST(CoreForestTest, SkippedLevelGetsSplicedCorrectly) {
  // K4 {0,1,2,3} (coreness 3) attached by one edge to a path 4-5 where
  // 4 also links to the K4: corenesses 3,3,3,3,1,1.  The tree must be a
  // coreness-1 root holding {4,5} with the K4 node as its child: level 2
  // is skipped entirely.
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, {0, 4}, {4, 5}});
  const CoreForest forest = MakeForest(g);
  ASSERT_EQ(forest.NumNodes(), 2u);
  EXPECT_EQ(forest.node(0).coreness, 3u);
  EXPECT_EQ(forest.node(1).coreness, 1u);
  EXPECT_EQ(forest.node(0).parent, 1u);
}

// ---------------------------------------------------------------------
// Property suite against the oracle: for every k, the connected k-cores
// reconstructed from the forest must equal the naively computed ones.
// ---------------------------------------------------------------------

class CoreForestZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(CoreForestZooTest, NodesPartitionVerticesByCoreness) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const CoreForest forest(graph, cores);
  std::vector<int> covered(graph.NumVertices(), 0);
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const auto& node = forest.node(i);
    EXPECT_FALSE(node.vertices.empty()) << "compressed forest has empty node";
    for (const VertexId v : node.vertices) {
      EXPECT_EQ(cores.coreness[v], node.coreness);
      ++covered[v];
    }
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(covered[v], 1) << "vertex " << v;
  }
}

TEST_P(CoreForestZooTest, ParentsHaveStrictlyLowerCoreness) {
  const Graph& graph = GetParam().graph;
  const CoreForest forest = MakeForest(graph);
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    const auto parent = forest.node(i).parent;
    if (parent == CoreForest::kNoNode) continue;
    EXPECT_GT(parent, i);  // descending sort => parent later
    EXPECT_LT(forest.node(parent).coreness, forest.node(i).coreness);
    // Child lists and parent pointers must agree.
    const auto& siblings = forest.node(parent).children;
    EXPECT_NE(std::find(siblings.begin(), siblings.end(), i),
              siblings.end());
  }
}

TEST_P(CoreForestZooTest, ReconstructedCoresMatchNaiveKCores) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const CoreForest forest(graph, cores);

  // Group forest cores by coreness level.
  std::map<VertexId, std::set<std::vector<VertexId>>> forest_cores;
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    std::vector<VertexId> members = forest.CoreVertices(i);
    std::sort(members.begin(), members.end());
    EXPECT_EQ(members.size(), forest.CoreSize(i));
    forest_cores[forest.node(i).coreness].insert(std::move(members));
  }

  // Every forest node at level k must be one of the naive k-cores.  (Not
  // every naive k-core has a node: cores whose k-shell part is empty are
  // represented by their denser child per Definition 6.)
  for (const auto& [k, cores_at_k] : forest_cores) {
    const auto naive = NaiveKCores(graph, k);
    const std::set<std::vector<VertexId>> naive_set(naive.begin(),
                                                    naive.end());
    for (const auto& members : cores_at_k) {
      EXPECT_TRUE(naive_set.contains(members))
          << GetParam().name << ": node at k=" << k
          << " is not a real k-core";
    }
  }
}

TEST_P(CoreForestZooTest, EveryShellBearingCoreHasANode) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const CoreForest forest(graph, cores);

  std::set<std::vector<VertexId>> forest_core_sets;
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    std::vector<VertexId> members = forest.CoreVertices(i);
    std::sort(members.begin(), members.end());
    forest_core_sets.insert(std::move(members));
  }

  for (VertexId k = 0; k <= cores.kmax; ++k) {
    for (const auto& core : NaiveKCores(graph, k)) {
      // Definition 6: a node exists iff the core contains a coreness-k
      // vertex.
      const bool has_shell_vertex =
          std::any_of(core.begin(), core.end(), [&](VertexId v) {
            return cores.coreness[v] == k;
          });
      if (has_shell_vertex) {
        EXPECT_TRUE(forest_core_sets.contains(core))
            << GetParam().name << ": missing node for a k=" << k << " core";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, CoreForestZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace corekit
