#include "corekit/core/result_io.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "corekit/core/vertex_ordering.h"
#include "test_util.h"

namespace corekit {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/corekit_result_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ResultIoTest, DecompositionRoundTrip) {
  const Graph g = GenerateBarabasiAlbert(300, 3, 8);
  const CoreDecomposition original = ComputeCoreDecomposition(g);
  const std::string path = TempPath("cores.bin");
  ASSERT_TRUE(WriteCoreDecomposition(original, path).ok());
  const auto reloaded = ReadCoreDecomposition(path);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
  EXPECT_EQ(reloaded->coreness, original.coreness);
  EXPECT_EQ(reloaded->peel_order, original.peel_order);
  EXPECT_EQ(reloaded->kmax, original.kmax);
}

TEST(ResultIoTest, ReloadedDecompositionDrivesTheIndex) {
  // The reloaded result must be a drop-in for OrderedGraph construction.
  const Graph g = corekit::testing::Fig2Graph();
  const std::string path = TempPath("fig2_cores.bin");
  ASSERT_TRUE(WriteCoreDecomposition(ComputeCoreDecomposition(g), path).ok());
  const auto reloaded = ReadCoreDecomposition(path);
  ASSERT_TRUE(reloaded.ok());
  const OrderedGraph ordered(g, *reloaded);
  const CoreSetProfile profile =
      FindBestCoreSet(ordered, Metric::kAverageDegree);
  EXPECT_EQ(profile.best_k, 2u);  // Example 4
}

TEST(ResultIoTest, CorruptedSnapshotRejected) {
  const Graph g = GenerateErdosRenyi(50, 120, 4);
  const std::string path = TempPath("corrupt.bin");
  ASSERT_TRUE(WriteCoreDecomposition(ComputeCoreDecomposition(g), path).ok());
  // Flip one payload byte: the checksum must catch it.
  std::fstream file(path,
                    std::ios::in | std::ios::out | std::ios::binary);
  file.seekp(40);
  char byte;
  file.read(&byte, 1);
  file.seekp(40);
  byte = static_cast<char>(byte ^ 0x10);
  file.write(&byte, 1);
  file.close();
  const auto result = ReadCoreDecomposition(path);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(ResultIoTest, WrongMagicRejected) {
  const std::string path = TempPath("magic.bin");
  std::ofstream(path) << "CKG1 this is a graph, not a decomposition";
  EXPECT_EQ(ReadCoreDecomposition(path).status().code(),
            StatusCode::kCorruption);
}

TEST(ResultIoTest, CoreSetProfileCsv) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreSetProfile profile =
      FindBestCoreSet(ordered, Metric::kClusteringCoefficient);
  const std::string path = TempPath("profile.csv");
  ASSERT_TRUE(WriteCoreSetProfileCsv(profile, path).ok());
  const std::string csv = Slurp(path);
  EXPECT_NE(csv.find("k,num_vertices,internal_edges,boundary_edges,"
                     "triangles,triplets,score"),
            std::string::npos);
  // The k=3 row carries the Example 5 values.
  EXPECT_NE(csv.find("3,8,12,3,8,24,1\n"), std::string::npos);
  // Header + kmax+1 rows.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + profile.scores.size());
}

TEST(ResultIoTest, SingleCoreProfileCsv) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreForest forest(g, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, Metric::kAverageDegree);
  const std::string path = TempPath("single.csv");
  ASSERT_TRUE(WriteSingleCoreProfileCsv(profile, forest, path).ok());
  const std::string csv = Slurp(path);
  // One K4 row: node, coreness 3, core size 4, n=4, m=6, b=..., score 3.
  EXPECT_NE(csv.find(",3,4,4,6,"), std::string::npos);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(csv.begin(), csv.end(), '\n')),
            1 + forest.NumNodes());
}

TEST(ResultIoTest, UnwritablePathIsIoError) {
  const CoreDecomposition cores;
  EXPECT_EQ(WriteCoreDecomposition(cores, "/nonexistent/dir/cores.bin")
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace corekit
