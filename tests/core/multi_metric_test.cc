#include "corekit/core/multi_metric.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

TEST(MultiMetricTest, MatchesPerMetricProfilesOnZoo) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    if (graph.NumVertices() == 0) continue;
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    const OrderedGraph ordered(graph, cores);
    const CoreForest forest(graph, cores);

    const auto set_profiles = FindBestCoreSetMulti(ordered, kAllMetrics);
    const auto single_profiles =
        FindBestSingleCoreMulti(ordered, forest, kAllMetrics);
    ASSERT_EQ(set_profiles.size(), std::size(kAllMetrics));
    ASSERT_EQ(single_profiles.size(), std::size(kAllMetrics));

    for (std::size_t i = 0; i < std::size(kAllMetrics); ++i) {
      const Metric metric = kAllMetrics[i];
      const CoreSetProfile expected_set = FindBestCoreSet(ordered, metric);
      EXPECT_EQ(set_profiles[i].scores, expected_set.scores)
          << name << " " << MetricShortName(metric);
      EXPECT_EQ(set_profiles[i].best_k, expected_set.best_k)
          << name << " " << MetricShortName(metric);

      const SingleCoreProfile expected_single =
          FindBestSingleCore(ordered, forest, metric);
      EXPECT_EQ(single_profiles[i].scores, expected_single.scores)
          << name << " " << MetricShortName(metric);
      EXPECT_EQ(single_profiles[i].best_node, expected_single.best_node)
          << name << " " << MetricShortName(metric);
    }
  }
}

TEST(MultiMetricTest, SkipsTrianglesWhenNoMetricNeedsThem) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const Metric basic[] = {Metric::kAverageDegree, Metric::kConductance};
  const auto profiles = FindBestCoreSetMulti(ordered, basic);
  EXPECT_FALSE(profiles[0].primaries[0].has_triangles);
  const Metric with_cc[] = {Metric::kAverageDegree,
                            Metric::kClusteringCoefficient};
  const auto cc_profiles = FindBestCoreSetMulti(ordered, with_cc);
  EXPECT_TRUE(cc_profiles[0].primaries[0].has_triangles);
}

TEST(MultiMetricTest, EmptyMetricListYieldsNoProfiles) {
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  EXPECT_TRUE(FindBestCoreSetMulti(ordered, {}).empty());
}

}  // namespace
}  // namespace corekit
