#include "corekit/core/onion_layers.h"

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

TEST(OnionLayersTest, EmptyAndEdgeless) {
  EXPECT_EQ(ComputeOnionDecomposition(Graph()).num_layers, 0u);
  const OnionDecomposition onion =
      ComputeOnionDecomposition(GraphBuilder::FromEdges(4, {}));
  EXPECT_EQ(onion.num_layers, 1u);  // everything falls in one wave
  for (const VertexId l : onion.layer) EXPECT_EQ(l, 1u);
}

TEST(OnionLayersTest, CliqueIsOneLayer) {
  GraphBuilder builder(5);
  for (VertexId u = 0; u < 5; ++u) {
    for (VertexId v = u + 1; v < 5; ++v) builder.AddEdge(u, v);
  }
  const OnionDecomposition onion =
      ComputeOnionDecomposition(builder.Build());
  EXPECT_EQ(onion.num_layers, 1u);
  EXPECT_EQ(onion.kmax, 4u);
}

TEST(OnionLayersTest, PathPeelsFromBothEnds) {
  // Path 0-1-2-3-4-5: waves {0,5}, {1,4}, {2,3}.
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
  const OnionDecomposition onion = ComputeOnionDecomposition(g);
  EXPECT_EQ(onion.num_layers, 3u);
  EXPECT_EQ(onion.layer[0], 1u);
  EXPECT_EQ(onion.layer[5], 1u);
  EXPECT_EQ(onion.layer[1], 2u);
  EXPECT_EQ(onion.layer[4], 2u);
  EXPECT_EQ(onion.layer[2], 3u);
  EXPECT_EQ(onion.layer[3], 3u);
}

TEST(OnionLayersTest, Fig2LayersRefineShells) {
  // 2-shell: v5 and v7 have degree 2 -> wave 1; v6, v8 drop to <= 2 ->
  // wave 2.  The two K4s go together in wave 3.
  const OnionDecomposition onion = ComputeOnionDecomposition(Fig2Graph());
  EXPECT_EQ(onion.layer[V(5)], 1u);
  EXPECT_EQ(onion.layer[V(7)], 1u);
  EXPECT_EQ(onion.layer[V(6)], 2u);
  EXPECT_EQ(onion.layer[V(8)], 2u);
  for (const int pid : {1, 2, 3, 4, 9, 10, 11, 12}) {
    EXPECT_EQ(onion.layer[V(pid)], 3u) << "v" << pid;
  }
  EXPECT_EQ(onion.num_layers, 3u);
}

TEST(OnionLayersTest, CorenessMatchesBatageljZaversnik) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const OnionDecomposition onion = ComputeOnionDecomposition(graph);
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    EXPECT_EQ(onion.coreness, cores.coreness) << name;
    EXPECT_EQ(onion.kmax, cores.kmax) << name;
  }
}

TEST(OnionLayersTest, LayersMonotoneInCoreness) {
  // A vertex of smaller coreness is always peeled in an earlier (or
  // equal... strictly earlier, since shells drain fully first) layer.
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const OnionDecomposition onion = ComputeOnionDecomposition(graph);
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        if (onion.coreness[u] < onion.coreness[v]) {
          EXPECT_LT(onion.layer[u], onion.layer[v]) << name;
        }
      }
    }
    if (graph.NumVertices() > 0) {
      // Layer ids are dense in [1, num_layers].
      std::vector<bool> used(onion.num_layers + 1, false);
      for (const VertexId l : onion.layer) {
        ASSERT_GE(l, 1u);
        ASSERT_LE(l, onion.num_layers);
        used[l] = true;
      }
      for (VertexId l = 1; l <= onion.num_layers; ++l) {
        EXPECT_TRUE(used[l]) << name << " layer " << l;
      }
    }
  }
}

}  // namespace
}  // namespace corekit
