#include "corekit/core/metrics.h"

#include <gtest/gtest.h>

namespace corekit {
namespace {

PrimaryValues MakeValues(std::uint64_t n, std::uint64_t m, std::uint64_t b,
                         std::uint64_t tri = 0, std::uint64_t trip = 0,
                         bool has_tri = false) {
  PrimaryValues pv;
  pv.num_vertices = n;
  pv.internal_edges_x2 = 2 * m;
  pv.boundary_edges = b;
  pv.triangles = tri;
  pv.triplets = trip;
  pv.has_triangles = has_tri;
  return pv;
}

constexpr GraphGlobals kGlobals{100, 500};

TEST(MetricsTest, AverageDegree) {
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kAverageDegree,
                                  MakeValues(8, 12, 0), kGlobals),
                   3.0);
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kAverageDegree,
                                  MakeValues(0, 0, 0), kGlobals),
                   0.0);
}

TEST(MetricsTest, InternalDensity) {
  // K4: 6 edges on 4 vertices -> density 1.
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kInternalDensity,
                                  MakeValues(4, 6, 0), kGlobals),
                   1.0);
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kInternalDensity,
                                  MakeValues(1, 0, 0), kGlobals),
                   0.0);
}

TEST(MetricsTest, CutRatio) {
  // n(S)=10, b=30, outside=90 -> 1 - 30/900.
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kCutRatio,
                                  MakeValues(10, 0, 30), kGlobals),
                   1.0 - 30.0 / 900.0);
  // S = V: no boundary slots -> 1 by convention.
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kCutRatio,
                                  MakeValues(100, 500, 0), kGlobals),
                   1.0);
}

TEST(MetricsTest, Conductance) {
  // 1 - b / (2m + b) = 1 - 10/(2*20+10) = 0.8.
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kConductance,
                                  MakeValues(5, 20, 10), kGlobals),
                   0.8);
  // Empty volume -> 1.
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kConductance,
                                  MakeValues(3, 0, 0), kGlobals),
                   1.0);
}

TEST(MetricsTest, ModularityTwoBlock) {
  // S with m(S)=100, b=50, rest m=350 of 500 total.
  // vol(S) = (200+50)/1000 = 0.25; vol(rest) = (700+50)/1000 = 0.75.
  // Q = 0.2 - 0.0625 + 0.7 - 0.5625 = 0.275.
  EXPECT_NEAR(EvaluateMetric(Metric::kModularity,
                             MakeValues(10, 100, 50), kGlobals),
              0.275, 1e-12);
}

TEST(MetricsTest, ModularityOfWholeGraphIsZero) {
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kModularity,
                                  MakeValues(100, 500, 0), kGlobals),
                   0.0);
}

TEST(MetricsTest, ModularityEmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kModularity, MakeValues(0, 0, 0),
                                  GraphGlobals{0, 0}),
                   0.0);
}

TEST(MetricsTest, ClusteringCoefficient) {
  // K4: 4 triangles, 12 triplets -> 3*4/12 = 1.
  EXPECT_DOUBLE_EQ(
      EvaluateMetric(Metric::kClusteringCoefficient,
                     MakeValues(4, 6, 0, 4, 12, /*has_tri=*/true), kGlobals),
      1.0);
  // Zero triplets -> 0 by convention.
  EXPECT_DOUBLE_EQ(
      EvaluateMetric(Metric::kClusteringCoefficient,
                     MakeValues(2, 1, 0, 0, 0, /*has_tri=*/true), kGlobals),
      0.0);
}

TEST(MetricsDeathTest, ClusteringWithoutTrianglesAborts) {
  EXPECT_DEATH(
      {
        EvaluateMetric(Metric::kClusteringCoefficient, MakeValues(4, 6, 0),
                       kGlobals);
      },
      "triangle");
}

TEST(MetricsTest, NeedsTriangles) {
  EXPECT_FALSE(MetricNeedsTriangles(Metric::kAverageDegree));
  EXPECT_FALSE(MetricNeedsTriangles(Metric::kInternalDensity));
  EXPECT_FALSE(MetricNeedsTriangles(Metric::kCutRatio));
  EXPECT_FALSE(MetricNeedsTriangles(Metric::kConductance));
  EXPECT_FALSE(MetricNeedsTriangles(Metric::kModularity));
  EXPECT_TRUE(MetricNeedsTriangles(Metric::kClusteringCoefficient));
}

TEST(MetricsTest, NamesRoundTripThroughParse) {
  for (const Metric metric : kAllMetrics) {
    EXPECT_EQ(ParseMetric(MetricShortName(metric)), metric);
    EXPECT_EQ(ParseMetric(MetricName(metric)), metric);
  }
  EXPECT_EQ(ParseMetric("nope"), std::nullopt);
  EXPECT_EQ(ParseMetric(""), std::nullopt);
}

TEST(MetricsTest, MetricFunctionWrapsBuiltin) {
  const MetricFn fn = MetricFunction(Metric::kAverageDegree);
  EXPECT_DOUBLE_EQ(fn(MakeValues(8, 12, 0), kGlobals), 3.0);
}

TEST(PrimaryValuesTest, AccumulateAddsFieldwise) {
  PrimaryValues a = MakeValues(3, 5, 2, 1, 4, true);
  const PrimaryValues b = MakeValues(2, 1, 3, 2, 6, true);
  a += b;
  EXPECT_EQ(a.num_vertices, 5u);
  EXPECT_EQ(a.InternalEdges(), 6u);
  EXPECT_EQ(a.boundary_edges, 5u);
  EXPECT_EQ(a.triangles, 3u);
  EXPECT_EQ(a.triplets, 10u);
}

TEST(PrimaryValuesTest, ToStringMentionsFields) {
  const std::string s = ToString(MakeValues(3, 5, 2, 1, 4, true));
  EXPECT_NE(s.find("n=3"), std::string::npos);
  EXPECT_NE(s.find("m=5"), std::string::npos);
  EXPECT_NE(s.find("tri=1"), std::string::npos);
}

}  // namespace
}  // namespace corekit
