#include "corekit/core/best_single_core.h"

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/naive_oracle.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

class Fig2SingleCoreTest : public ::testing::Test {
 protected:
  Fig2SingleCoreTest()
      : graph_(Fig2Graph()),
        cores_(ComputeCoreDecomposition(graph_)),
        ordered_(graph_, cores_),
        forest_(graph_, cores_) {}

  Graph graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
  CoreForest forest_;
};

TEST_F(Fig2SingleCoreTest, Fig4EdgeDecompositionIdentity) {
  // m(S1) = m(NS1) + m(S2) + m(S3) + 3 boundary edges = 4 + 6 + 6 + 3.
  const auto primaries =
      ComputeSingleCorePrimaries(ordered_, forest_, /*with_triangles=*/false);
  ASSERT_EQ(primaries.size(), 3u);
  // Nodes 0 and 1 are the K4s, node 2 is the whole-graph 2-core.
  EXPECT_EQ(primaries[0].InternalEdges(), 6u);
  EXPECT_EQ(primaries[1].InternalEdges(), 6u);
  EXPECT_EQ(primaries[0].boundary_edges + primaries[1].boundary_edges, 3u);
  EXPECT_EQ(primaries[2].InternalEdges(), 19u);
  EXPECT_EQ(primaries[2].num_vertices, 12u);
  EXPECT_EQ(primaries[2].boundary_edges, 0u);
}

TEST_F(Fig2SingleCoreTest, Example1BestSingleCoreByAverageDegree) {
  // Example 1 of the paper (on its Figure 1, but identical logic): the
  // best single k-core under average degree is a K4 (average degree 3 vs.
  // ~3.17 for the whole graph as a 2-core... here 2*19/12 > 3, so the
  // 2-core wins on Figure 2).  Validate against explicitly computed
  // scores.
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered_, forest_, Metric::kAverageDegree);
  ASSERT_EQ(profile.scores.size(), 3u);
  EXPECT_DOUBLE_EQ(profile.scores[0], 3.0);  // K4
  EXPECT_DOUBLE_EQ(profile.scores[1], 3.0);  // K4
  EXPECT_DOUBLE_EQ(profile.scores[2], 2.0 * 19 / 12);
  EXPECT_EQ(profile.best_k, 2u);
  EXPECT_EQ(profile.best_node, 2u);
}

TEST_F(Fig2SingleCoreTest, ClusteringCoefficientPerCore) {
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered_, forest_, Metric::kClusteringCoefficient);
  // Each K4: 4 triangles, 12 triplets -> cc 1.
  EXPECT_EQ(profile.primaries[0].triangles, 4u);
  EXPECT_EQ(profile.primaries[0].triplets, 12u);
  EXPECT_DOUBLE_EQ(profile.scores[0], 1.0);
  // Whole graph: 10 triangles, 45 triplets (Example 5) -> cc 2/3.
  EXPECT_EQ(profile.primaries[2].triangles, 10u);
  EXPECT_EQ(profile.primaries[2].triplets, 45u);
  EXPECT_NEAR(profile.scores[2], 2.0 / 3.0, 1e-12);
  // Best single core under cc is a 3-core (K4).
  EXPECT_EQ(profile.best_k, 3u);
  EXPECT_DOUBLE_EQ(profile.best_score, 1.0);
}

// ---------------------------------------------------------------------
// Differential suite: every core's primaries must equal the naive values
// computed on the explicitly materialized core subgraph.
// ---------------------------------------------------------------------

using ZooMetricParam = std::tuple<corekit::testing::NamedGraph, Metric>;

class SingleCoreZooTest : public ::testing::TestWithParam<ZooMetricParam> {};

TEST_P(SingleCoreZooTest, EveryCoreScoreMatchesNaive) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, metric);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};

  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    // Materialize the core and compute its primaries naively.
    std::vector<bool> mask(graph.NumVertices(), false);
    for (const VertexId v : forest.CoreVertices(i)) mask[v] = true;
    const PrimaryValues naive = NaivePrimaryValues(graph, mask);
    const double expected = EvaluateMetric(metric, naive, globals);
    EXPECT_NEAR(profile.scores[i], expected, 1e-9)
        << named.name << " metric=" << MetricShortName(metric)
        << " node=" << i << " (k=" << forest.node(i).coreness << ")";
  }
}

TEST_P(SingleCoreZooTest, BestNodeAttainsMaximum) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, metric);
  for (const double score : profile.scores) {
    EXPECT_LE(score, profile.best_score + 1e-12);
  }
  EXPECT_EQ(forest.node(profile.best_node).coreness, profile.best_k);
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesMetrics, SingleCoreZooTest,
    ::testing::Combine(::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
                       ::testing::ValuesIn(kAllMetrics)),
    [](const ::testing::TestParamInfo<ZooMetricParam>& param_info) {
      return std::get<0>(param_info.param).name + std::string("_") +
             MetricShortName(std::get<1>(param_info.param));
    });

class SingleCorePrimariesZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(SingleCorePrimariesZooTest, ExactPrimariesIncludingTriangles) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  const auto primaries = ComputeSingleCorePrimaries(ordered, forest, true);
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    std::vector<bool> mask(graph.NumVertices(), false);
    for (const VertexId v : forest.CoreVertices(i)) mask[v] = true;
    const PrimaryValues naive = NaivePrimaryValues(graph, mask);
    EXPECT_EQ(primaries[i].num_vertices, naive.num_vertices) << i;
    EXPECT_EQ(primaries[i].internal_edges_x2, naive.internal_edges_x2) << i;
    EXPECT_EQ(primaries[i].boundary_edges, naive.boundary_edges) << i;
    EXPECT_EQ(primaries[i].triangles, naive.triangles) << i;
    EXPECT_EQ(primaries[i].triplets, naive.triplets) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, SingleCorePrimariesZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace corekit
