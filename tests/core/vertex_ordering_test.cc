#include "corekit/core/vertex_ordering.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

class Fig2OrderingTest : public ::testing::Test {
 protected:
  Fig2OrderingTest()
      : graph_(Fig2Graph()),
        cores_(ComputeCoreDecomposition(graph_)),
        ordered_(graph_, cores_) {}

  Graph graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
};

TEST_F(Fig2OrderingTest, VerticesSortedByRank) {
  // Figure 3 (top): coreness-2 block v5 v6 v7 v8, then coreness-3 block
  // v1 v2 v3 v4 v9 v10 v11 v12, each sorted by id.
  const std::vector<VertexId> expected{V(5), V(6), V(7),  V(8),  V(1),  V(2),
                                       V(3), V(4), V(9), V(10), V(11), V(12)};
  const auto order = ordered_.VerticesByRank();
  EXPECT_TRUE(std::equal(order.begin(), order.end(), expected.begin(),
                         expected.end()));
}

TEST_F(Fig2OrderingTest, ShellSlices) {
  const auto shell2 = ordered_.Shell(2);
  const auto shell3 = ordered_.Shell(3);
  EXPECT_EQ(shell2.size(), 4u);
  EXPECT_EQ(shell3.size(), 8u);
  EXPECT_EQ(ordered_.Shell(0).size(), 0u);
  EXPECT_EQ(ordered_.Shell(1).size(), 0u);
  EXPECT_EQ(ordered_.CoreSetSize(0), 12u);
  EXPECT_EQ(ordered_.CoreSetSize(3), 8u);
}

TEST_F(Fig2OrderingTest, V1TagsMatchFigure3) {
  // v1: neighbors [v2, v3, v4], same=0, plus=3, high=0.
  const auto nbrs = ordered_.Neighbors(V(1));
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], V(2));
  EXPECT_EQ(nbrs[1], V(3));
  EXPECT_EQ(nbrs[2], V(4));
  EXPECT_EQ(ordered_.TagSame(V(1)), 0u);
  EXPECT_EQ(ordered_.TagPlus(V(1)), 3u);
  EXPECT_EQ(ordered_.TagHigh(V(1)), 0u);
}

TEST_F(Fig2OrderingTest, V6TagsMatchFigure3) {
  // v6: neighbors [v5, v7, v8, v3], same=0, plus=3, high=1.
  const auto nbrs = ordered_.Neighbors(V(6));
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], V(5));
  EXPECT_EQ(nbrs[1], V(7));
  EXPECT_EQ(nbrs[2], V(8));
  EXPECT_EQ(nbrs[3], V(3));
  EXPECT_EQ(ordered_.TagSame(V(6)), 0u);
  EXPECT_EQ(ordered_.TagPlus(V(6)), 3u);
  EXPECT_EQ(ordered_.TagHigh(V(6)), 1u);
}

TEST_F(Fig2OrderingTest, V8TagsMatchFigure3) {
  // v8: neighbors [v6, v7, v9], same=0, plus=2, high=2.
  const auto nbrs = ordered_.Neighbors(V(8));
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], V(6));
  EXPECT_EQ(nbrs[1], V(7));
  EXPECT_EQ(nbrs[2], V(9));
  EXPECT_EQ(ordered_.TagSame(V(8)), 0u);
  EXPECT_EQ(ordered_.TagPlus(V(8)), 2u);
  EXPECT_EQ(ordered_.TagHigh(V(8)), 2u);
}

TEST_F(Fig2OrderingTest, V9TagsMatchFigure3) {
  // v9: neighbors [v8, v10, v11, v12], same=1, plus=4, high=1.
  const auto nbrs = ordered_.Neighbors(V(9));
  ASSERT_EQ(nbrs.size(), 4u);
  EXPECT_EQ(nbrs[0], V(8));
  EXPECT_EQ(nbrs[1], V(10));
  EXPECT_EQ(ordered_.TagSame(V(9)), 1u);
  EXPECT_EQ(ordered_.TagPlus(V(9)), 4u);
  EXPECT_EQ(ordered_.TagHigh(V(9)), 1u);
}

TEST_F(Fig2OrderingTest, Example3CountQueries) {
  // Example 3: |N(v6, >)| = |N(v6)| - plus = 1.
  EXPECT_EQ(ordered_.CountHigher(V(6)), 1u);
  // Example 4's per-vertex counts for the 2-shell walk.
  EXPECT_EQ(ordered_.CountHigher(V(5)), 1u);
  EXPECT_EQ(ordered_.CountEqual(V(5)), 1u);
  EXPECT_EQ(ordered_.CountHigher(V(6)), 1u);
  EXPECT_EQ(ordered_.CountEqual(V(6)), 3u);
  EXPECT_EQ(ordered_.CountHigher(V(7)), 0u);
  EXPECT_EQ(ordered_.CountEqual(V(7)), 2u);
  EXPECT_EQ(ordered_.CountHigher(V(8)), 1u);
  EXPECT_EQ(ordered_.CountEqual(V(8)), 2u);
  // Example 5's |N(v, >=)| values: 2, 4, 2, 3 for v5..v8.
  EXPECT_EQ(ordered_.CountGeq(V(5)), 2u);
  EXPECT_EQ(ordered_.CountGeq(V(6)), 4u);
  EXPECT_EQ(ordered_.CountGeq(V(7)), 2u);
  EXPECT_EQ(ordered_.CountGeq(V(8)), 3u);
}

// ---------------------------------------------------------------------
// Property tests over the zoo: the Table II invariants must hold for every
// vertex of every graph.
// ---------------------------------------------------------------------

class OrderingZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(OrderingZooTest, NeighborsSortedByRank) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto nbrs = ordered.Neighbors(v);
    for (std::size_t i = 1; i < nbrs.size(); ++i) {
      EXPECT_TRUE(ordered.RankGreater(nbrs[i], nbrs[i - 1]))
          << "v=" << v << " position " << i;
    }
  }
}

TEST_P(OrderingZooTest, NeighborMultisetPreserved) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    std::vector<VertexId> a(ordered.Neighbors(v).begin(),
                            ordered.Neighbors(v).end());
    std::vector<VertexId> b(graph.Neighbors(v).begin(),
                            graph.Neighbors(v).end());
    std::sort(a.begin(), a.end());
    EXPECT_EQ(a, b) << "v=" << v;
  }
}

TEST_P(OrderingZooTest, TagsPartitionByCoreness) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const VertexId cv = cores.coreness[v];
    for (const VertexId u : ordered.NeighborsLower(v)) {
      EXPECT_LT(cores.coreness[u], cv);
    }
    for (const VertexId u : ordered.NeighborsEqual(v)) {
      EXPECT_EQ(cores.coreness[u], cv);
    }
    for (const VertexId u : ordered.NeighborsHigher(v)) {
      EXPECT_GT(cores.coreness[u], cv);
    }
    for (const VertexId u : ordered.NeighborsHigherRank(v)) {
      EXPECT_TRUE(ordered.RankGreater(u, v));
    }
    EXPECT_EQ(ordered.CountLower(v) + ordered.CountEqual(v) +
                  ordered.CountHigher(v),
              graph.Degree(v));
    EXPECT_EQ(ordered.CountGeq(v), ordered.CountEqual(v) +
                                       ordered.CountHigher(v));
  }
}

TEST_P(OrderingZooTest, HigherRankCountConsistent) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    VertexId expected = 0;
    for (const VertexId u : graph.Neighbors(v)) {
      expected += ordered.RankGreater(u, v) ? 1u : 0u;
    }
    EXPECT_EQ(ordered.CountHigherRank(v), expected) << "v=" << v;
  }
}

// The rank arrays feeding the intersection kernels: RankOf must invert
// VerticesByRank, and the NeighborRanks slices must be the rank images
// of the adjacency, strictly increasing (ranks are unique).
TEST_P(OrderingZooTest, RankArraysMirrorTheOrder) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const auto order = ordered.VerticesByRank();
  for (std::size_t r = 0; r < order.size(); ++r) {
    EXPECT_EQ(ordered.RankOf(order[r]), r) << "rank " << r;
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    const auto nbrs = ordered.Neighbors(v);
    const auto ranks = ordered.NeighborRanks(v);
    ASSERT_EQ(ranks.size(), nbrs.size()) << v;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_EQ(ranks[i], ordered.RankOf(nbrs[i])) << "v=" << v;
      if (i > 0) {
        EXPECT_LT(ranks[i - 1], ranks[i]) << "v=" << v;
      }
    }
    const auto high = ordered.NeighborsHigherRank(v);
    const auto high_ranks = ordered.NeighborRanksHigherRank(v);
    ASSERT_EQ(high_ranks.size(), high.size()) << v;
    for (std::size_t i = 0; i < high.size(); ++i) {
      EXPECT_EQ(high_ranks[i], ordered.RankOf(high[i])) << "v=" << v;
      EXPECT_GT(high_ranks[i], ordered.RankOf(v)) << "v=" << v;
    }
  }
}

TEST_P(OrderingZooTest, ShellsTileTheRankOrder) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  VertexId total = 0;
  for (VertexId k = 0; k <= ordered.kmax(); ++k) {
    for (const VertexId v : ordered.Shell(k)) {
      EXPECT_EQ(cores.coreness[v], k);
      ++total;
    }
  }
  EXPECT_EQ(total, graph.NumVertices());
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, OrderingZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace corekit
