#include "corekit/core/hierarchy_export.h"

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/vertex_ordering.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

CoreForest Fig2Forest() {
  const Graph g = Fig2Graph();
  return CoreForest(g, ComputeCoreDecomposition(g));
}

TEST(HierarchyExportTest, Fig2DotContainsAllNodesAndEdges) {
  const CoreForest forest = Fig2Forest();
  const std::string dot = CoreForestToDot(forest);
  EXPECT_NE(dot.find("digraph core_forest"), std::string::npos);
  // Three nodes: two k=3 cores and the k=2 root.
  EXPECT_NE(dot.find("n0 [label=\"k=3"), std::string::npos);
  EXPECT_NE(dot.find("n1 [label=\"k=3"), std::string::npos);
  EXPECT_NE(dot.find("n2 [label=\"k=2"), std::string::npos);
  // Parent -> child arrows from the root to both K4 nodes.
  EXPECT_NE(dot.find("n2 -> n0;"), std::string::npos);
  EXPECT_NE(dot.find("n2 -> n1;"), std::string::npos);
  // Labels carry shell and core sizes.
  EXPECT_NE(dot.find("shell=4"), std::string::npos);
  EXPECT_NE(dot.find("core=12"), std::string::npos);
}

TEST(HierarchyExportTest, ScoresAppearInLabels) {
  const Graph g = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreForest forest(g, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, Metric::kAverageDegree);
  HierarchyDotOptions options;
  options.scores = profile.scores;
  const std::string dot = CoreForestToDot(forest, options);
  EXPECT_NE(dot.find("score=3"), std::string::npos);
}

TEST(HierarchyExportTest, MinCoreSizeFiltersNodes) {
  const CoreForest forest = Fig2Forest();
  HierarchyDotOptions options;
  options.min_core_size = 5;  // drops both K4 nodes (core size 4)
  const std::string dot = CoreForestToDot(forest, options);
  EXPECT_EQ(dot.find("k=3"), std::string::npos);
  EXPECT_NE(dot.find("k=2"), std::string::npos);
  EXPECT_EQ(dot.find("->"), std::string::npos);
}

TEST(HierarchyExportTest, CustomTitle) {
  HierarchyDotOptions options;
  options.title = "my_hierarchy";
  EXPECT_NE(CoreForestToDot(Fig2Forest(), options).find("digraph my_hierarchy"),
            std::string::npos);
}

TEST(HierarchyExportTest, WriteToFile) {
  const std::string path = ::testing::TempDir() + "/corekit_hierarchy.dot";
  ASSERT_TRUE(WriteCoreForestDot(Fig2Forest(), path).ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), CoreForestToDot(Fig2Forest()));
}

TEST(HierarchyExportDeathTest, ScoreArityMismatchAborts) {
  HierarchyDotOptions options;
  options.scores = {1.0};  // forest has 3 nodes
  EXPECT_DEATH({ CoreForestToDot(Fig2Forest(), options); }, "per forest node");
}

TEST(HierarchyExportTest, EveryZooForestRendersValidDot) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    const CoreForest forest(graph, ComputeCoreDecomposition(graph));
    const std::string dot = CoreForestToDot(forest);
    EXPECT_EQ(dot.find("digraph"), 0u) << name;
    EXPECT_EQ(dot.back(), '\n') << name;
    // Every non-root node contributes exactly one arrow.
    std::size_t arrows = 0;
    std::size_t roots = 0;
    for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
      roots += forest.node(i).parent == CoreForest::kNoNode ? 1u : 0u;
    }
    std::size_t pos = 0;
    while ((pos = dot.find("->", pos)) != std::string::npos) {
      ++arrows;
      pos += 2;
    }
    EXPECT_EQ(arrows + roots, forest.NumNodes()) << name;
  }
}

}  // namespace
}  // namespace corekit
