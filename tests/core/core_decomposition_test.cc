#include "corekit/core/core_decomposition.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/naive_oracle.h"
#include "corekit/graph/graph_builder.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

TEST(CoreDecompositionTest, Fig2CorenessMatchesPaperExample2) {
  // Example 2 of the paper: coreness of v5, v6, v7, v8 is 2; the other
  // eight vertices have coreness 3.
  const CoreDecomposition cores = ComputeCoreDecomposition(Fig2Graph());
  EXPECT_EQ(cores.kmax, 3u);
  for (const int pid : {5, 6, 7, 8}) {
    EXPECT_EQ(cores.coreness[V(pid)], 2u) << "v" << pid;
  }
  for (const int pid : {1, 2, 3, 4, 9, 10, 11, 12}) {
    EXPECT_EQ(cores.coreness[V(pid)], 3u) << "v" << pid;
  }
}

TEST(CoreDecompositionTest, EmptyGraph) {
  const CoreDecomposition cores = ComputeCoreDecomposition(Graph());
  EXPECT_EQ(cores.kmax, 0u);
  EXPECT_TRUE(cores.coreness.empty());
}

TEST(CoreDecompositionTest, EdgelessVerticesHaveCorenessZero) {
  const CoreDecomposition cores =
      ComputeCoreDecomposition(GraphBuilder::FromEdges(5, {}));
  EXPECT_EQ(cores.kmax, 0u);
  for (const VertexId c : cores.coreness) EXPECT_EQ(c, 0u);
}

TEST(CoreDecompositionTest, CliqueCoreness) {
  GraphBuilder builder(7);
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) builder.AddEdge(u, v);
  }
  const CoreDecomposition cores = ComputeCoreDecomposition(builder.Build());
  EXPECT_EQ(cores.kmax, 6u);
  for (const VertexId c : cores.coreness) EXPECT_EQ(c, 6u);
}

TEST(CoreDecompositionTest, PathGraphCorenessOne) {
  const Graph g = GraphBuilder::FromEdges(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4},
                                              {4, 5}});
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  EXPECT_EQ(cores.kmax, 1u);
  for (const VertexId c : cores.coreness) EXPECT_EQ(c, 1u);
}

TEST(CoreDecompositionTest, ShellSizesFig2) {
  const CoreDecomposition cores = ComputeCoreDecomposition(Fig2Graph());
  const auto shells = cores.ShellSizes();
  ASSERT_EQ(shells.size(), 4u);
  EXPECT_EQ(shells[0], 0u);
  EXPECT_EQ(shells[1], 0u);
  EXPECT_EQ(shells[2], 4u);
  EXPECT_EQ(shells[3], 8u);
}

TEST(CoreDecompositionTest, CoreSetSizesAreSuffixSums) {
  const CoreDecomposition cores = ComputeCoreDecomposition(Fig2Graph());
  const auto sizes = cores.CoreSetSizes();
  ASSERT_EQ(sizes.size(), 5u);
  EXPECT_EQ(sizes[0], 12u);
  EXPECT_EQ(sizes[1], 12u);
  EXPECT_EQ(sizes[2], 12u);
  EXPECT_EQ(sizes[3], 8u);
  EXPECT_EQ(sizes[4], 0u);
}

TEST(CoreDecompositionTest, CoreSetMask) {
  const CoreDecomposition cores = ComputeCoreDecomposition(Fig2Graph());
  const auto mask = CoreSetMask(cores, 3);
  int count = 0;
  for (const bool b : mask) count += b ? 1 : 0;
  EXPECT_EQ(count, 8);
  EXPECT_FALSE(mask[V(5)]);
  EXPECT_TRUE(mask[V(1)]);
}

TEST(CoreDecompositionTest, PeelOrderIsPermutation) {
  const Graph g = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  std::vector<VertexId> sorted = cores.peel_order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < g.NumVertices(); ++v) EXPECT_EQ(sorted[v], v);
}

TEST(CoreDecompositionTest, PeelOrderIsDegeneracyOrdering) {
  // In a degeneracy ordering, every vertex has at most kmax neighbors
  // *later* in the order.
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    std::vector<VertexId> position(graph.NumVertices());
    for (VertexId i = 0; i < graph.NumVertices(); ++i) {
      position[cores.peel_order[i]] = i;
    }
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      VertexId later = 0;
      for (const VertexId u : graph.Neighbors(v)) {
        later += position[u] > position[v] ? 1u : 0u;
      }
      EXPECT_LE(later, cores.kmax) << name << " vertex " << v;
      // Stronger: at most coreness(v) later neighbors.
      EXPECT_LE(later, cores.coreness[v]) << name << " vertex " << v;
    }
  }
}

// Differential property test: the O(m) peeling must agree with the
// definition-driven oracle on the whole zoo.
TEST(CoreDecompositionTest, MatchesNaiveOracleOnZoo) {
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    const CoreDecomposition fast = ComputeCoreDecomposition(graph);
    const std::vector<VertexId> naive = NaiveCoreness(graph);
    EXPECT_EQ(fast.coreness, naive) << name;
  }
}

// k-core definition check: every vertex in the k-core set has >= k
// neighbors inside the set, and no excluded vertex could be added.
TEST(CoreDecompositionTest, CoreSetsSatisfyDefinition) {
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    for (VertexId k = 1; k <= cores.kmax; ++k) {
      const auto mask = CoreSetMask(cores, k);
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        if (!mask[v]) continue;
        VertexId inside = 0;
        for (const VertexId u : graph.Neighbors(v)) {
          inside += mask[u] ? 1u : 0u;
        }
        EXPECT_GE(inside, k) << name << " k=" << k << " v=" << v;
      }
    }
  }
}

TEST(CoreDecompositionTest, MaximalityAgainstOracleMask) {
  const auto zoo = corekit::testing::SmallGraphZoo();
  for (const auto& [name, graph] : zoo) {
    const CoreDecomposition cores = ComputeCoreDecomposition(graph);
    for (VertexId k = 1; k <= cores.kmax; ++k) {
      EXPECT_EQ(CoreSetMask(cores, k), NaiveCoreSetMask(graph, k))
          << name << " k=" << k;
    }
  }
}

}  // namespace
}  // namespace corekit
