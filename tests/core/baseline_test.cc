#include "corekit/core/baseline.h"

#include <tuple>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/naive_oracle.h"
#include "test_util.h"

namespace corekit {
namespace {

// The baselines (Sections III-A / IV-B) and the optimal algorithms
// (Algorithms 2/3/5) must agree bit-for-bit on every score — same
// primaries, same metrics — only their running time differs.

using ZooMetricParam = std::tuple<corekit::testing::NamedGraph, Metric>;

class BaselineAgreementTest : public ::testing::TestWithParam<ZooMetricParam> {
};

TEST_P(BaselineAgreementTest, CoreSetProfilesIdentical) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);

  const CoreSetProfile optimal = FindBestCoreSet(ordered, metric);
  const CoreSetProfile baseline =
      BaselineFindBestCoreSet(graph, cores, metric);

  ASSERT_EQ(optimal.scores.size(), baseline.scores.size());
  for (std::size_t k = 0; k < optimal.scores.size(); ++k) {
    EXPECT_DOUBLE_EQ(optimal.scores[k], baseline.scores[k])
        << named.name << " " << MetricShortName(metric) << " k=" << k;
  }
  EXPECT_EQ(optimal.best_k, baseline.best_k);
}

TEST_P(BaselineAgreementTest, SingleCoreProfilesIdentical) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);

  const SingleCoreProfile optimal =
      FindBestSingleCore(ordered, forest, metric);
  const SingleCoreProfile baseline =
      BaselineFindBestSingleCore(graph, cores, forest, metric);

  ASSERT_EQ(optimal.scores.size(), baseline.scores.size());
  for (std::size_t i = 0; i < optimal.scores.size(); ++i) {
    EXPECT_DOUBLE_EQ(optimal.scores[i], baseline.scores[i])
        << named.name << " " << MetricShortName(metric) << " node=" << i;
  }
  EXPECT_EQ(optimal.best_node, baseline.best_node);
  EXPECT_EQ(optimal.best_k, baseline.best_k);
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesMetrics, BaselineAgreementTest,
    ::testing::Combine(::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
                       ::testing::ValuesIn(kAllMetrics)),
    [](const ::testing::TestParamInfo<ZooMetricParam>& param_info) {
      return std::get<0>(param_info.param).name + std::string("_") +
             MetricShortName(std::get<1>(param_info.param));
    });

TEST(ScratchPrimariesTest, MatchNaiveOnFig2) {
  const Graph graph = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  for (VertexId k = 0; k <= cores.kmax; ++k) {
    const PrimaryValues scratch =
        ScratchCoreSetPrimaries(graph, cores, k, /*with_triangles=*/true);
    const PrimaryValues naive =
        NaivePrimaryValues(graph, NaiveCoreSetMask(graph, k));
    EXPECT_EQ(scratch.num_vertices, naive.num_vertices) << k;
    EXPECT_EQ(scratch.internal_edges_x2, naive.internal_edges_x2) << k;
    EXPECT_EQ(scratch.boundary_edges, naive.boundary_edges) << k;
    EXPECT_EQ(scratch.triangles, naive.triangles) << k;
    EXPECT_EQ(scratch.triplets, naive.triplets) << k;
  }
}

}  // namespace
}  // namespace corekit
