#include "corekit/core/hierarchy_index.h"

#include <gtest/gtest.h>

#include "corekit/core/vertex_ordering.h"
#include "corekit/util/random.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

class Fig2IndexTest : public ::testing::Test {
 protected:
  Fig2IndexTest()
      : graph_(Fig2Graph()),
        cores_(ComputeCoreDecomposition(graph_)),
        ordered_(graph_, cores_),
        forest_(graph_, cores_),
        profile_(FindBestSingleCore(ordered_, forest_,
                                    Metric::kAverageDegree)),
        index_(forest_, profile_) {}

  Graph graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
  CoreForest forest_;
  SingleCoreProfile profile_;
  CoreHierarchyIndex index_;
};

TEST_F(Fig2IndexTest, NodeOfResolvesEveryLevel) {
  // v1 (coreness 3): 3-core is its K4, 2-core (and 1-core) the whole
  // graph, 4-core nonexistent.
  EXPECT_EQ(index_.CoreSize(V(1), 3), 4u);
  EXPECT_EQ(index_.CoreSize(V(1), 2), 12u);
  EXPECT_EQ(index_.CoreSize(V(1), 1), 12u);
  EXPECT_EQ(index_.NodeOf(V(1), 4), CoreForest::kNoNode);
  // v5 (coreness 2): no 3-core.
  EXPECT_EQ(index_.CoreSize(V(5), 2), 12u);
  EXPECT_EQ(index_.NodeOf(V(5), 3), CoreForest::kNoNode);
  EXPECT_EQ(index_.CoreSize(V(5), 3), 0u);
}

TEST_F(Fig2IndexTest, ScoresMatchProfile) {
  EXPECT_DOUBLE_EQ(index_.Score(V(1), 3), 3.0);          // K4 average degree
  EXPECT_NEAR(index_.Score(V(1), 2), 2.0 * 19 / 12, 1e-12);
  EXPECT_NEAR(index_.Score(V(5), 1), 2.0 * 19 / 12, 1e-12);
}

TEST_F(Fig2IndexTest, BestKForPersonalizesProblem2) {
  // For K4 members the whole graph (k=2, ad ~3.17) beats their K4 (3.0).
  EXPECT_EQ(index_.BestKFor(V(1)), 2u);
  EXPECT_EQ(index_.BestKFor(V(5)), 2u);
}

TEST_F(Fig2IndexTest, ScoreOnMissingCoreDies) {
  EXPECT_DEATH({ index_.Score(V(5), 3); }, "not in any");
}

TEST(HierarchyIndexTest, DeepChainBinaryLifting) {
  // An onion gives a long root path; cross-check NodeOf against a linear
  // parent walk for many (v, k) pairs.
  OnionParams params;
  params.num_vertices = 2000;
  params.num_layers = 12;
  params.target_kmax = 36;
  params.seed = 4;
  const Graph g = GenerateOnion(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreForest forest(g, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, Metric::kAverageDegree);
  const CoreHierarchyIndex index(forest, profile);

  Rng rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    const auto v = static_cast<VertexId>(rng.NextBounded(g.NumVertices()));
    const auto k = static_cast<VertexId>(1 + rng.NextBounded(cores.kmax));
    // Linear reference walk.
    CoreForest::NodeId expected = CoreForest::kNoNode;
    for (CoreForest::NodeId cur = forest.NodeOfVertex(v);
         cur != CoreForest::kNoNode; cur = forest.node(cur).parent) {
      if (forest.node(cur).coreness >= k) expected = cur;
    }
    EXPECT_EQ(index.NodeOf(v, k), expected) << "v=" << v << " k=" << k;
  }
}

TEST(HierarchyIndexTest, BestKForAgreesWithExhaustiveScan) {
  const Graph g = GenerateWattsStrogatz(400, 4, 0.15, 6);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const CoreForest forest(g, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, Metric::kInternalDensity);
  const CoreHierarchyIndex index(forest, profile);

  for (VertexId v = 0; v < g.NumVertices(); v += 7) {
    if (cores.coreness[v] == 0) {
      EXPECT_EQ(index.BestKFor(v), 0u);
      continue;
    }
    VertexId expected_k = 0;
    double expected_score = -1e300;
    for (VertexId k = 1; k <= cores.coreness[v]; ++k) {
      const double score = index.Score(v, k);
      if (score > expected_score ||
          (score == expected_score && k > expected_k)) {
        expected_score = score;
        expected_k = k;
      }
    }
    EXPECT_EQ(index.BestKFor(v), expected_k) << "v=" << v;
  }
}

}  // namespace
}  // namespace corekit
