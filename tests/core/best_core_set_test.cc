#include "corekit/core/best_core_set.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/naive_oracle.h"
#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;

class Fig2BestCoreSetTest : public ::testing::Test {
 protected:
  Fig2BestCoreSetTest()
      : graph_(Fig2Graph()),
        cores_(ComputeCoreDecomposition(graph_)),
        ordered_(graph_, cores_) {}

  Graph graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
};

TEST_F(Fig2BestCoreSetTest, Example4AverageDegreeProfile) {
  // Example 4: the 3-core set has in = 12 internal edges and average
  // degree 3; the 2-core set has in = 19 and average degree ~3.17; the
  // best k under average degree is 2.
  const CoreSetProfile profile =
      FindBestCoreSet(ordered_, Metric::kAverageDegree);
  ASSERT_EQ(profile.scores.size(), 4u);
  EXPECT_EQ(profile.primaries[3].InternalEdges(), 12u);
  EXPECT_EQ(profile.primaries[3].num_vertices, 8u);
  EXPECT_DOUBLE_EQ(profile.scores[3], 3.0);
  EXPECT_EQ(profile.primaries[2].InternalEdges(), 19u);
  EXPECT_EQ(profile.primaries[2].num_vertices, 12u);
  EXPECT_DOUBLE_EQ(profile.scores[2], 2.0 * 19 / 12);
  EXPECT_EQ(profile.best_k, 2u);
  EXPECT_DOUBLE_EQ(profile.best_score, 2.0 * 19 / 12);
}

TEST_F(Fig2BestCoreSetTest, Example5ClusteringCoefficientProfile) {
  // Example 5: 3-core set has 8 triangles / 24 triplets (cc = 1); 2-core
  // set has 10 / 45 (cc = 2/3); the best k is 3.
  const CoreSetProfile profile =
      FindBestCoreSet(ordered_, Metric::kClusteringCoefficient);
  EXPECT_EQ(profile.primaries[3].triangles, 8u);
  EXPECT_EQ(profile.primaries[3].triplets, 24u);
  EXPECT_DOUBLE_EQ(profile.scores[3], 1.0);
  EXPECT_EQ(profile.primaries[2].triangles, 10u);
  EXPECT_EQ(profile.primaries[2].triplets, 45u);
  EXPECT_NEAR(profile.scores[2], 2.0 / 3.0, 1e-12);
  EXPECT_EQ(profile.best_k, 3u);
}

TEST_F(Fig2BestCoreSetTest, BoundaryEdgesOfThreeCoreSet) {
  // The three edges v5-v3, v6-v3, v8-v9 leave the 3-core set.
  const CoreSetProfile profile =
      FindBestCoreSet(ordered_, Metric::kConductance);
  EXPECT_EQ(profile.primaries[3].boundary_edges, 3u);
  EXPECT_EQ(profile.primaries[2].boundary_edges, 0u);
  EXPECT_EQ(profile.primaries[0].boundary_edges, 0u);
}

TEST_F(Fig2BestCoreSetTest, ZeroAndOneCoreSetsEqualWholeGraph) {
  const auto primaries = ComputeCoreSetPrimaries(ordered_, false);
  EXPECT_EQ(primaries[0].num_vertices, 12u);
  EXPECT_EQ(primaries[0].InternalEdges(), 19u);
  EXPECT_EQ(primaries[1].num_vertices, 12u);
  EXPECT_EQ(primaries[1].InternalEdges(), 19u);
}

TEST(BestCoreSetTest, ArgmaxPrefersLargestKOnTies) {
  EXPECT_EQ(ArgmaxLargestK({1.0, 3.0, 3.0, 2.0}), 2u);
  EXPECT_EQ(ArgmaxLargestK({5.0}), 0u);
  EXPECT_EQ(ArgmaxLargestK({2.0, 2.0, 2.0}), 2u);
}

TEST(BestCoreSetTest, CustomMetricCallable) {
  const Graph g = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  // A bespoke metric: negative size, so the best k-core set is the
  // smallest one (k = kmax).
  const CoreSetProfile profile = FindBestCoreSet(
      ordered,
      [](const PrimaryValues& pv, const GraphGlobals&) {
        return -static_cast<double>(pv.num_vertices);
      },
      /*needs_triangles=*/false);
  EXPECT_EQ(profile.best_k, 3u);
}

// ---------------------------------------------------------------------
// Differential property suite: for every zoo graph, every metric, every k,
// the incremental Algorithm 2/3 scores must equal the fully independent
// naive oracle's scores.
// ---------------------------------------------------------------------

using ZooMetricParam = std::tuple<corekit::testing::NamedGraph, Metric>;

class BestCoreSetZooTest : public ::testing::TestWithParam<ZooMetricParam> {};

TEST_P(BestCoreSetZooTest, EveryScoreMatchesNaiveOracle) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreSetProfile profile = FindBestCoreSet(ordered, metric);
  ASSERT_EQ(profile.scores.size(), static_cast<std::size_t>(cores.kmax) + 1);
  for (VertexId k = 0; k <= cores.kmax; ++k) {
    const double naive = NaiveCoreSetScore(graph, k, metric);
    EXPECT_NEAR(profile.scores[k], naive, 1e-9)
        << named.name << " metric=" << MetricShortName(metric) << " k=" << k;
  }
}

TEST_P(BestCoreSetZooTest, BestKAttainsMaximumScore) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreSetProfile profile = FindBestCoreSet(ordered, metric);
  for (const double score : profile.scores) {
    EXPECT_LE(score, profile.best_score + 1e-12);
  }
  EXPECT_DOUBLE_EQ(profile.scores[profile.best_k], profile.best_score);
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesMetrics, BestCoreSetZooTest,
    ::testing::Combine(::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
                       ::testing::ValuesIn(kAllMetrics)),
    [](const ::testing::TestParamInfo<ZooMetricParam>& param_info) {
      return std::get<0>(param_info.param).name + std::string("_") +
             MetricShortName(std::get<1>(param_info.param));
    });

// Structural invariants of the primary-value profiles that hold for any
// graph (monotonicity of the containment hierarchy).
class CoreSetPrimariesZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(CoreSetPrimariesZooTest, MonotoneUnderContainment) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const auto primaries = ComputeCoreSetPrimaries(ordered, true);
  for (VertexId k = 1; k < primaries.size(); ++k) {
    EXPECT_LE(primaries[k].num_vertices, primaries[k - 1].num_vertices);
    EXPECT_LE(primaries[k].internal_edges_x2,
              primaries[k - 1].internal_edges_x2);
    EXPECT_LE(primaries[k].triangles, primaries[k - 1].triangles);
    EXPECT_LE(primaries[k].triplets, primaries[k - 1].triplets);
  }
  // C_0 is the whole graph.
  EXPECT_EQ(primaries[0].num_vertices, graph.NumVertices());
  EXPECT_EQ(primaries[0].InternalEdges(), graph.NumEdges());
  EXPECT_EQ(primaries[0].boundary_edges, 0u);
}

TEST_P(CoreSetPrimariesZooTest, PrimariesMatchNaiveCounts) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const auto primaries = ComputeCoreSetPrimaries(ordered, true);
  for (VertexId k = 0; k <= cores.kmax; ++k) {
    const PrimaryValues naive =
        NaivePrimaryValues(graph, NaiveCoreSetMask(graph, k));
    EXPECT_EQ(primaries[k].num_vertices, naive.num_vertices) << "k=" << k;
    EXPECT_EQ(primaries[k].internal_edges_x2, naive.internal_edges_x2)
        << "k=" << k;
    EXPECT_EQ(primaries[k].boundary_edges, naive.boundary_edges) << "k=" << k;
    EXPECT_EQ(primaries[k].triangles, naive.triangles) << "k=" << k;
    EXPECT_EQ(primaries[k].triplets, naive.triplets) << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, CoreSetPrimariesZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace corekit
