#include "corekit/core/metric_combination.h"

#include <gtest/gtest.h>

#include "corekit/core/multi_metric.h"
#include "test_util.h"

namespace corekit {
namespace {

CoreSetProfile ProfileFromScores(std::vector<double> scores) {
  CoreSetProfile profile;
  profile.scores = std::move(scores);
  profile.best_k = ArgmaxLargestK(profile.scores);
  profile.best_score = profile.scores[profile.best_k];
  return profile;
}

TEST(MinMaxNormalizeTest, Basics) {
  EXPECT_EQ(MinMaxNormalize(std::vector<double>{}),
            std::vector<double>{});
  EXPECT_EQ(MinMaxNormalize(std::vector<double>{2.0, 4.0, 3.0}),
            (std::vector<double>{0.0, 1.0, 0.5}));
  // Constant profiles normalize to zeros (no information).
  EXPECT_EQ(MinMaxNormalize(std::vector<double>{7.0, 7.0}),
            (std::vector<double>{0.0, 0.0}));
}

TEST(CombineWeightedTest, PureWeightRecoversSingleMetric) {
  const CoreSetProfile a = ProfileFromScores({0.0, 1.0, 3.0, 2.0});
  const CoreSetProfile b = ProfileFromScores({5.0, 4.0, 0.0, 1.0});
  const CoreSetProfile profiles[] = {a, b};
  const double only_a[] = {1.0, 0.0};
  const CombinedProfile combined = CombineWeighted(profiles, only_a);
  EXPECT_EQ(combined.best_k, 2u);
  EXPECT_DOUBLE_EQ(combined.scores[2], 1.0);
}

TEST(CombineWeightedTest, BalancedWeightsTradeOff) {
  // Metric a loves k=2, metric b loves k=0; k=3 is a decent compromise.
  const CoreSetProfile a = ProfileFromScores({0.0, 1.0, 4.0, 3.0});
  const CoreSetProfile b = ProfileFromScores({4.0, 1.0, 0.0, 3.0});
  const CoreSetProfile profiles[] = {a, b};
  const double even[] = {0.5, 0.5};
  const CombinedProfile combined = CombineWeighted(profiles, even);
  // k=3 scores (3/4 + 3/4)/2 = 0.75; k=2 and k=0 score 0.5 each.
  EXPECT_EQ(combined.best_k, 3u);
  EXPECT_DOUBLE_EQ(combined.best_score, 0.75);
}

TEST(CombineWeightedDeathTest, BadInputsAbort) {
  const CoreSetProfile a = ProfileFromScores({1.0, 2.0});
  const CoreSetProfile profiles[] = {a};
  const double zero[] = {0.0};
  EXPECT_DEATH({ CombineWeighted(profiles, zero); }, "Check failed");
  const CoreSetProfile b = ProfileFromScores({1.0, 2.0, 3.0});
  const CoreSetProfile mismatched[] = {a, b};
  const double even[] = {0.5, 0.5};
  EXPECT_DEATH({ CombineWeighted(mismatched, even); }, "same graph");
}

TEST(CombineBordaTest, UnanimousRankingWins) {
  const CoreSetProfile a = ProfileFromScores({1.0, 3.0, 2.0});
  const CoreSetProfile b = ProfileFromScores({10.0, 30.0, 20.0});
  const CoreSetProfile profiles[] = {a, b};
  const CombinedProfile combined = CombineBorda(profiles);
  EXPECT_EQ(combined.best_k, 1u);
  EXPECT_DOUBLE_EQ(combined.scores[1], 4.0);  // rank 0 twice: 2 + 2
  EXPECT_DOUBLE_EQ(combined.scores[2], 2.0);
  EXPECT_DOUBLE_EQ(combined.scores[0], 0.0);
}

TEST(CombineBordaTest, TiesShareTheHigherPoints) {
  const CoreSetProfile a = ProfileFromScores({5.0, 5.0, 1.0});
  const CoreSetProfile profiles[] = {a};
  const CombinedProfile combined = CombineBorda(profiles);
  EXPECT_DOUBLE_EQ(combined.scores[0], 2.0);
  EXPECT_DOUBLE_EQ(combined.scores[1], 2.0);
  EXPECT_DOUBLE_EQ(combined.scores[2], 0.0);
  EXPECT_EQ(combined.best_k, 1u);  // largest k among tied maxima
}

TEST(MetricCombinationTest, TamesDegenerateMetricsOnFig2) {
  // The paper's motivation: cr/con alone pick trivial k; combining them
  // with average degree picks an interior k.
  const Graph g = corekit::testing::Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const Metric metrics[] = {Metric::kAverageDegree, Metric::kConductance};
  const auto profiles = FindBestCoreSetMulti(ordered, metrics);
  const double even[] = {0.5, 0.5};
  const CombinedProfile weighted = CombineWeighted(profiles, even);
  // ad alone picks 2, con alone picks 2 (score 1 at k<=2)... combined
  // stays interior and well-defined.
  EXPECT_LE(weighted.best_k, cores.kmax);
  EXPECT_GE(weighted.best_score, 0.0);
  const CombinedProfile borda = CombineBorda(profiles);
  EXPECT_EQ(borda.scores.size(), weighted.scores.size());
}

TEST(MetricCombinationTest, CombinationOnRealProfilesIsStable) {
  // On an onion graph, ad prefers kmax, cr/con prefer tiny k; the Borda
  // combination lands strictly between the extremes.
  OnionParams params;
  params.num_vertices = 3000;
  params.num_layers = 8;
  params.target_kmax = 24;
  params.seed = 2;
  const Graph g = GenerateOnion(params);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const Metric metrics[] = {Metric::kAverageDegree, Metric::kCutRatio,
                            Metric::kConductance};
  const auto profiles = FindBestCoreSetMulti(ordered, metrics);
  const CombinedProfile borda = CombineBorda(profiles);
  const VertexId ad_k = profiles[0].best_k;
  const VertexId con_k = profiles[2].best_k;
  EXPECT_GT(ad_k, con_k);
  EXPECT_GE(borda.best_k, con_k);
  EXPECT_LE(borda.best_k, ad_k);
}

}  // namespace
}  // namespace corekit
