#include "corekit/core/triangle_scoring.h"

#include <vector>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/naive_oracle.h"
#include "corekit/graph/graph_builder.h"
#include "corekit/simd/dispatch.h"
#include "test_util.h"

namespace corekit {
namespace {

OrderedGraph MakeOrdered(const Graph& graph, CoreDecomposition& cores_out) {
  cores_out = ComputeCoreDecomposition(graph);
  return OrderedGraph(graph, cores_out);
}

TEST(TriangleScoringTest, TriangleGraph) {
  const Graph g = GraphBuilder::FromEdges(3, {{0, 1}, {1, 2}, {2, 0}});
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(g, cores);
  EXPECT_EQ(CountTriangles(ordered), 1u);
  EXPECT_EQ(CountTriplets(g), 3u);
}

TEST(TriangleScoringTest, K4HasFourTrianglesTwelveTriplets) {
  GraphBuilder builder(4);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) builder.AddEdge(u, v);
  }
  const Graph g = builder.Build();
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(g, cores);
  EXPECT_EQ(CountTriangles(ordered), 4u);
  EXPECT_EQ(CountTriplets(g), 12u);
}

TEST(TriangleScoringTest, TriangleFreeGraph) {
  // Bipartite C6.
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(g, cores);
  EXPECT_EQ(CountTriangles(ordered), 0u);
  EXPECT_EQ(CountTriplets(g), 6u);
}

TEST(TriangleScoringTest, Fig2WholeGraphHasTenTriangles) {
  // Example 5: the 2-core set (the whole graph) has triangle = 10 and
  // triplet = 45.
  const Graph g = corekit::testing::Fig2Graph();
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(g, cores);
  EXPECT_EQ(CountTriangles(ordered), 10u);
  EXPECT_EQ(CountTriplets(g), 45u);
}

TEST(TriangleScoringTest, ScratchRestoredToZero) {
  const Graph g = corekit::testing::Fig2Graph();
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(g, cores);
  TriangleScratch scratch(g.NumVertices(), 0);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    CountTrianglesAtVertex(ordered, v, scratch);
    for (const std::uint8_t s : scratch) EXPECT_EQ(s, 0);
  }
}

TEST(TriangleScoringTest, PerVertexCountsSumToTotal) {
  const Graph g = GenerateBarabasiAlbert(150, 4, 23);
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(g, cores);
  TriangleScratch scratch(g.NumVertices(), 0);
  std::uint64_t sum = 0;
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    sum += CountTrianglesAtVertex(ordered, v, scratch);
  }
  EXPECT_EQ(sum, CountTriangles(ordered));
}

// The scratch-mark kernel is the oracle; the intersection overload
// (which feeds CountTriangles and the parallel kernels) must agree at
// every vertex, under both the forced-scalar path and — when the CPU
// has it — the AVX2 path.
TEST(TriangleScoringTest, IntersectionOverloadMatchesScratchOracle) {
  for (const auto& [name, graph] : corekit::testing::SmallGraphZoo()) {
    SCOPED_TRACE(name);
    CoreDecomposition cores;
    const OrderedGraph ordered = MakeOrdered(graph, cores);
    TriangleScratch scratch(graph.NumVertices(), 0);
    std::vector<simd::IsaLevel> levels = {simd::IsaLevel::kScalar};
    if (simd::CpuSupportsAvx2()) levels.push_back(simd::IsaLevel::kAvx2);
    for (const simd::IsaLevel level : levels) {
      SCOPED_TRACE(simd::IsaName(level));
      simd::SetIsaForTesting(level);
      for (VertexId v = 0; v < graph.NumVertices(); ++v) {
        EXPECT_EQ(CountTrianglesAtVertex(ordered, v),
                  CountTrianglesAtVertex(ordered, v, scratch))
            << "v=" << v;
      }
    }
    simd::ResetIsaForTesting();
  }
}

class TriangleZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(TriangleZooTest, MatchesBruteForce) {
  const Graph& graph = GetParam().graph;
  CoreDecomposition cores;
  const OrderedGraph ordered = MakeOrdered(graph, cores);
  EXPECT_EQ(CountTriangles(ordered), NaiveTriangleCount(graph));
}

TEST_P(TriangleZooTest, TripletsMatchNaivePrimaries) {
  const Graph& graph = GetParam().graph;
  const std::vector<bool> all(graph.NumVertices(), true);
  const PrimaryValues pv = NaivePrimaryValues(graph, all);
  EXPECT_EQ(CountTriplets(graph), pv.triplets);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, TriangleZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>& param_info) {
      return param_info.param.name;
    });

}  // namespace
}  // namespace corekit
