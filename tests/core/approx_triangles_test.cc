#include "corekit/core/approx_triangles.h"

#include <cmath>

#include <gtest/gtest.h>

#include "corekit/core/core_decomposition.h"
#include "corekit/core/naive_oracle.h"
#include "corekit/core/triangle_scoring.h"
#include "test_util.h"

namespace corekit {
namespace {

TEST(ApproxTrianglesTest, EdgelessGraph) {
  const ApproxTriangleStats stats =
      EstimateTriangles(GraphBuilder::FromEdges(4, {}), 100, 1);
  EXPECT_EQ(stats.triplets, 0u);
  EXPECT_DOUBLE_EQ(stats.triangles, 0.0);
}

TEST(ApproxTrianglesTest, CompleteGraphClosesEverything) {
  GraphBuilder builder(8);
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = u + 1; v < 8; ++v) builder.AddEdge(u, v);
  }
  const Graph g = builder.Build();
  const ApproxTriangleStats stats = EstimateTriangles(g, 500, 2);
  EXPECT_DOUBLE_EQ(stats.closed_fraction, 1.0);
  // C(8,3) = 56 triangles, exactly recovered when every wedge closes.
  EXPECT_DOUBLE_EQ(stats.triangles, 56.0);
}

TEST(ApproxTrianglesTest, TriangleFreeGraphClosesNothing) {
  // C6 bipartite cycle.
  const Graph g = GraphBuilder::FromEdges(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}});
  const ApproxTriangleStats stats = EstimateTriangles(g, 300, 3);
  EXPECT_DOUBLE_EQ(stats.closed_fraction, 0.0);
}

TEST(ApproxTrianglesTest, TripletsExact) {
  const Graph g = corekit::testing::Fig2Graph();
  const ApproxTriangleStats stats = EstimateTriangles(g, 10, 4);
  EXPECT_EQ(stats.triplets, CountTriplets(g));  // 45 (Example 5)
  EXPECT_EQ(stats.triplets, 45u);
}

TEST(ApproxTrianglesTest, Deterministic) {
  const Graph g = GenerateBarabasiAlbert(400, 4, 6);
  const ApproxTriangleStats a = EstimateTriangles(g, 2000, 99);
  const ApproxTriangleStats b = EstimateTriangles(g, 2000, 99);
  EXPECT_DOUBLE_EQ(a.triangles, b.triangles);
}

TEST(ApproxTrianglesTest, EstimateWithinSamplingError) {
  // Compare against the exact count on a clustered graph; with s samples
  // the standard error of the closed fraction is sqrt(p(1-p)/s); allow 5
  // sigma.
  const Graph g = GenerateWattsStrogatz(2000, 5, 0.1, 13);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const double exact = static_cast<double>(CountTriangles(ordered));

  constexpr std::uint32_t kSamples = 20000;
  const ApproxTriangleStats stats = EstimateTriangles(g, kSamples, 17);
  const double p = stats.closed_fraction;
  const double sigma_fraction = std::sqrt(p * (1 - p) / kSamples);
  const double sigma_triangles =
      sigma_fraction * static_cast<double>(stats.triplets) / 3.0;
  EXPECT_NEAR(stats.triangles, exact, 5 * sigma_triangles + 1.0);
}

TEST(ApproxTrianglesTest, MoreSamplesTightenTheEstimate) {
  const Graph g = GenerateBarabasiAlbert(1500, 5, 23);
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const OrderedGraph ordered(g, cores);
  const double exact = static_cast<double>(CountTriangles(ordered));

  // Average absolute error over several seeds must shrink with samples.
  auto mean_error = [&](std::uint32_t samples) {
    double total = 0.0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      total += std::abs(EstimateTriangles(g, samples, seed).triangles -
                        exact);
    }
    return total / 8.0;
  };
  EXPECT_LT(mean_error(20000), mean_error(200));
}

}  // namespace
}  // namespace corekit
