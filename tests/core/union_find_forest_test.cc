#include "corekit/core/union_find_forest.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "test_util.h"

namespace corekit {
namespace {

using ::corekit::testing::Fig2Graph;
using ::corekit::testing::V;

TEST(UnionFindForestTest, EmptyGraph) {
  const Graph g;
  const UnionFindForest forest =
      BuildUnionFindForest(g, ComputeCoreDecomposition(g));
  EXPECT_TRUE(forest.nodes.empty());
}

TEST(UnionFindForestTest, Fig2Structure) {
  const Graph g = Fig2Graph();
  const CoreDecomposition cores = ComputeCoreDecomposition(g);
  const UnionFindForest forest = BuildUnionFindForest(g, cores);
  ASSERT_EQ(forest.nodes.size(), 3u);
  EXPECT_EQ(forest.nodes[0].coreness, 3u);
  EXPECT_EQ(forest.nodes[1].coreness, 3u);
  EXPECT_EQ(forest.nodes[2].coreness, 2u);
  EXPECT_EQ(forest.nodes[0].parent, 2u);
  EXPECT_EQ(forest.nodes[1].parent, 2u);
  EXPECT_EQ(forest.nodes[2].parent, CoreForest::kNoNode);
  std::vector<VertexId> shell = forest.nodes[2].vertices;
  std::sort(shell.begin(), shell.end());
  EXPECT_EQ(shell, (std::vector<VertexId>{V(5), V(6), V(7), V(8)}));
}

TEST(UnionFindForestTest, EquivalenceDetectsDifferences) {
  // Sanity of the checker itself: forests of different graphs must not
  // compare equal.
  const Graph a = Fig2Graph();
  const Graph b = GraphBuilder::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}});
  const CoreDecomposition cores_a = ComputeCoreDecomposition(a);
  const CoreDecomposition cores_b = ComputeCoreDecomposition(b);
  const CoreForest lcps_a(a, cores_a);
  const UnionFindForest uf_b = BuildUnionFindForest(b, cores_b);
  EXPECT_FALSE(ForestsEquivalent(lcps_a, uf_b));
}

class UnionFindForestZooTest
    : public ::testing::TestWithParam<corekit::testing::NamedGraph> {};

TEST_P(UnionFindForestZooTest, EquivalentToLcpsForest) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const CoreForest lcps(graph, cores);
  const UnionFindForest uf = BuildUnionFindForest(graph, cores);
  EXPECT_TRUE(ForestsEquivalent(lcps, uf)) << GetParam().name;
}

TEST_P(UnionFindForestZooTest, NodesPartitionVertices) {
  const Graph& graph = GetParam().graph;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const UnionFindForest forest = BuildUnionFindForest(graph, cores);
  std::vector<int> covered(graph.NumVertices(), 0);
  for (const auto& node : forest.nodes) {
    EXPECT_FALSE(node.vertices.empty());
    for (const VertexId v : node.vertices) {
      EXPECT_EQ(cores.coreness[v], node.coreness);
      ++covered[v];
    }
  }
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_EQ(covered[v], 1) << GetParam().name << " vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, UnionFindForestZooTest,
    ::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
    [](const ::testing::TestParamInfo<corekit::testing::NamedGraph>&
           param_info) { return param_info.param.name; });

}  // namespace
}  // namespace corekit
