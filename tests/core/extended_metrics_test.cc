#include <tuple>

#include <gtest/gtest.h>

#include "corekit/core/best_core_set.h"
#include "corekit/core/best_single_core.h"
#include "corekit/core/core_decomposition.h"
#include "corekit/core/metrics.h"
#include "corekit/core/naive_oracle.h"
#include "test_util.h"

namespace corekit {
namespace {

PrimaryValues MakeValues(std::uint64_t n, std::uint64_t m, std::uint64_t b) {
  PrimaryValues pv;
  pv.num_vertices = n;
  pv.internal_edges_x2 = 2 * m;
  pv.boundary_edges = b;
  return pv;
}

constexpr GraphGlobals kGlobals{100, 500};

TEST(ExtendedMetricsTest, Separability) {
  EXPECT_DOUBLE_EQ(
      EvaluateMetric(Metric::kSeparability, MakeValues(10, 40, 8), kGlobals),
      5.0);
  // Perfect separation scores the internal edge count itself.
  EXPECT_DOUBLE_EQ(
      EvaluateMetric(Metric::kSeparability, MakeValues(10, 40, 0), kGlobals),
      40.0);
}

TEST(ExtendedMetricsTest, ExpansionIsNegatedBoundaryPerVertex) {
  EXPECT_DOUBLE_EQ(
      EvaluateMetric(Metric::kExpansion, MakeValues(10, 40, 25), kGlobals),
      -2.5);
  EXPECT_DOUBLE_EQ(
      EvaluateMetric(Metric::kExpansion, MakeValues(0, 0, 0), kGlobals),
      0.0);
  // Fewer boundary edges per member must score higher.
  EXPECT_GT(
      EvaluateMetric(Metric::kExpansion, MakeValues(10, 40, 5), kGlobals),
      EvaluateMetric(Metric::kExpansion, MakeValues(10, 40, 25), kGlobals));
}

TEST(ExtendedMetricsTest, NormalizedAssociation) {
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kNormalizedAssociation,
                                  MakeValues(10, 30, 10), kGlobals),
                   0.75);
  EXPECT_DOUBLE_EQ(EvaluateMetric(Metric::kNormalizedAssociation,
                                  MakeValues(3, 0, 0), kGlobals),
                   1.0);
}

TEST(ExtendedMetricsTest, ParseAndNames) {
  EXPECT_EQ(ParseMetric("sep"), Metric::kSeparability);
  EXPECT_EQ(ParseMetric("exp"), Metric::kExpansion);
  EXPECT_EQ(ParseMetric("nassoc"), Metric::kNormalizedAssociation);
  for (const Metric metric : kExtendedMetrics) {
    EXPECT_FALSE(MetricNeedsTriangles(metric));
    EXPECT_EQ(ParseMetric(MetricName(metric)), metric);
  }
}

// The extended metrics flow through the same best-k machinery: check the
// incremental profiles against the naive oracle, exactly like the core
// six.
using ZooMetricParam = std::tuple<corekit::testing::NamedGraph, Metric>;

class ExtendedMetricZooTest : public ::testing::TestWithParam<ZooMetricParam> {
};

TEST_P(ExtendedMetricZooTest, CoreSetScoresMatchNaive) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreSetProfile profile = FindBestCoreSet(ordered, metric);
  for (VertexId k = 0; k <= cores.kmax; ++k) {
    EXPECT_NEAR(profile.scores[k], NaiveCoreSetScore(graph, k, metric), 1e-9)
        << named.name << " " << MetricShortName(metric) << " k=" << k;
  }
}

TEST_P(ExtendedMetricZooTest, SingleCoreScoresMatchNaive) {
  const auto& [named, metric] = GetParam();
  const Graph& graph = named.graph;
  if (graph.NumVertices() == 0) return;
  const CoreDecomposition cores = ComputeCoreDecomposition(graph);
  const OrderedGraph ordered(graph, cores);
  const CoreForest forest(graph, cores);
  const SingleCoreProfile profile =
      FindBestSingleCore(ordered, forest, metric);
  const GraphGlobals globals{graph.NumVertices(), graph.NumEdges()};
  for (CoreForest::NodeId i = 0; i < forest.NumNodes(); ++i) {
    std::vector<bool> mask(graph.NumVertices(), false);
    for (const VertexId v : forest.CoreVertices(i)) mask[v] = true;
    const double expected =
        EvaluateMetric(metric, NaivePrimaryValues(graph, mask), globals);
    EXPECT_NEAR(profile.scores[i], expected, 1e-9)
        << named.name << " " << MetricShortName(metric) << " node=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ZooTimesExtended, ExtendedMetricZooTest,
    ::testing::Combine(::testing::ValuesIn(corekit::testing::SmallGraphZoo()),
                       ::testing::ValuesIn(kExtendedMetrics)),
    [](const ::testing::TestParamInfo<ZooMetricParam>& param_info) {
      return std::get<0>(param_info.param).name + std::string("_") +
             MetricShortName(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace corekit
