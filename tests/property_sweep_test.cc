// Randomized whole-pipeline property sweep.
//
// For a grid of random seeds, densities, and generator families (flat
// Erdős–Rényi, heavy-tailed Barabási–Albert, community-structured
// LFR-like), generates a fresh graph and asserts the cross-component
// invariants that must hold for *any* input: the decomposition, ordering,
// forest, both scorers, the baselines, and the truss and weighted
// extension substrates all agree with each other and with first
// principles.  This is the suite that catches interaction bugs the
// per-module tests cannot.

#include <algorithm>
#include <cmath>
#include <set>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/analysis/invariant_audit.h"
#include "corekit/corekit.h"

namespace corekit {
namespace {

enum class GenKind { kErdosRenyi, kBarabasiAlbert, kLfrLike };

const char* GenKindTag(GenKind gen) {
  switch (gen) {
    case GenKind::kErdosRenyi:
      return "ER";
    case GenKind::kBarabasiAlbert:
      return "BA";
    case GenKind::kLfrLike:
      return "LFR";
  }
  return "?";
}

struct SweepParam {
  std::uint64_t seed;
  VertexId n;
  // Target edge count; BA and LFR treat it as a density hint (BA derives
  // edges-per-vertex, LFR a degree range) rather than an exact count.
  EdgeId m;
  GenKind gen = GenKind::kErdosRenyi;
};

Graph MakeSweepGraph(const SweepParam& param) {
  switch (param.gen) {
    case GenKind::kErdosRenyi:
      return GenerateErdosRenyi(param.n, param.m, param.seed);
    case GenKind::kBarabasiAlbert: {
      const VertexId per_vertex = std::max<VertexId>(
          1, static_cast<VertexId>(param.m / std::max<VertexId>(1, param.n)));
      return GenerateBarabasiAlbert(param.n, per_vertex, param.seed);
    }
    case GenKind::kLfrLike: {
      LfrLikeParams lfr;
      lfr.num_vertices = param.n;
      const VertexId davg = static_cast<VertexId>(
          2 * param.m / std::max<VertexId>(1, param.n));
      lfr.min_degree = std::max<VertexId>(2, davg / 2);
      lfr.max_degree = std::max<VertexId>(lfr.min_degree + 1, 3 * davg);
      lfr.min_community = std::max<VertexId>(8, param.n / 12);
      lfr.max_community = std::max<VertexId>(lfr.min_community + 1,
                                             param.n / 3);
      lfr.mu = 0.25;
      lfr.seed = param.seed;
      return GenerateLfrLike(lfr).graph;
    }
  }
  return Graph();
}

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  PipelineSweepTest()
      : graph_(MakeSweepGraph(GetParam())),
        cores_(ComputeCoreDecomposition(graph_)),
        ordered_(graph_, cores_),
        forest_(graph_, cores_) {}

  Graph graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
  CoreForest forest_;
};

TEST_P(PipelineSweepTest, ShellSizesBridgeOrderingAndDecomposition) {
  const auto shells = cores_.ShellSizes();
  for (VertexId k = 0; k <= cores_.kmax; ++k) {
    EXPECT_EQ(ordered_.Shell(k).size(), shells[k]) << "k=" << k;
  }
}

TEST_P(PipelineSweepTest, ForestCoversCoreSetSizes) {
  // Summing the forest's top-level-at-k core sizes over each k must give
  // |V(C_k)|: every vertex of C_k is in exactly one k-core.
  const auto core_set_sizes = cores_.CoreSetSizes();
  for (VertexId k = 0; k <= cores_.kmax; ++k) {
    // Cores at level k are nodes with coreness == k, plus deeper cores
    // whose parent has coreness < k (they are maximal at level k too).
    std::uint64_t covered = 0;
    for (CoreForest::NodeId i = 0; i < forest_.NumNodes(); ++i) {
      const auto& node = forest_.node(i);
      const VertexId parent_coreness =
          node.parent == CoreForest::kNoNode
              ? 0
              : forest_.node(node.parent).coreness;
      const bool maximal_at_k =
          node.coreness >= k &&
          (node.parent == CoreForest::kNoNode || parent_coreness < k);
      if (maximal_at_k) covered += forest_.CoreSize(i);
    }
    if (k == 0) {
      // Vertices of coreness 0 are isolated roots; covered counts them.
      EXPECT_EQ(covered, graph_.NumVertices());
    } else {
      EXPECT_EQ(covered, core_set_sizes[k]) << "k=" << k;
    }
  }
}

TEST_P(PipelineSweepTest, SetProfileDominatedBySingleProfile) {
  for (const Metric metric :
       {Metric::kAverageDegree, Metric::kInternalDensity}) {
    const CoreSetProfile set_profile = FindBestCoreSet(ordered_, metric);
    const SingleCoreProfile single_profile =
        FindBestSingleCore(ordered_, forest_, metric);
    EXPECT_GE(single_profile.best_score, set_profile.best_score - 1e-9)
        << MetricShortName(metric);
  }
}

TEST_P(PipelineSweepTest, OptimalAndBaselineBitwiseAgree) {
  for (const Metric metric : kAllMetrics) {
    const CoreSetProfile optimal = FindBestCoreSet(ordered_, metric);
    const CoreSetProfile baseline =
        BaselineFindBestCoreSet(graph_, cores_, metric);
    ASSERT_EQ(optimal.scores.size(), baseline.scores.size());
    for (std::size_t k = 0; k < optimal.scores.size(); ++k) {
      EXPECT_DOUBLE_EQ(optimal.scores[k], baseline.scores[k])
          << MetricShortName(metric) << " k=" << k;
    }
  }
}

TEST_P(PipelineSweepTest, TrianglesConsistentAcrossAllPaths) {
  // Three independent triangle counters must agree: rank-ordered
  // (Algorithm 3 kernel), brute force, and the k=0 entry of the
  // incremental profile.
  const std::uint64_t ranked = CountTriangles(ordered_);
  const std::uint64_t brute = NaiveTriangleCount(graph_);
  const auto primaries = ComputeCoreSetPrimaries(ordered_, true);
  EXPECT_EQ(ranked, brute);
  EXPECT_EQ(primaries[0].triangles, brute);
  EXPECT_EQ(primaries[0].triplets, CountTriplets(graph_));
}

TEST_P(PipelineSweepTest, ParallelPeelMatchesSequentialAndOrderIsDegenerate) {
  ThreadPool pool(4);
  const CoreDecomposition parallel =
      ComputeCoreDecompositionParallel(graph_, pool);
  // The level-synchronous peel is deterministic and exact: coreness and
  // kmax agree with the sequential Batagelj–Zaversnik result bit for bit.
  EXPECT_EQ(parallel.kmax, cores_.kmax);
  ASSERT_EQ(parallel.coreness.size(), cores_.coreness.size());
  EXPECT_EQ(parallel.coreness, cores_.coreness);

  // peel_order is a permutation of the vertices...
  const VertexId n = graph_.NumVertices();
  ASSERT_EQ(parallel.peel_order.size(), n);
  std::vector<VertexId> sorted = parallel.peel_order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < n; ++v) ASSERT_EQ(sorted[v], v);

  // ...grouped by level (coreness non-decreasing along the order)...
  for (std::size_t i = 1; i < parallel.peel_order.size(); ++i) {
    EXPECT_LE(parallel.coreness[parallel.peel_order[i - 1]],
              parallel.coreness[parallel.peel_order[i]])
        << "position " << i;
  }

  // ...and a valid degeneracy ordering: when v is peeled, its neighbors
  // still unpeeled (later in the order) number at most coreness[v].
  std::vector<std::size_t> position(n, 0);
  for (std::size_t i = 0; i < parallel.peel_order.size(); ++i) {
    position[parallel.peel_order[i]] = i;
  }
  std::vector<VertexId> later_neighbors(n, 0);
  for (const auto& [u, v] : graph_.ToEdgeList()) {
    if (position[u] < position[v]) {
      ++later_neighbors[u];
    } else {
      ++later_neighbors[v];
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    EXPECT_LE(later_neighbors[v], parallel.coreness[v]) << "v=" << v;
  }
}

TEST_P(PipelineSweepTest, FrontierPeelCrossChecksAllByproducts) {
  ThreadPool pool(4);
  const FrontierPeelResult frontier = ComputeFrontierPeel(graph_, pool);

  // Coreness/kmax bitwise-equal to the sequential fixture, and the
  // emitted order replays under the first-principles audit.
  EXPECT_EQ(frontier.cores.coreness, cores_.coreness);
  EXPECT_EQ(frontier.cores.kmax, cores_.kmax);
  const AuditResult audit = AuditCoreDecomposition(graph_, frontier.cores);
  EXPECT_TRUE(audit.ok()) << audit.Summary();

  // The per-vertex round indices are exactly the onion layers: a round
  // peels "everything alive at or below the level", which is the onion
  // wave definition.
  const OnionDecomposition onion = ComputeOnionDecomposition(graph_);
  EXPECT_EQ(frontier.layer, onion.layer);
  EXPECT_EQ(frontier.num_rounds, onion.num_layers);

  // Truss supports: the parallel intersection counts agree with the
  // serial mark-array counting, and the frontier truss peel built on
  // them reproduces the serial truss numbers bit for bit.
  const std::vector<EdgeId> slot_edge = MapSlotsToEdges(graph_);
  EXPECT_EQ(ComputeEdgeSupportsParallel(graph_, slot_edge, pool),
            ComputeEdgeSupports(graph_, slot_edge));
  const TrussDecomposition serial_truss = ComputeTrussDecomposition(graph_);
  const TrussDecomposition frontier_truss =
      ComputeTrussDecompositionFrontier(graph_, pool);
  EXPECT_EQ(frontier_truss.truss, serial_truss.truss);
  EXPECT_EQ(frontier_truss.tmax, serial_truss.tmax);
}

TEST_P(PipelineSweepTest, TrussContainedInCore) {
  // Every edge's truss number minus one is at most both endpoints'
  // coreness, so V(T_k) is always inside C_{k-1}.
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph_);
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    const auto [u, v] = trusses.edges[e];
    const VertexId t = trusses.truss[e];
    EXPECT_GE(cores_.coreness[u] + 1, t);
    EXPECT_GE(cores_.coreness[v] + 1, t);
  }
}

TEST_P(PipelineSweepTest, DensestCoreIsHalfApproximation) {
  // kmax / 2 <= density(kmax-core) and Opt-D >= density of any core.
  if (graph_.NumEdges() == 0) return;
  const DensestSubgraphResult opt_d = OptDDensestSubgraph(graph_);
  EXPECT_GE(opt_d.average_degree, cores_.kmax);  // kmax-core has davg >= kmax
}

// --- Extension substrates: trusses and weighted s-cores ---------------------

TEST_P(PipelineSweepTest, TrussSetOptimalAndBaselineBitwiseAgree) {
  // Same differential the core scorers get: the top-down incremental
  // profile (Section VI-B transfer) against from-scratch per-k scoring.
  if (graph_.NumEdges() == 0) return;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph_);
  for (const Metric metric : kAllMetrics) {
    if (MetricNeedsTriangles(metric)) continue;  // out of truss scope
    const TrussSetProfile optimal =
        FindBestTrussSet(graph_, trusses, metric);
    const TrussSetProfile baseline =
        BaselineFindBestTrussSet(graph_, trusses, metric);
    EXPECT_EQ(optimal.best_k, baseline.best_k) << MetricShortName(metric);
    EXPECT_DOUBLE_EQ(optimal.best_score, baseline.best_score)
        << MetricShortName(metric);
    ASSERT_EQ(optimal.scores.size(), baseline.scores.size());
    for (std::size_t k = 0; k < optimal.scores.size(); ++k) {
      EXPECT_DOUBLE_EQ(optimal.scores[k], baseline.scores[k])
          << MetricShortName(metric) << " k=" << k;
    }
  }
}

TEST_P(PipelineSweepTest, SingleTrussScoresMatchDirectRecomputation) {
  if (graph_.NumEdges() == 0) return;
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph_);
  const TrussForest truss_forest(graph_, trusses);
  const EdgeList edges = graph_.ToEdgeList();
  const GraphGlobals globals{graph_.NumVertices(), graph_.NumEdges()};
  for (const Metric metric : {Metric::kAverageDegree, Metric::kConductance,
                              Metric::kModularity}) {
    const SingleTrussProfile profile =
        FindBestSingleTruss(graph_, trusses, truss_forest, metric);
    ASSERT_EQ(profile.scores.size(), truss_forest.NumNodes());
    double best = profile.scores[0];
    for (TrussForest::NodeId i = 0; i < truss_forest.NumNodes(); ++i) {
      // Oracle: recompute the node's primaries from its vertex set by a
      // direct scan of the whole edge list.
      const std::set<VertexId> members = [&] {
        const auto vertices = truss_forest.TrussVertices(trusses, i);
        return std::set<VertexId>(vertices.begin(), vertices.end());
      }();
      const VertexId level = truss_forest.node(i).level;
      PrimaryValues oracle;
      oracle.num_vertices = members.size();
      for (EdgeId e = 0; e < edges.size(); ++e) {
        const auto [u, v] = edges[e];
        const bool u_in = members.count(u) > 0;
        const bool v_in = members.count(v) > 0;
        if (u_in && v_in && trusses.truss[e] >= level) {
          oracle.internal_edges_x2 += 2;
        } else if (u_in != v_in) {
          oracle.boundary_edges += 1;
        }
      }
      ASSERT_EQ(profile.primaries[i].num_vertices, oracle.num_vertices);
      ASSERT_EQ(profile.primaries[i].internal_edges_x2,
                oracle.internal_edges_x2);
      ASSERT_EQ(profile.primaries[i].boundary_edges, oracle.boundary_edges);
      const double expected = EvaluateMetric(metric, oracle, globals);
      EXPECT_DOUBLE_EQ(profile.scores[i], expected)
          << MetricShortName(metric) << " node=" << i;
      best = std::max(best, profile.scores[i]);
    }
    EXPECT_DOUBLE_EQ(profile.best_score, best) << MetricShortName(metric);
  }
}

TEST_P(PipelineSweepTest, SCoreDecompositionMatchesNaiveOracle) {
  const WeightedGraph weighted =
      RandomlyWeighted(graph_, 4.0, GetParam().seed + 77);
  const SCoreDecomposition fast = ComputeSCoreDecomposition(weighted);
  const SCoreDecomposition naive = NaiveSCoreDecomposition(weighted);
  ASSERT_EQ(fast.s_value.size(), naive.s_value.size());
  for (VertexId v = 0; v < weighted.NumVertices(); ++v) {
    EXPECT_NEAR(fast.s_value[v], naive.s_value[v], 1e-9) << "v=" << v;
  }
  EXPECT_NEAR(fast.smax, naive.smax, 1e-9);
}

TEST_P(PipelineSweepTest, SCoreProfileMatchesThresholdOracle) {
  // Every scored threshold must equal a from-scratch evaluation of the
  // subgraph {v : s_value[v] >= t} — the brute-force definition of the
  // s-core set.
  const WeightedGraph weighted =
      RandomlyWeighted(graph_, 4.0, GetParam().seed + 78);
  if (weighted.NumEdges() == 0) return;
  const SCoreDecomposition cores = ComputeSCoreDecomposition(weighted);
  for (const WeightedMetric metric :
       {WeightedMetric::kAverageStrength,
        WeightedMetric::kWeightedConductance,
        WeightedMetric::kWeightedDensity}) {
    const SCoreProfile profile = FindBestSCore(weighted, cores, metric);
    ASSERT_EQ(profile.scores.size(), profile.thresholds.size());
    double best = profile.scores.empty() ? 0.0 : profile.scores[0];
    for (std::size_t i = 0; i < profile.thresholds.size(); ++i) {
      const double threshold = profile.thresholds[i];
      WeightedPrimaryValues oracle;
      for (VertexId v = 0; v < weighted.NumVertices(); ++v) {
        if (cores.s_value[v] < threshold) continue;
        oracle.num_vertices += 1;
        const auto neighbors = weighted.Neighbors(v);
        const auto weights = weighted.Weights(v);
        for (std::size_t j = 0; j < neighbors.size(); ++j) {
          if (cores.s_value[neighbors[j]] >= threshold) {
            oracle.internal_weight_x2 += weights[j];
          } else {
            oracle.boundary_weight += weights[j];
          }
        }
      }
      ASSERT_EQ(profile.primaries[i].num_vertices, oracle.num_vertices)
          << "t=" << threshold;
      EXPECT_NEAR(profile.primaries[i].internal_weight_x2,
                  oracle.internal_weight_x2,
                  1e-9 * (1.0 + oracle.internal_weight_x2));
      EXPECT_NEAR(profile.primaries[i].boundary_weight,
                  oracle.boundary_weight,
                  1e-9 * (1.0 + oracle.boundary_weight));
      const double expected = EvaluateWeightedMetric(metric, oracle);
      EXPECT_NEAR(profile.scores[i], expected, 1e-9 * (1.0 + std::abs(expected)))
          << WeightedMetricName(metric) << " t=" << threshold;
      best = std::max(best, profile.scores[i]);
    }
    EXPECT_NEAR(profile.best_score, best, 1e-12);
  }
}

// --- Dynamic maintenance under long alternating churn ----------------------

TEST_P(PipelineSweepTest, LongAlternatingChurnTraceMatchesRecompute) {
  // A strict insert/delete alternation — the adversarial cadence for the
  // traversal cascades, since every promotion is immediately challenged
  // by a demotion elsewhere.  Both the bare index and the full engine
  // replay the same trace; at every checkpoint the patched coreness must
  // equal a from-scratch peel of the snapshot, and the engine must agree
  // with the index bitwise.
  DynamicCoreIndex index(graph_);
  CoreEngine engine(graph_);
  (void)engine.Cores();
  Rng rng(GetParam().seed ^ 0xD1CEu);
  EdgeList present = graph_.ToEdgeList();
  const VertexId n = graph_.NumVertices();

  for (int step = 0; step < 160; ++step) {
    EdgeList inserts;
    EdgeList deletes;
    if (step % 2 == 0) {
      inserts.emplace_back(static_cast<VertexId>(rng.NextBounded(n)),
                           static_cast<VertexId>(rng.NextBounded(n)));
    } else if (!present.empty()) {
      const std::size_t pick = rng.NextBounded(present.size());
      deletes.push_back(present[pick]);
      present[pick] = present.back();
      present.pop_back();
    }
    const DynamicBatchStats applied = index.ApplyBatch(inserts, deletes);
    const CoreEngine::BatchResult engine_applied =
        engine.ApplyBatch(inserts, deletes);
    ASSERT_EQ(engine_applied.inserted, applied.inserted) << "step " << step;
    ASSERT_EQ(engine_applied.deleted, applied.deleted) << "step " << step;
    for (const auto& edge : inserts) {
      if (applied.inserted > 0 && edge.first != edge.second) {
        present.push_back(edge);
      }
    }
    if (step % 40 == 39) {
      const Graph snapshot = index.Snapshot();
      ASSERT_EQ(index.CorenessArray(),
                ComputeCoreDecomposition(snapshot).coreness)
          << "step " << step;
      ASSERT_EQ(engine.Cores().coreness, index.CorenessArray())
          << "step " << step;
    }
  }
  const Graph final_snapshot = index.Snapshot();
  EXPECT_EQ(index.CorenessArray(),
            ComputeCoreDecomposition(final_snapshot).coreness);
  EXPECT_EQ(engine.Cores().coreness, index.CorenessArray());
  EXPECT_EQ(engine.graph().NumEdges(), final_snapshot.NumEdges());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, PipelineSweepTest,
    ::testing::Values(
        SweepParam{101, 40, 60}, SweepParam{102, 40, 200},
        SweepParam{103, 60, 90}, SweepParam{104, 60, 400},
        SweepParam{105, 80, 120}, SweepParam{106, 80, 700},
        SweepParam{107, 120, 180}, SweepParam{108, 120, 1200},
        SweepParam{109, 200, 400}, SweepParam{110, 200, 2500},
        SweepParam{201, 60, 120, GenKind::kBarabasiAlbert},
        SweepParam{202, 120, 360, GenKind::kBarabasiAlbert},
        SweepParam{203, 200, 1000, GenKind::kBarabasiAlbert},
        SweepParam{301, 80, 240, GenKind::kLfrLike},
        SweepParam{302, 150, 600, GenKind::kLfrLike},
        SweepParam{303, 200, 1400, GenKind::kLfrLike}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return std::string(GenKindTag(param_info.param.gen)) + "_seed" +
             std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.n) + "_m" +
             std::to_string(param_info.param.m);
    });

}  // namespace
}  // namespace corekit
