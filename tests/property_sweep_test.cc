// Randomized whole-pipeline property sweep.
//
// For a grid of random seeds and densities, generates a fresh graph and
// asserts the cross-component invariants that must hold for *any* input:
// the decomposition, ordering, forest, both scorers, the baselines, and
// the truss extension all agree with each other and with first
// principles.  This is the suite that catches interaction bugs the
// per-module tests cannot.

#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "corekit/corekit.h"

namespace corekit {
namespace {

struct SweepParam {
  std::uint64_t seed;
  VertexId n;
  EdgeId m;
};

class PipelineSweepTest : public ::testing::TestWithParam<SweepParam> {
 protected:
  PipelineSweepTest()
      : graph_(GenerateErdosRenyi(GetParam().n, GetParam().m,
                                  GetParam().seed)),
        cores_(ComputeCoreDecomposition(graph_)),
        ordered_(graph_, cores_),
        forest_(graph_, cores_) {}

  Graph graph_;
  CoreDecomposition cores_;
  OrderedGraph ordered_;
  CoreForest forest_;
};

TEST_P(PipelineSweepTest, ShellSizesBridgeOrderingAndDecomposition) {
  const auto shells = cores_.ShellSizes();
  for (VertexId k = 0; k <= cores_.kmax; ++k) {
    EXPECT_EQ(ordered_.Shell(k).size(), shells[k]) << "k=" << k;
  }
}

TEST_P(PipelineSweepTest, ForestCoversCoreSetSizes) {
  // Summing the forest's top-level-at-k core sizes over each k must give
  // |V(C_k)|: every vertex of C_k is in exactly one k-core.
  const auto core_set_sizes = cores_.CoreSetSizes();
  for (VertexId k = 0; k <= cores_.kmax; ++k) {
    // Cores at level k are nodes with coreness == k, plus deeper cores
    // whose parent has coreness < k (they are maximal at level k too).
    std::uint64_t covered = 0;
    for (CoreForest::NodeId i = 0; i < forest_.NumNodes(); ++i) {
      const auto& node = forest_.node(i);
      const VertexId parent_coreness =
          node.parent == CoreForest::kNoNode
              ? 0
              : forest_.node(node.parent).coreness;
      const bool maximal_at_k =
          node.coreness >= k &&
          (node.parent == CoreForest::kNoNode || parent_coreness < k);
      if (maximal_at_k) covered += forest_.CoreSize(i);
    }
    if (k == 0) {
      // Vertices of coreness 0 are isolated roots; covered counts them.
      EXPECT_EQ(covered, graph_.NumVertices());
    } else {
      EXPECT_EQ(covered, core_set_sizes[k]) << "k=" << k;
    }
  }
}

TEST_P(PipelineSweepTest, SetProfileDominatedBySingleProfile) {
  for (const Metric metric :
       {Metric::kAverageDegree, Metric::kInternalDensity}) {
    const CoreSetProfile set_profile = FindBestCoreSet(ordered_, metric);
    const SingleCoreProfile single_profile =
        FindBestSingleCore(ordered_, forest_, metric);
    EXPECT_GE(single_profile.best_score, set_profile.best_score - 1e-9)
        << MetricShortName(metric);
  }
}

TEST_P(PipelineSweepTest, OptimalAndBaselineBitwiseAgree) {
  for (const Metric metric : kAllMetrics) {
    const CoreSetProfile optimal = FindBestCoreSet(ordered_, metric);
    const CoreSetProfile baseline =
        BaselineFindBestCoreSet(graph_, cores_, metric);
    ASSERT_EQ(optimal.scores.size(), baseline.scores.size());
    for (std::size_t k = 0; k < optimal.scores.size(); ++k) {
      EXPECT_DOUBLE_EQ(optimal.scores[k], baseline.scores[k])
          << MetricShortName(metric) << " k=" << k;
    }
  }
}

TEST_P(PipelineSweepTest, TrianglesConsistentAcrossAllPaths) {
  // Three independent triangle counters must agree: rank-ordered
  // (Algorithm 3 kernel), brute force, and the k=0 entry of the
  // incremental profile.
  const std::uint64_t ranked = CountTriangles(ordered_);
  const std::uint64_t brute = NaiveTriangleCount(graph_);
  const auto primaries = ComputeCoreSetPrimaries(ordered_, true);
  EXPECT_EQ(ranked, brute);
  EXPECT_EQ(primaries[0].triangles, brute);
  EXPECT_EQ(primaries[0].triplets, CountTriplets(graph_));
}

TEST_P(PipelineSweepTest, TrussContainedInCore) {
  // Every edge's truss number minus one is at most both endpoints'
  // coreness, so V(T_k) is always inside C_{k-1}.
  const TrussDecomposition trusses = ComputeTrussDecomposition(graph_);
  for (EdgeId e = 0; e < trusses.edges.size(); ++e) {
    const auto [u, v] = trusses.edges[e];
    const VertexId t = trusses.truss[e];
    EXPECT_GE(cores_.coreness[u] + 1, t);
    EXPECT_GE(cores_.coreness[v] + 1, t);
  }
}

TEST_P(PipelineSweepTest, DensestCoreIsHalfApproximation) {
  // kmax / 2 <= density(kmax-core) and Opt-D >= density of any core.
  if (graph_.NumEdges() == 0) return;
  const DensestSubgraphResult opt_d = OptDDensestSubgraph(graph_);
  EXPECT_GE(opt_d.average_degree, cores_.kmax);  // kmax-core has davg >= kmax
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndDensities, PipelineSweepTest,
    ::testing::Values(SweepParam{101, 40, 60}, SweepParam{102, 40, 200},
                      SweepParam{103, 60, 90}, SweepParam{104, 60, 400},
                      SweepParam{105, 80, 120}, SweepParam{106, 80, 700},
                      SweepParam{107, 120, 180}, SweepParam{108, 120, 1200},
                      SweepParam{109, 200, 400}, SweepParam{110, 200, 2500}),
    [](const ::testing::TestParamInfo<SweepParam>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.n) + "_m" +
             std::to_string(param_info.param.m);
    });

}  // namespace
}  // namespace corekit
